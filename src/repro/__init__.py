"""EventHit — marshalling model inference in video streams.

An open-source reproduction of *"Marshalling Model Inference in Video
Streams"* (Chao, Koudas, Yu — ICDE 2023).  The library predicts **if** and
**when** events of interest occur in a video stream so only the relevant
frame ranges are relayed to a pay-per-frame cloud inference service, and
wraps those predictions in conformal layers (C-CLASSIFY / C-REGRESS) with
tunable probabilistic recall/cost guarantees.

Quickstart::

    from repro import run_experiment, ExperimentSettings

    experiment = run_experiment("TA10", ExperimentSettings(scale=0.06))
    print(experiment.evaluate("EHCR", confidence=0.95, alpha=0.9).as_dict())

Package map:

==================  ====================================================
``repro.nn``        numpy autograd + LSTM/MLP substrate
``repro.video``     synthetic streams, events, Table I datasets
``repro.features``  simulated detectors and covariate pipeline
``repro.data``      §II record triplets and split builders
``repro.core``      the EventHit network, trainer, Eq. 4–6 inference
``repro.conformal`` C-CLASSIFY (§IV) and C-REGRESS (§V)
``repro.baselines`` EHO/EHC/EHR/EHCR, OPT, BF, COX, VQS, APP-VAE
``repro.cloud``     simulated CI: pricing, detection service, marshaller
``repro.metrics``   REC/SPL/REC_c/REC_r, expense, FPS timing model
``repro.harness``   tasks TA1–TA16, experiment runner, figure generators
``repro.lifecycle`` versioned model registry, retraining, hot-swap
``repro.obs``       structured logs, metrics registry, span tracing
==================  ====================================================
"""

from .core import (
    EventHit,
    EventHitConfig,
    EventHitOutput,
    PredictionBatch,
    Trainer,
    TrainingHistory,
    threshold_predictions,
    train_eventhit,
)
from .conformal import ConformalClassifier, ConformalRegressor
from .data import DatasetBuilder, ExperimentData, RecordSet, build_experiment_data
from .harness import (
    REPRESENTATIVE_TASKS,
    TASKS,
    Experiment,
    ExperimentSettings,
    Task,
    get_task,
    run_experiment,
)
from .metrics import evaluate
from .video import make_breakfast, make_dataset, make_stream, make_thumos, make_virat
from . import obs

__version__ = "1.0.0"

__all__ = [
    "EventHit",
    "EventHitConfig",
    "EventHitOutput",
    "PredictionBatch",
    "Trainer",
    "TrainingHistory",
    "train_eventhit",
    "threshold_predictions",
    "ConformalClassifier",
    "ConformalRegressor",
    "RecordSet",
    "DatasetBuilder",
    "ExperimentData",
    "build_experiment_data",
    "Task",
    "TASKS",
    "REPRESENTATIVE_TASKS",
    "get_task",
    "Experiment",
    "ExperimentSettings",
    "run_experiment",
    "evaluate",
    "make_virat",
    "make_thumos",
    "make_breakfast",
    "make_dataset",
    "make_stream",
    "obs",
    "__version__",
]
