"""Event arrival processes (paper §I: "events may be i.i.d., such as Poisson
as in the case of truck arrivals ... or geometric").

An arrival process proposes onset frames for event instances of one type in
a stream of given length.  The scheduler in :mod:`repro.video.datasets` then
draws a duration for each onset and drops proposals that would overlap the
previous instance of the same type.
"""

from __future__ import annotations

from typing import List, Protocol

import numpy as np

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "GeometricArrivals",
    "FixedCountArrivals",
    "RegularArrivals",
    "MarkovModulatedPoissonArrivals",
]


class ArrivalProcess(Protocol):
    """Protocol: propose sorted onset frames within [0, length)."""

    def sample(self, length: int, rng: np.random.Generator) -> List[int]:
        ...


def _validate_length(length: int) -> None:
    if length <= 0:
        raise ValueError("stream length must be positive")


class PoissonArrivals:
    """Homogeneous Poisson process with ``rate`` arrivals per frame.

    Inter-arrival gaps are exponential with mean ``1/rate``; this is the
    paper's canonical truck-arrival model.
    """

    def __init__(self, rate: float):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate

    def sample(self, length: int, rng: np.random.Generator) -> List[int]:
        _validate_length(length)
        onsets: List[int] = []
        t = rng.exponential(1.0 / self.rate)
        while t < length:
            onsets.append(int(t))
            t += rng.exponential(1.0 / self.rate)
        return onsets

    def expected_count(self, length: int) -> float:
        return self.rate * length


class GeometricArrivals:
    """Bernoulli trials per frame: an onset occurs w.p. ``p`` each frame.

    Inter-arrival gaps are geometric — the paper's defective-product model.
    """

    def __init__(self, p: float):
        if not 0.0 < p < 1.0:
            raise ValueError("p must be in (0, 1)")
        self.p = p

    def sample(self, length: int, rng: np.random.Generator) -> List[int]:
        _validate_length(length)
        hits = rng.random(length) < self.p
        return list(np.flatnonzero(hits))

    def expected_count(self, length: int) -> float:
        return self.p * length


class FixedCountArrivals:
    """Exactly ``count`` onsets scattered with a minimum gap.

    Used to calibrate synthetic datasets to Table I occurrence counts: we
    need e.g. exactly 54 instances of "Person Opening a Vehicle".  Onsets
    are drawn by jittering an even grid, which guarantees the minimum gap
    without rejection sampling.
    """

    def __init__(self, count: int, min_gap: int = 1):
        if count <= 0:
            raise ValueError("count must be positive")
        if min_gap < 1:
            raise ValueError("min_gap must be >= 1")
        self.count = count
        self.min_gap = min_gap

    def sample(self, length: int, rng: np.random.Generator) -> List[int]:
        _validate_length(length)
        if self.count * self.min_gap > length:
            raise ValueError(
                f"cannot place {self.count} onsets with gap {self.min_gap} "
                f"in {length} frames"
            )
        cell = length / self.count
        slack = max(0.0, cell - self.min_gap)
        onsets = []
        for i in range(self.count):
            base = i * cell
            onsets.append(int(base + rng.random() * slack))
        return onsets

    def expected_count(self, length: int) -> float:
        return float(self.count)


class RegularArrivals:
    """Deterministic onsets every ``period`` frames starting at ``offset``.

    Handy for tests and for perfectly periodic industrial workloads.
    """

    def __init__(self, period: int, offset: int = 0):
        if period <= 0:
            raise ValueError("period must be positive")
        if offset < 0:
            raise ValueError("offset must be non-negative")
        self.period = period
        self.offset = offset

    def sample(self, length: int, rng: np.random.Generator) -> List[int]:
        _validate_length(length)
        return list(range(self.offset, length, self.period))

    def expected_count(self, length: int) -> float:
        return max(0.0, (length - self.offset + self.period - 1) // self.period)


class MarkovModulatedPoissonArrivals:
    """Markov-modulated Poisson process (MMPP): a bursty, *non-stationary*
    arrival model.

    A hidden two-state Markov chain (quiet / busy) switches the Poisson
    rate; dwell times in each state are geometric.  MMPP breaks the
    stationarity assumption the paper's conclusion highlights, so the
    drift tooling uses it to generate workloads whose occurrence
    distribution genuinely changes over time.

    Parameters
    ----------
    quiet_rate / busy_rate:
        Arrival rates (per frame) in the two regimes.
    switch_prob:
        Per-frame probability of toggling the hidden state.
    start_busy:
        Initial regime.
    """

    def __init__(
        self,
        quiet_rate: float,
        busy_rate: float,
        switch_prob: float = 1e-4,
        start_busy: bool = False,
    ):
        if quiet_rate <= 0 or busy_rate <= 0:
            raise ValueError("rates must be positive")
        if quiet_rate >= busy_rate:
            raise ValueError("busy_rate must exceed quiet_rate")
        if not 0.0 < switch_prob < 1.0:
            raise ValueError("switch_prob must be in (0, 1)")
        self.quiet_rate = quiet_rate
        self.busy_rate = busy_rate
        self.switch_prob = switch_prob
        self.start_busy = start_busy

    def sample_with_states(self, length: int, rng: np.random.Generator):
        """Return (onsets, per-frame busy indicator)."""
        _validate_length(length)
        # Hidden-state path: toggle at geometric dwell boundaries.
        toggles = rng.random(length) < self.switch_prob
        busy = np.empty(length, dtype=bool)
        state = self.start_busy
        for t in range(length):
            if toggles[t]:
                state = not state
            busy[t] = state
        rates = np.where(busy, self.busy_rate, self.quiet_rate)
        hits = rng.random(length) < rates
        return list(np.flatnonzero(hits)), busy

    def sample(self, length: int, rng: np.random.Generator) -> List[int]:
        onsets, _ = self.sample_with_states(length, rng)
        return onsets

    def expected_count(self, length: int) -> float:
        """Stationary expectation (the chain spends half its time in each
        regime under symmetric switching)."""
        return 0.5 * (self.quiet_rate + self.busy_rate) * length
