"""Synthetic video-stream substrate.

Stands in for the camera feeds + annotated corpora (VIRAT / THUMOS /
Breakfast) of the paper: event types and occurrence intervals (§II),
arrival processes (§I), reproducible streams, and Table I-calibrated
dataset generators.
"""

from .events import EventInstance, EventSchedule, EventType, HorizonEvent
from .arrivals import (
    ArrivalProcess,
    FixedCountArrivals,
    GeometricArrivals,
    MarkovModulatedPoissonArrivals,
    PoissonArrivals,
    RegularArrivals,
)
from .stream import StreamSegment, VideoStream
from .tracks import Track, TrackSet, simulate_tracks
from .datasets import (
    DatasetSpec,
    EVENT_TYPES,
    GROUP1_EVENTS,
    GROUP2_EVENTS,
    TABLE1_ROWS,
    Table1Row,
    build_schedule,
    make_breakfast,
    make_dataset,
    make_stream,
    make_thumos,
    make_virat,
    table1_stats,
)

__all__ = [
    "EventType",
    "EventInstance",
    "HorizonEvent",
    "EventSchedule",
    "ArrivalProcess",
    "PoissonArrivals",
    "GeometricArrivals",
    "FixedCountArrivals",
    "RegularArrivals",
    "MarkovModulatedPoissonArrivals",
    "VideoStream",
    "StreamSegment",
    "Track",
    "TrackSet",
    "simulate_tracks",
    "DatasetSpec",
    "Table1Row",
    "TABLE1_ROWS",
    "EVENT_TYPES",
    "GROUP1_EVENTS",
    "GROUP2_EVENTS",
    "make_virat",
    "make_thumos",
    "make_breakfast",
    "make_dataset",
    "make_stream",
    "build_schedule",
    "table1_stats",
]
