"""Synthetic video streams.

A :class:`VideoStream` stands in for the camera feed of Fig. 1: it owns the
frame count, frame rate, the ground-truth :class:`~repro.video.events.EventSchedule`,
and the RNG seed from which *all* per-frame observations (detector outputs,
feature noise) are derived, so a stream is fully reproducible from its
construction arguments.

No pixels are materialised — the paper's method never touches raw pixels
either; it consumes per-frame feature vectors produced by a detector
(YOLOv3 / Faster R-CNN in the paper, :mod:`repro.features.detectors` here)
and ground-truth intervals for training.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np

from .events import EventInstance, EventSchedule, EventType

__all__ = ["VideoStream", "StreamSegment"]


@dataclass(frozen=True)
class StreamSegment:
    """A contiguous range of frames ``[start, end]`` (inclusive) of a stream.

    Segments are the unit of work relayed to the cloud service: EventHit
    predicts an occurrence interval, and the marshaller ships the matching
    segment to the CI.
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"invalid segment [{self.start}, {self.end}]")

    @property
    def num_frames(self) -> int:
        return self.end - self.start + 1

    def frames(self) -> range:
        return range(self.start, self.end + 1)

    def intersect(self, other: "StreamSegment") -> Optional["StreamSegment"]:
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        return StreamSegment(start, end) if start <= end else None


class VideoStream:
    """A reproducible synthetic stream with ground-truth events.

    Parameters
    ----------
    length:
        Number of frames N.
    schedule:
        Ground-truth event schedule (must match ``length``).
    fps:
        Nominal camera frame rate, used by the timing model.
    seed:
        Master seed; all observation noise in feature extraction derives
        from ``observation_rng()`` so repeated extraction is deterministic.
    name:
        Optional label (e.g. "virat-train").
    """

    def __init__(
        self,
        length: int,
        schedule: EventSchedule,
        fps: float = 30.0,
        seed: int = 0,
        name: str = "stream",
    ):
        if length <= 0:
            raise ValueError("length must be positive")
        if schedule.length != length:
            raise ValueError(
                f"schedule length {schedule.length} != stream length {length}"
            )
        if fps <= 0:
            raise ValueError("fps must be positive")
        self.length = length
        self.schedule = schedule
        self.fps = fps
        self.seed = seed
        self.name = name

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        return (
            f"VideoStream(name={self.name!r}, length={self.length}, "
            f"fps={self.fps}, events={len(self.schedule.all_instances())})"
        )

    def observation_rng(self, salt: int = 0) -> np.random.Generator:
        """Deterministic RNG for observation noise, optionally salted."""
        return np.random.default_rng(np.random.SeedSequence([self.seed, salt]))

    def duration_seconds(self) -> float:
        return self.length / self.fps

    def segment(self, start: int, end: int) -> StreamSegment:
        """A validated segment clamped to the stream bounds."""
        if start > end:
            raise ValueError("segment start must be <= end")
        return StreamSegment(max(0, start), min(self.length - 1, end))

    def event_frames(self, event_type: EventType) -> int:
        """Total number of frames occupied by ``event_type``."""
        return int(self.schedule.occupancy_mask(event_type).sum())

    def occupancy_fraction(self, event_type: EventType) -> float:
        """Fraction of the stream occupied by ``event_type`` — the paper's
        "needle in a haystack" ratio."""
        return self.event_frames(event_type) / self.length
