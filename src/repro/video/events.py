"""Event types, event instances, and per-stream event schedules (paper §II).

The paper models a video stream as a frame sequence ``V = <f_1 .. f_N>`` and a
set of independent event types ``E = {E_1 .. E_k}``; each event *instance*
occupies an *occurrence interval* ``(T^s .. T^e)``.  This module provides the
plain-data containers for those concepts plus the :class:`EventSchedule`
query surface used everywhere else: occupancy masks, "events in the next
horizon", and censoring per Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["EventType", "EventInstance", "HorizonEvent", "EventSchedule"]


@dataclass(frozen=True)
class EventType:
    """A type of event of interest (e.g. "Person Opening a Vehicle").

    Attributes
    ----------
    name:
        Human-readable label (Table I row).
    duration_mean, duration_std:
        Occurrence-duration statistics in frames (Table I "Duration").
    lead_time:
        How many frames before onset the precursor signal starts ramping.
        This is a property of the *world* being simulated: an approaching
        truck is visible before it reaches the gate.  It bounds how far
        ahead any predictor can see the event coming.
    predictability:
        Signal-to-noise of the precursor in [0, 1].  High for Group 1
        events (short, regular), lower for Group 2 (long/high-variance),
        reproducing the paper's per-group difficulty split.
    """

    name: str
    duration_mean: float
    duration_std: float
    lead_time: int = 120
    predictability: float = 0.9

    def __post_init__(self) -> None:
        if self.duration_mean <= 0:
            raise ValueError("duration_mean must be positive")
        if self.duration_std < 0:
            raise ValueError("duration_std must be non-negative")
        if self.lead_time <= 0:
            raise ValueError("lead_time must be positive")
        if not 0.0 <= self.predictability <= 1.0:
            raise ValueError("predictability must be in [0, 1]")

    def sample_duration(self, rng: np.random.Generator) -> int:
        """Draw an occurrence duration (frames), always >= 2.

        Durations are gamma-distributed with moments matched to Table I.
        A gamma (rather than a truncated normal) keeps the sample mean on
        target even for high-variance events such as E11 (mean 97.2,
        σ 107.5), where left-truncating a normal would inflate the mean by
        ~20%.
        """
        if self.duration_std == 0:
            return max(2, int(round(self.duration_mean)))
        shape = (self.duration_mean / self.duration_std) ** 2
        scale = self.duration_std**2 / self.duration_mean
        value = rng.gamma(shape, scale)
        return max(2, int(round(value)))


@dataclass(frozen=True, order=True)
class EventInstance:
    """One occurrence of an event type: frames ``[start, end]`` inclusive."""

    start: int
    end: int
    event_type: EventType = field(compare=False)

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("start must be non-negative")
        if self.end < self.start:
            raise ValueError("end must be >= start")

    @property
    def duration(self) -> int:
        return self.end - self.start + 1

    def overlaps(self, start: int, end: int) -> bool:
        """Whether this instance intersects the inclusive range [start, end]."""
        return self.start <= end and self.end >= start

    def frames(self) -> range:
        return range(self.start, self.end + 1)


@dataclass(frozen=True)
class HorizonEvent:
    """An event instance as seen from a reference frame's time horizon.

    Offsets follow the paper's convention: ``start_offset``/``end_offset``
    are in ``[1, H]`` relative to the reference frame, and ``censored`` is
    the δ indicator of Fig. 2 — the instance ends after the horizon, so its
    end is clamped to ``H``.
    """

    event_type: EventType
    start_offset: int
    end_offset: int
    censored: bool

    def __post_init__(self) -> None:
        if self.start_offset < 1:
            raise ValueError("start_offset must be >= 1")
        if self.end_offset < self.start_offset:
            raise ValueError("end_offset must be >= start_offset")


class EventSchedule:
    """All event instances of all types in one video stream.

    Parameters
    ----------
    length:
        Number of frames N in the stream.
    instances:
        Event instances; they are bucketed by type and sorted by start.
        Instances of the same type must not overlap (the paper's events of a
        given type are disjoint in time).
    """

    def __init__(self, length: int, instances: Iterable[EventInstance]):
        if length <= 0:
            raise ValueError("stream length must be positive")
        self.length = length
        self._by_type: Dict[str, List[EventInstance]] = {}
        for inst in instances:
            if inst.end >= length:
                raise ValueError(
                    f"instance {inst.start}-{inst.end} exceeds stream length {length}"
                )
            self._by_type.setdefault(inst.event_type.name, []).append(inst)
        for name, bucket in self._by_type.items():
            bucket.sort()
            for prev, cur in zip(bucket, bucket[1:]):
                if cur.start <= prev.end:
                    raise ValueError(
                        f"overlapping instances of {name!r}: "
                        f"[{prev.start},{prev.end}] and [{cur.start},{cur.end}]"
                    )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def event_type_names(self) -> List[str]:
        return sorted(self._by_type)

    def instances_of(self, event_type: EventType) -> List[EventInstance]:
        """Instances of one type, sorted by start frame."""
        return list(self._by_type.get(event_type.name, []))

    def all_instances(self) -> List[EventInstance]:
        out: List[EventInstance] = []
        for bucket in self._by_type.values():
            out.extend(bucket)
        return sorted(out)

    def occurrence_count(self, event_type: EventType) -> int:
        return len(self._by_type.get(event_type.name, []))

    # ------------------------------------------------------------------
    # Occupancy queries
    # ------------------------------------------------------------------
    def occupancy_mask(self, event_type: EventType) -> np.ndarray:
        """Boolean array of length N: True where the event is occurring."""
        mask = np.zeros(self.length, dtype=bool)
        for inst in self._by_type.get(event_type.name, []):
            mask[inst.start : inst.end + 1] = True
        return mask

    def time_to_next_onset(self, event_type: EventType) -> np.ndarray:
        """For each frame t, frames until the nearest onset at or after t.

        An onset frame reports 0; frames after the final onset report inf.
        Feature extraction uses this to shape the precursor ramp (the ramp
        anticipates each upcoming onset).
        """
        dist = np.full(self.length, np.inf)
        next_onset = np.inf
        starts = {inst.start for inst in self._by_type.get(event_type.name, [])}
        for t in range(self.length - 1, -1, -1):
            if t in starts:
                next_onset = t
            dist[t] = next_onset - t if np.isfinite(next_onset) else np.inf
        return dist

    # ------------------------------------------------------------------
    # Horizon queries (paper Fig. 2)
    # ------------------------------------------------------------------
    def events_in_horizon(
        self, event_type: EventType, frame: int, horizon: int
    ) -> List[HorizonEvent]:
        """Instances of ``event_type`` intersecting ``(frame, frame+H]``.

        Following §II: offsets are relative to ``frame`` and lie in [1, H];
        an instance that is *already ongoing* at the reference frame starts
        at offset 1; an instance ending past the horizon is censored with
        end offset clamped to H.
        """
        if not 0 <= frame < self.length:
            raise ValueError(f"frame {frame} outside stream [0, {self.length})")
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        window_start, window_end = frame + 1, frame + horizon
        found: List[HorizonEvent] = []
        for inst in self._by_type.get(event_type.name, []):
            if not inst.overlaps(window_start, window_end):
                continue
            start_offset = max(1, inst.start - frame)
            censored = inst.end > window_end
            end_offset = horizon if censored else inst.end - frame
            found.append(
                HorizonEvent(
                    event_type=inst.event_type,
                    start_offset=start_offset,
                    end_offset=end_offset,
                    censored=censored,
                )
            )
        return found

    def first_event_in_horizon(
        self, event_type: EventType, frame: int, horizon: int
    ) -> Optional[HorizonEvent]:
        """The earliest instance in the horizon, or None.

        §II simplification: "event instances of E_i can appear at most once
        in the time horizon for estimation purposes" — training targets use
        the first occurrence.
        """
        events = self.events_in_horizon(event_type, frame, horizon)
        return min(events, key=lambda e: e.start_offset) if events else None

    def duration_stats(self, event_type: EventType) -> Tuple[float, float]:
        """Empirical (mean, std) of instance durations (Table I columns)."""
        durations = [inst.duration for inst in self._by_type.get(event_type.name, [])]
        if not durations:
            return (float("nan"), float("nan"))
        arr = np.asarray(durations, dtype=float)
        return float(arr.mean()), float(arr.std())
