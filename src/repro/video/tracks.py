"""Simulated object tracks — the annotation layer behind VIRAT features.

The paper's VIRAT covariates are *track-derived*: "an indicator of the
presence/absence of moving cars and a value for the average distance
between the cars and the persons in a frame" (§VI.A).  This module
simulates the tracks those features come from: each event instance spawns
an **actor track** that approaches a scene anchor during the precursor
window, dwells there for the occurrence, and leaves afterwards; background
**clutter tracks** wander the scene independently of any event.

:class:`TrackSet` offers the standard trajectory queries (position, speed,
distance-to-anchor, nearest-track distances), and
:class:`~repro.features.track_features.TrackFeatureExtractor` turns them
into per-frame covariates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .events import EventType
from .stream import VideoStream

__all__ = ["Track", "TrackSet", "simulate_tracks"]

#: Scene extent (abstract units); the anchor (gate/goal/counter) sits at 0.
SCENE_RADIUS = 100.0


@dataclass(frozen=True)
class Track:
    """One object's trajectory: positions over a frame interval.

    Attributes
    ----------
    track_id:
        Unique id within the TrackSet.
    label:
        Object class ("actor" for event-bound objects, "clutter").
    start / end:
        Inclusive frame range of the track's existence.
    positions:
        (end − start + 1, 2) array of xy positions.
    event_name:
        The event type this actor serves, or None for clutter.
    """

    track_id: int
    label: str
    start: int
    end: int
    positions: np.ndarray
    event_name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError("invalid track frame range")
        expected = self.end - self.start + 1
        if self.positions.shape != (expected, 2):
            raise ValueError(
                f"positions must be ({expected}, 2), got {self.positions.shape}"
            )

    @property
    def duration(self) -> int:
        return self.end - self.start + 1

    def alive_at(self, frame: int) -> bool:
        return self.start <= frame <= self.end

    def position_at(self, frame: int) -> np.ndarray:
        if not self.alive_at(frame):
            raise ValueError(f"track {self.track_id} not alive at frame {frame}")
        return self.positions[frame - self.start]

    def speed_at(self, frame: int) -> float:
        """|Δposition| between this frame and the previous (0 at birth)."""
        if not self.alive_at(frame):
            raise ValueError(f"track {self.track_id} not alive at frame {frame}")
        if frame == self.start:
            return 0.0
        delta = self.positions[frame - self.start] - self.positions[frame - self.start - 1]
        return float(np.linalg.norm(delta))

    def distance_to_anchor_at(self, frame: int) -> float:
        return float(np.linalg.norm(self.position_at(frame)))


class TrackSet:
    """All tracks of one stream, with per-frame aggregate queries."""

    def __init__(self, length: int, tracks: Sequence[Track]):
        if length <= 0:
            raise ValueError("length must be positive")
        self.length = length
        self.tracks = list(tracks)
        for track in self.tracks:
            if track.end >= length:
                raise ValueError(
                    f"track {track.track_id} exceeds stream length {length}"
                )

    def __len__(self) -> int:
        return len(self.tracks)

    def alive_at(self, frame: int, label: Optional[str] = None) -> List[Track]:
        """Tracks alive at ``frame`` (optionally filtered by label)."""
        if not 0 <= frame < self.length:
            raise ValueError(f"frame {frame} outside stream")
        return [
            t for t in self.tracks
            if t.alive_at(frame) and (label is None or t.label == label)
        ]

    def count_series(self, label: Optional[str] = None) -> np.ndarray:
        """(N,) number of alive tracks per frame."""
        counts = np.zeros(self.length, dtype=float)
        for track in self.tracks:
            if label is None or track.label == label:
                counts[track.start : track.end + 1] += 1
        return counts

    def min_anchor_distance_series(
        self, label: Optional[str] = None, default: float = SCENE_RADIUS
    ) -> np.ndarray:
        """(N,) distance of the closest alive track to the anchor."""
        best = np.full(self.length, default)
        for track in self.tracks:
            if label is not None and track.label != label:
                continue
            frames = np.arange(track.start, track.end + 1)
            dist = np.linalg.norm(track.positions, axis=1)
            np.minimum.at(best, frames, dist)
        return best

    def mean_speed_series(self, label: Optional[str] = None) -> np.ndarray:
        """(N,) mean speed of alive tracks (0 where none alive)."""
        total = np.zeros(self.length)
        count = np.zeros(self.length)
        for track in self.tracks:
            if label is not None and track.label != label:
                continue
            speeds = np.zeros(track.duration)
            if track.duration > 1:
                deltas = np.diff(track.positions, axis=0)
                speeds[1:] = np.linalg.norm(deltas, axis=1)
            frames = np.arange(track.start, track.end + 1)
            total[frames] += speeds
            count[frames] += 1
        with np.errstate(invalid="ignore"):
            out = np.where(count > 0, total / np.maximum(count, 1), 0.0)
        return out


def _actor_track(
    track_id: int,
    event_name: str,
    onset: int,
    event_end: int,
    lead: int,
    stream_length: int,
    rng: np.random.Generator,
) -> Track:
    """Approach → dwell → depart trajectory for one event instance."""
    approach_start = max(0, onset - lead)
    depart_end = min(stream_length - 1, event_end + lead // 4)
    frames = depart_end - approach_start + 1

    angle = rng.uniform(0, 2 * np.pi)
    entry = SCENE_RADIUS * np.array([np.cos(angle), np.sin(angle)])
    dwell = rng.normal(0, 2.0, size=2)

    positions = np.zeros((frames, 2))
    approach_frames = onset - approach_start
    dwell_frames = event_end - onset + 1
    depart_frames = frames - approach_frames - dwell_frames

    if approach_frames > 0:
        fractions = np.linspace(0, 1, approach_frames, endpoint=False)
        positions[:approach_frames] = entry[None, :] * (1 - fractions[:, None]) + (
            dwell[None, :] * fractions[:, None]
        )
    # Small positional jitter while dwelling — visibly static compared to
    # the ≈1 unit/frame approach speed.
    jitter = rng.normal(0, 0.1, size=(dwell_frames, 2))
    positions[approach_frames : approach_frames + dwell_frames] = dwell + jitter
    if depart_frames > 0:
        fractions = np.linspace(0, 1, depart_frames)
        exit_point = entry * 0.7
        positions[approach_frames + dwell_frames :] = (
            dwell[None, :] * (1 - fractions[:, None])
            + exit_point[None, :] * fractions[:, None]
        )
    return Track(
        track_id=track_id,
        label="actor",
        start=approach_start,
        end=depart_end,
        positions=positions,
        event_name=event_name,
    )


def _clutter_track(
    track_id: int, stream_length: int, rng: np.random.Generator
) -> Track:
    """A wandering background object uncorrelated with events."""
    duration = int(rng.integers(50, 400))
    start = int(rng.integers(0, max(1, stream_length - duration)))
    end = min(stream_length - 1, start + duration - 1)
    frames = end - start + 1
    origin = rng.uniform(-SCENE_RADIUS, SCENE_RADIUS, size=2)
    steps = rng.normal(0, 1.0, size=(frames, 2))
    positions = origin + np.cumsum(steps, axis=0)
    # Keep the wanderer inside the scene.
    positions = np.clip(positions, -SCENE_RADIUS, SCENE_RADIUS)
    return Track(
        track_id=track_id,
        label="clutter",
        start=start,
        end=end,
        positions=positions,
    )


def simulate_tracks(
    stream: VideoStream,
    event_types: Sequence[EventType],
    clutter_per_10k_frames: float = 5.0,
    seed_salt: int = 0,
) -> TrackSet:
    """Simulate actor + clutter tracks consistent with a stream's schedule.

    Every instance of every event type gets one actor track whose approach
    phase spans the event's lead time; clutter tracks are sprinkled at the
    given density.  Deterministic given the stream seed.
    """
    if not event_types:
        raise ValueError("event_types must be non-empty")
    if clutter_per_10k_frames < 0:
        raise ValueError("clutter density must be non-negative")
    rng = stream.observation_rng(salt=971 + seed_salt)
    tracks: List[Track] = []
    next_id = 0
    for event_type in event_types:
        for instance in stream.schedule.instances_of(event_type):
            tracks.append(
                _actor_track(
                    next_id,
                    event_type.name,
                    instance.start,
                    instance.end,
                    event_type.lead_time,
                    stream.length,
                    rng,
                )
            )
            next_id += 1
    num_clutter = int(round(clutter_per_10k_frames * stream.length / 10_000))
    for _ in range(num_clutter):
        tracks.append(_clutter_track(next_id, stream.length, rng))
        next_id += 1
    return TrackSet(stream.length, tracks)
