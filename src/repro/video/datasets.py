"""Synthetic datasets calibrated to the paper's Table I.

The paper evaluates on VIRAT (surveillance), THUMOS (sports actions) and
Breakfast (cooking action units).  Those corpora are not available offline,
so we generate synthetic streams whose *event statistics* match Table I:
occurrence counts, duration means and duration standard deviations per event
type.  The per-frame observations are produced later by
:mod:`repro.features` from the ground-truth schedule.

Group structure (paper §VI.D) is preserved through the ``predictability``
attribute of each event type: Group 1 events (short duration, small σ —
E1–E4, E7–E10) get strong precursor signal; Group 2 events (long duration or
large σ — E5, E6, E11, E12) get weaker signal, reproducing the paper's
finding that they are harder to marshal.

Note: the OCR of Table I lost the duration mean of E1; we assume 61.2 frames
(consistent with its σ=15.4 and the sibling event E2), recorded as a
substitution in DESIGN.md / EXPERIMENTS.md.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .arrivals import FixedCountArrivals
from .events import EventInstance, EventSchedule, EventType
from .stream import VideoStream

__all__ = [
    "DatasetSpec",
    "Table1Row",
    "TABLE1_ROWS",
    "EVENT_TYPES",
    "make_virat",
    "make_thumos",
    "make_breakfast",
    "make_dataset",
    "make_stream",
    "build_schedule",
    "table1_stats",
    "GROUP1_EVENTS",
    "GROUP2_EVENTS",
]


@dataclass(frozen=True)
class Table1Row:
    """One row of the paper's Table I."""

    event_id: str
    name: str
    dataset: str
    occurrences: int
    duration_avg: float
    duration_std: float


# Paper Table I verbatim (E1 mean reconstructed; see module docstring).
TABLE1_ROWS: List[Table1Row] = [
    Table1Row("E1", "Person Opening a Vehicle", "VIRAT", 54, 61.2, 15.4),
    Table1Row("E2", "Person Closing a Vehicle", "VIRAT", 57, 62.0, 11.9),
    Table1Row("E3", "Person Unloading an Object from a Vehicle", "VIRAT", 56, 86.6, 25.0),
    Table1Row("E4", "Person getting into a Vehicle", "VIRAT", 93, 145.1, 35.1),
    Table1Row("E5", "Person getting out of a Vehicle", "VIRAT", 162, 193.7, 158.8),
    Table1Row("E6", "Person carrying an object", "VIRAT", 165, 571.2, 176.4),
    Table1Row("E7", "Volleyball Spiking", "THUMOS", 80, 99.3, 40.1),
    Table1Row("E8", "Diving", "THUMOS", 74, 91.2, 35.4),
    Table1Row("E9", "Soccer Penalty", "THUMOS", 48, 92.8, 25.9),
    Table1Row("E10", "Cut Fruit", "Breakfast", 132, 114.0, 48.8),
    Table1Row("E11", "Put fruit to Bowl", "Breakfast", 121, 97.2, 107.5),
    Table1Row("E12", "Put Egg to Plate", "Breakfast", 95, 240.2, 153.8),
]

# Paper §VI.D group split driving the difficulty narrative.
GROUP1_EVENTS = {"E1", "E2", "E3", "E4", "E7", "E8", "E9", "E10"}
GROUP2_EVENTS = {"E5", "E6", "E11", "E12"}

# Precursor lead times per dataset: how far before onset the world shows
# warning signs.  They must cover the dataset's default horizon (VIRAT /
# Breakfast H=500, THUMOS H=200) — otherwise events landing in the far part
# of a horizon are invisible to *any* predictor, which caps REC_c below the
# paper's values.  Difficulty then comes from noise (predictability) and
# duration variance, as in the paper's Group 1 / Group 2 split.
_LEAD_TIME = {"VIRAT": 1100, "THUMOS": 440, "Breakfast": 1100}
_PREDICTABILITY = {1: 0.92, 2: 0.55}


def _group_of(event_id: str) -> int:
    return 1 if event_id in GROUP1_EVENTS else 2


def _make_event_type(row: Table1Row) -> EventType:
    return EventType(
        name=row.event_id,
        duration_mean=row.duration_avg,
        duration_std=row.duration_std,
        lead_time=_LEAD_TIME[row.dataset],
        predictability=_PREDICTABILITY[_group_of(row.event_id)],
    )


#: Event types keyed by paper id ("E1".."E12").
EVENT_TYPES: Dict[str, EventType] = {
    row.event_id: _make_event_type(row) for row in TABLE1_ROWS
}

_ROWS_BY_ID: Dict[str, Table1Row] = {row.event_id: row for row in TABLE1_ROWS}

# Full-scale stream lengths chosen so the busiest event stays a minority of
# the stream (the "needle in a haystack" premise of §I):  VIRAT's E6
# occupies 165×571 ≈ 94k frames, ≈16% of 600k.
_DATASET_DEFAULTS = {
    # (length, window M, horizon H) per paper §VI.D defaults.
    "VIRAT": (600_000, 25, 500),
    "THUMOS": (120_000, 10, 200),
    "Breakfast": (250_000, 50, 500),
}


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for generating streams of one synthetic dataset.

    ``scale`` shrinks occurrence counts and stream length proportionally
    (occupancy fractions are preserved) so tests and benchmarks can run at
    laptop speed while the full paper-scale configuration remains available
    with ``scale=1.0``.
    """

    name: str
    event_ids: Tuple[str, ...]
    length: int
    window_size: int
    horizon: int
    occurrences: Dict[str, int]
    fps: float = 30.0

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError("length must be positive")
        if self.window_size <= 0 or self.horizon <= 0:
            raise ValueError("window_size and horizon must be positive")
        unknown = [e for e in self.event_ids if e not in EVENT_TYPES]
        if unknown:
            raise ValueError(f"unknown event ids: {unknown}")
        for event_id in self.event_ids:
            if self.occurrences.get(event_id, 0) <= 0:
                raise ValueError(f"no occurrence count for {event_id}")

    @property
    def event_types(self) -> List[EventType]:
        return [EVENT_TYPES[e] for e in self.event_ids]

    def with_events(self, event_ids: Sequence[str]) -> "DatasetSpec":
        """Restrict the spec to a subset of its event types (task scoping)."""
        missing = [e for e in event_ids if e not in self.event_ids]
        if missing:
            raise ValueError(f"events {missing} not part of dataset {self.name}")
        return replace(
            self,
            event_ids=tuple(event_ids),
            occurrences={e: self.occurrences[e] for e in event_ids},
        )


def _spec_for(dataset: str, event_ids: Sequence[str], scale: float) -> DatasetSpec:
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    length, window, horizon = _DATASET_DEFAULTS[dataset]
    occurrences = {
        e: max(4, int(round(_ROWS_BY_ID[e].occurrences * scale))) for e in event_ids
    }
    return DatasetSpec(
        name=dataset.lower(),
        event_ids=tuple(event_ids),
        length=max(horizon * 10, int(round(length * scale))),
        window_size=window,
        horizon=horizon,
        occurrences=occurrences,
    )


def make_virat(scale: float = 1.0, event_ids: Optional[Sequence[str]] = None) -> DatasetSpec:
    """VIRAT-calibrated spec (events E1–E6, M=25, H=500)."""
    return _spec_for("VIRAT", event_ids or ["E1", "E2", "E3", "E4", "E5", "E6"], scale)


def make_thumos(scale: float = 1.0, event_ids: Optional[Sequence[str]] = None) -> DatasetSpec:
    """THUMOS-calibrated spec (events E7–E9, M=10, H=200)."""
    return _spec_for("THUMOS", event_ids or ["E7", "E8", "E9"], scale)


def make_breakfast(scale: float = 1.0, event_ids: Optional[Sequence[str]] = None) -> DatasetSpec:
    """Breakfast-calibrated spec (events E10–E12, M=50, H=500)."""
    return _spec_for("Breakfast", event_ids or ["E10", "E11", "E12"], scale)


_DATASET_FACTORIES = {
    "virat": make_virat,
    "thumos": make_thumos,
    "breakfast": make_breakfast,
}


def make_dataset(name: str, scale: float = 1.0) -> DatasetSpec:
    """Factory by dataset name ("virat" | "thumos" | "breakfast")."""
    try:
        factory = _DATASET_FACTORIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; expected one of {sorted(_DATASET_FACTORIES)}"
        ) from None
    return factory(scale)


def build_schedule(spec: DatasetSpec, rng: np.random.Generator) -> EventSchedule:
    """Place event instances for every type of ``spec`` in one stream.

    Onsets come from :class:`FixedCountArrivals` with a minimum gap wide
    enough that consecutive instances of the same type cannot overlap even
    at +3σ duration; durations are then drawn per instance and clamped to
    the gap to keep the schedule valid in the tail cases.
    """
    instances: List[EventInstance] = []
    for event_id in spec.event_ids:
        event_type = EVENT_TYPES[event_id]
        count = spec.occurrences[event_id]
        min_gap = int(event_type.duration_mean + 3 * event_type.duration_std) + 2
        process = FixedCountArrivals(count=count, min_gap=min_gap)
        onsets = process.sample(spec.length, rng)
        for index, onset in enumerate(onsets):
            duration = event_type.sample_duration(rng)
            next_onset = onsets[index + 1] if index + 1 < len(onsets) else spec.length
            end = min(onset + duration - 1, next_onset - 1, spec.length - 1)
            if end < onset:
                continue
            instances.append(EventInstance(onset, end, event_type))
    return EventSchedule(spec.length, instances)


def make_stream(spec: DatasetSpec, seed: int = 0, name: Optional[str] = None) -> VideoStream:
    """Generate one reproducible stream for ``spec``.

    Different ``seed`` values give exchangeable streams of the same
    process — the train / calibration / test splits used throughout the
    experiments are separate seeds of the same spec.
    """
    name_hash = zlib.crc32(spec.name.encode("utf-8"))
    rng = np.random.default_rng(np.random.SeedSequence([name_hash, seed]))
    schedule = build_schedule(spec, rng)
    return VideoStream(
        length=spec.length,
        schedule=schedule,
        fps=spec.fps,
        seed=seed,
        name=name or f"{spec.name}-{seed}",
    )


def table1_stats(scale: float = 1.0, seed: int = 0) -> List[dict]:
    """Regenerate Table I from synthetic streams (benchmark for Table I).

    Returns one dict per event type with both the paper's numbers and the
    measured statistics of the generated stream.
    """
    rows = []
    for dataset_name in ("virat", "thumos", "breakfast"):
        spec = make_dataset(dataset_name, scale=scale)
        stream = make_stream(spec, seed=seed)
        for event_id in spec.event_ids:
            event_type = EVENT_TYPES[event_id]
            mean, std = stream.schedule.duration_stats(event_type)
            rows.append(
                {
                    "event": event_id,
                    "name": _ROWS_BY_ID[event_id].name,
                    "dataset": dataset_name,
                    "paper_occurrences": _ROWS_BY_ID[event_id].occurrences,
                    "measured_occurrences": stream.schedule.occurrence_count(event_type),
                    "paper_duration_avg": _ROWS_BY_ID[event_id].duration_avg,
                    "measured_duration_avg": round(mean, 1),
                    "paper_duration_std": _ROWS_BY_ID[event_id].duration_std,
                    "measured_duration_std": round(std, 1),
                }
            )
    return rows
