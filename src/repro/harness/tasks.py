"""Prediction tasks TA1–TA16 (paper Table II).

Each task names a dataset and the subset of its event types whose
occurrences must be predicted jointly.  §VI.D's representative tasks for
the component studies (Figs. 5 & 6) are TA1, TA5, TA7 and TA10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..video.datasets import DatasetSpec, GROUP1_EVENTS, make_dataset

__all__ = ["Task", "TASKS", "REPRESENTATIVE_TASKS", "get_task"]


@dataclass(frozen=True)
class Task:
    """One Table II prediction task."""

    task_id: str
    dataset: str
    event_ids: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.event_ids:
            raise ValueError("a task needs at least one event")

    @property
    def num_events(self) -> int:
        return len(self.event_ids)

    @property
    def is_multi_event(self) -> bool:
        return len(self.event_ids) > 1

    @property
    def group(self) -> int:
        """1 if all events are Group 1, 2 otherwise (paper §VI.D split)."""
        return 1 if all(e in GROUP1_EVENTS for e in self.event_ids) else 2

    def spec(self, scale: float = 1.0) -> DatasetSpec:
        """The dataset spec restricted to this task's events."""
        return make_dataset(self.dataset, scale=scale).with_events(
            list(self.event_ids)
        )


_TASK_TABLE: List[Tuple[str, str, Tuple[str, ...]]] = [
    ("TA1", "virat", ("E1",)),
    ("TA2", "virat", ("E2",)),
    ("TA3", "virat", ("E3",)),
    ("TA4", "virat", ("E4",)),
    ("TA5", "virat", ("E5",)),
    ("TA6", "virat", ("E6",)),
    ("TA7", "virat", ("E1", "E5")),
    ("TA8", "virat", ("E5", "E6")),
    ("TA9", "virat", ("E1", "E5", "E6")),
    ("TA10", "thumos", ("E7",)),
    ("TA11", "thumos", ("E8",)),
    ("TA12", "thumos", ("E9",)),
    ("TA13", "breakfast", ("E10",)),
    ("TA14", "breakfast", ("E11",)),
    ("TA15", "breakfast", ("E11", "E12")),
    ("TA16", "breakfast", ("E10", "E12")),
]

#: All sixteen tasks of Table II, keyed by id.
TASKS: Dict[str, Task] = {
    task_id: Task(task_id, dataset, events)
    for task_id, dataset, events in _TASK_TABLE
}

#: The four representative tasks of Figs. 5 & 6.
REPRESENTATIVE_TASKS: Tuple[str, ...] = ("TA1", "TA5", "TA7", "TA10")


def get_task(task_id: str) -> Task:
    """Look up a task by id ("TA1".."TA16")."""
    try:
        return TASKS[task_id.upper()]
    except KeyError:
        raise ValueError(
            f"unknown task {task_id!r}; expected one of {sorted(TASKS)}"
        ) from None
