"""Fleet harness: build multi-stream deployments and measure scaling.

Glue between one trained :class:`~repro.harness.experiments.Experiment`
and the fleet layer: generate N exchangeable streams of the task's
dataset process (fresh seeds of the same spec, like the train/cal/test
splits), extract their covariates, and drive a
:class:`~repro.fleet.FleetMarshaller` over them — plus the throughput
sweep behind the ``fleet`` CLI subcommand and the fleet benchmark, which
reports frames/s versus fleet size for batched-fleet and sequential
serving.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from ..cloud import CloudInferenceService, StreamMarshaller
from ..features import FeatureExtractor
from ..fleet import FleetCIService, FleetLane, FleetMarshaller, FleetReport
from ..obs import log_info, span
from .chaos import chaos_marshaller
from .experiments import Experiment

__all__ = [
    "build_fleet_lanes",
    "fleet_marshaller",
    "run_fleet",
    "sequential_fleet_baseline",
    "fleet_throughput_sweep",
]

#: Seed offset separating fleet streams from the builder's train/cal/test
#: seeds (which use seed*101 + small offsets).
_FLEET_SEED_BASE = 7000


def build_fleet_lanes(
    experiment: Experiment,
    num_streams: int,
    seed: int = 0,
) -> List[FleetLane]:
    """N exchangeable camera lanes for the experiment's dataset process.

    Each lane is a fresh seed of the task's :class:`DatasetSpec` — same
    arrival/duration processes, different realisations — with covariates
    extracted by the standard detector-simulation pipeline.  Lane 0 always
    reuses the experiment's own test stream, so a size-1 fleet is exactly
    the familiar single-stream deployment.
    """
    if num_streams < 1:
        raise ValueError("num_streams must be >= 1")
    from ..video import make_stream

    spec = experiment.data.spec
    event_types = experiment.data.event_types
    extractor = FeatureExtractor()
    lanes = [
        FleetLane(
            stream=experiment.data.test_stream,
            features=experiment.data.test_features,
        )
    ]
    for i in range(1, num_streams):
        stream = make_stream(
            spec,
            seed=seed * 101 + _FLEET_SEED_BASE + i,
            name=f"{spec.name}-fleet{i}",
        )
        lanes.append(
            FleetLane(stream=stream, features=extractor.extract(stream, event_types))
        )
    return lanes


def fleet_marshaller(
    experiment: Experiment,
    confidence: float = 0.9,
    alpha: float = 0.9,
    scheduler: str = "round-robin",
    tick_budget_frames: Optional[int] = None,
) -> FleetMarshaller:
    """The deployment-shaped fleet engine (EHCR configuration)."""
    return FleetMarshaller(
        chaos_marshaller(experiment, confidence=confidence, alpha=alpha),
        scheduler=scheduler,
        tick_budget_frames=tick_budget_frames,
    )


def run_fleet(
    fleet: FleetMarshaller,
    lanes: Sequence[FleetLane],
    max_horizons: Optional[int] = None,
    failure_policy: str = "raise",
    on_tick=None,
    lifecycle=None,
) -> FleetReport:
    """One fleet run over a fresh shared service (convenience wrapper)."""
    service = FleetCIService([lane.stream for lane in lanes])
    return fleet.run(
        lanes,
        service,
        max_horizons=max_horizons,
        failure_policy=failure_policy,
        on_tick=on_tick,
        lifecycle=lifecycle,
    )


def sequential_fleet_baseline(
    marshaller: StreamMarshaller,
    lanes: Sequence[FleetLane],
    max_horizons: Optional[int] = None,
) -> Dict[str, object]:
    """Serve the same lanes one at a time with private services.

    The N-sequential-runs baseline the fleet's equivalence and speedup
    claims are measured against.
    """
    reports = {}
    for lane in lanes:
        service = CloudInferenceService(lane.stream)
        reports[lane.name] = marshaller.run(
            lane.stream, lane.features, service, max_horizons=max_horizons
        )
    return reports


def fleet_throughput_sweep(
    experiment: Experiment,
    fleet_sizes: Sequence[int] = (1, 2, 4, 8, 16),
    max_horizons: Optional[int] = 6,
    scheduler: str = "round-robin",
    tick_budget_frames: Optional[int] = None,
    confidence: float = 0.9,
    alpha: float = 0.9,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Throughput (frames/s) versus fleet size, fleet versus sequential.

    For each size N the same lanes are served twice — batched through one
    :class:`FleetMarshaller` + shared service, then one at a time with
    private services — and each pass is timed with ``perf_counter``.
    Returns one row per size with covered-frames/s for both paths and the
    fleet:sequential speedup, ready for ``format_table``.
    """
    fleet = fleet_marshaller(
        experiment,
        confidence=confidence,
        alpha=alpha,
        scheduler=scheduler,
        tick_budget_frames=tick_budget_frames,
    )
    lanes_all = build_fleet_lanes(experiment, max(fleet_sizes), seed=seed)
    rows: List[Dict[str, float]] = []
    with span("fleet.sweep", sizes=len(list(fleet_sizes)), scheduler=scheduler):
        for size in fleet_sizes:
            lanes = lanes_all[:size]

            start = time.perf_counter()
            report = run_fleet(fleet, lanes, max_horizons=max_horizons)
            fleet_seconds = time.perf_counter() - start
            frames = report.fleet.frames_covered

            start = time.perf_counter()
            sequential_fleet_baseline(
                fleet.marshaller, lanes, max_horizons=max_horizons
            )
            seq_seconds = time.perf_counter() - start

            fleet_fps = frames / fleet_seconds if fleet_seconds > 0 else float("inf")
            seq_fps = frames / seq_seconds if seq_seconds > 0 else float("inf")
            row = {
                "streams": size,
                "frames": frames,
                "fleet_s": fleet_seconds,
                "seq_s": seq_seconds,
                "fleet_fps": fleet_fps,
                "seq_fps": seq_fps,
                "speedup": fleet_fps / seq_fps if seq_fps > 0 else float("inf"),
                "cost": report.shared_cost,
                "REC": report.fleet.frame_recall,
            }
            rows.append(row)
            log_info(
                "fleet.sweep_point",
                streams=size,
                fleet_fps=round(fleet_fps, 1),
                seq_fps=round(seq_fps, 1),
                speedup=round(row["speedup"], 2),
            )
    return rows
