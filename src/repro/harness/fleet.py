"""Fleet harness: build multi-stream deployments and measure scaling.

Glue between one trained :class:`~repro.harness.experiments.Experiment`
and the fleet layer: generate N exchangeable streams of the task's
dataset process (fresh seeds of the same spec, like the train/cal/test
splits), extract their covariates, and drive a
:class:`~repro.fleet.FleetMarshaller` over them — plus the throughput
sweep behind the ``fleet`` CLI subcommand and the fleet benchmark, which
reports frames/s versus fleet size for batched-fleet and sequential
serving.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..cloud import CloudInferenceService, StreamMarshaller
from ..core import BatchedInference, make_engine
from ..features import CovariatePipeline, FeatureExtractor
from ..fleet import (
    AdmissionConfig,
    ChaosServiceFactory,
    FleetCIService,
    FleetLane,
    FleetMarshaller,
    FleetReport,
    PlainServiceFactory,
    ShardedFleetMarshaller,
    ShardFaultPlan,
    SupervisorConfig,
)
from ..obs import log_info, span
from .chaos import chaos_marshaller
from .experiments import Experiment

__all__ = [
    "build_fleet_lanes",
    "fleet_marshaller",
    "run_fleet",
    "sequential_fleet_baseline",
    "fleet_throughput_sweep",
    "continual_gate_sweep",
    "sharded_fleet_marshaller",
    "sharded_throughput_sweep",
    "shard_chaos_sweep",
]

#: Seed offset separating fleet streams from the builder's train/cal/test
#: seeds (which use seed*101 + small offsets).
_FLEET_SEED_BASE = 7000


def build_fleet_lanes(
    experiment: Experiment,
    num_streams: int,
    seed: int = 0,
    partition=None,
):
    """N exchangeable camera lanes for the experiment's dataset process.

    Each lane is a fresh seed of the task's :class:`DatasetSpec` — same
    arrival/duration processes, different realisations — with covariates
    extracted by the standard detector-simulation pipeline.  Lane 0 always
    reuses the experiment's own test stream, so a size-1 fleet is exactly
    the familiar single-stream deployment.

    ``partition``, when given, is a callable ``partition(lanes) -> X``
    applied to the finished lane list before returning — the seam that
    guarantees sharded and sequential runs are built from *identical*
    lane objects (e.g. ``partition=lambda lanes:
    contiguous_partition(lanes, 4)`` returns the shard assignment the
    sharded run will use, computed from the very lanes the unsharded
    reference run serves).
    """
    if num_streams < 1:
        raise ValueError("num_streams must be >= 1")
    from ..video import make_stream

    spec = experiment.data.spec
    event_types = experiment.data.event_types
    extractor = FeatureExtractor()
    lanes = [
        FleetLane(
            stream=experiment.data.test_stream,
            features=experiment.data.test_features,
        )
    ]
    for i in range(1, num_streams):
        stream = make_stream(
            spec,
            seed=seed * 101 + _FLEET_SEED_BASE + i,
            name=f"{spec.name}-fleet{i}",
        )
        lanes.append(
            FleetLane(stream=stream, features=extractor.extract(stream, event_types))
        )
    if partition is not None:
        return partition(lanes)
    return lanes


def fleet_marshaller(
    experiment: Experiment,
    confidence: float = 0.9,
    alpha: float = 0.9,
    scheduler: str = "round-robin",
    tick_budget_frames: Optional[int] = None,
    engine: str = "windowed",
    gate_delta: Optional[float] = None,
) -> FleetMarshaller:
    """The deployment-shaped fleet engine (EHCR configuration).

    ``engine`` / ``gate_delta`` select the inference engine
    (:data:`~repro.core.continual.ENGINES`), exactly as in
    :func:`~repro.harness.chaos.chaos_marshaller`.
    """
    return FleetMarshaller(
        chaos_marshaller(
            experiment,
            confidence=confidence,
            alpha=alpha,
            engine=engine,
            gate_delta=gate_delta,
        ),
        scheduler=scheduler,
        tick_budget_frames=tick_budget_frames,
    )


def run_fleet(
    fleet: FleetMarshaller,
    lanes: Sequence[FleetLane],
    max_horizons: Optional[int] = None,
    failure_policy: str = "raise",
    on_tick=None,
    lifecycle=None,
) -> FleetReport:
    """One fleet run over a fresh shared service (convenience wrapper)."""
    service = FleetCIService([lane.stream for lane in lanes])
    return fleet.run(
        lanes,
        service,
        max_horizons=max_horizons,
        failure_policy=failure_policy,
        on_tick=on_tick,
        lifecycle=lifecycle,
    )


def sequential_fleet_baseline(
    marshaller: StreamMarshaller,
    lanes: Sequence[FleetLane],
    max_horizons: Optional[int] = None,
) -> Dict[str, object]:
    """Serve the same lanes one at a time with private services.

    The N-sequential-runs baseline the fleet's equivalence and speedup
    claims are measured against.
    """
    reports = {}
    for lane in lanes:
        service = CloudInferenceService(lane.stream)
        reports[lane.name] = marshaller.run(
            lane.stream, lane.features, service, max_horizons=max_horizons
        )
    return reports


def fleet_throughput_sweep(
    experiment: Experiment,
    fleet_sizes: Sequence[int] = (1, 2, 4, 8, 16),
    max_horizons: Optional[int] = 6,
    scheduler: str = "round-robin",
    tick_budget_frames: Optional[int] = None,
    confidence: float = 0.9,
    alpha: float = 0.9,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Throughput (frames/s) versus fleet size, fleet versus sequential.

    For each size N the same lanes are served twice — batched through one
    :class:`FleetMarshaller` + shared service, then one at a time with
    private services — and each pass is timed with ``perf_counter``.
    Returns one row per size with covered-frames/s for both paths and the
    fleet:sequential speedup, ready for ``format_table``.
    """
    fleet = fleet_marshaller(
        experiment,
        confidence=confidence,
        alpha=alpha,
        scheduler=scheduler,
        tick_budget_frames=tick_budget_frames,
    )
    lanes_all = build_fleet_lanes(experiment, max(fleet_sizes), seed=seed)
    rows: List[Dict[str, float]] = []
    with span("fleet.sweep", sizes=len(list(fleet_sizes)), scheduler=scheduler):
        for size in fleet_sizes:
            lanes = lanes_all[:size]

            start = time.perf_counter()
            report = run_fleet(fleet, lanes, max_horizons=max_horizons)
            fleet_seconds = time.perf_counter() - start
            frames = report.fleet.frames_covered

            start = time.perf_counter()
            sequential_fleet_baseline(
                fleet.marshaller, lanes, max_horizons=max_horizons
            )
            seq_seconds = time.perf_counter() - start

            fleet_fps = frames / fleet_seconds if fleet_seconds > 0 else float("inf")
            seq_fps = frames / seq_seconds if seq_seconds > 0 else float("inf")
            row = {
                "streams": size,
                "frames": frames,
                "fleet_s": fleet_seconds,
                "seq_s": seq_seconds,
                "fleet_fps": fleet_fps,
                "seq_fps": seq_fps,
                "speedup": fleet_fps / seq_fps if seq_fps > 0 else float("inf"),
                "cost": report.shared_cost,
                "REC": report.fleet.frame_recall,
            }
            rows.append(row)
            log_info(
                "fleet.sweep_point",
                streams=size,
                fleet_fps=round(fleet_fps, 1),
                seq_fps=round(seq_fps, 1),
                speedup=round(row["speedup"], 2),
            )
    return rows


def sharded_fleet_marshaller(
    experiment: Experiment,
    num_shards: int,
    confidence: float = 0.9,
    alpha: float = 0.9,
    scheduler: str = "round-robin",
    tick_budget_frames: Optional[int] = None,
    engine: str = "windowed",
    gate_delta: Optional[float] = None,
    partition: str = "contiguous",
    fault_rate: float = 0.0,
    seed: int = 0,
    admission: Optional[AdmissionConfig] = None,
    start_method: Optional[str] = None,
    heartbeat_every: int = 1,
    supervisor: Optional[SupervisorConfig] = None,
    shard_fault_plan: Optional[ShardFaultPlan] = None,
    startup_timeout: Optional[float] = 120.0,
) -> ShardedFleetMarshaller:
    """The deployment-shaped multi-process fleet engine.

    Wraps :func:`fleet_marshaller`'s stack in a
    :class:`~repro.fleet.ShardedFleetMarshaller`; ``fault_rate > 0``
    swaps the per-shard service factory to a seeded
    :class:`~repro.fleet.ChaosServiceFactory` (resilient client over a
    fault injector, shard-independent seeds).  ``supervisor`` turns the
    coordinator into the self-healing control plane, and
    ``shard_fault_plan`` injects seeded process-level chaos
    (:class:`~repro.fleet.ShardFaultPlan`) into the workers themselves.
    """
    fleet = fleet_marshaller(
        experiment,
        confidence=confidence,
        alpha=alpha,
        scheduler=scheduler,
        tick_budget_frames=tick_budget_frames,
        engine=engine,
        gate_delta=gate_delta,
    )
    if fault_rate > 0:
        factory = ChaosServiceFactory(fault_rate=fault_rate, seed=seed)
    else:
        factory = PlainServiceFactory()
    return ShardedFleetMarshaller(
        fleet,
        num_shards,
        partition=partition,
        service_factory=factory,
        admission=admission,
        start_method=start_method,
        heartbeat_every=heartbeat_every,
        supervisor=supervisor,
        fault_plan=shard_fault_plan,
        startup_timeout=startup_timeout,
    )


def shard_chaos_sweep(
    experiment: Experiment,
    num_streams: int = 8,
    num_shards: int = 4,
    fault_rate: float = 0.5,
    max_horizons: Optional[int] = 2,
    seed: int = 0,
    kinds: Sequence[str] = ("crash", "sigkill", "stall"),
    supervisor: Optional[SupervisorConfig] = None,
) -> List[Dict[str, object]]:
    """Recovery metrics for a supervised fleet under seeded shard chaos.

    Draws a :meth:`~repro.fleet.ShardFaultPlan.seeded` fault plan, runs
    the same lanes three times — fault-free single process (the
    byte-identity reference), supervised fault-free, and supervised under
    the plan — and reports one row per run with frames covered/lost,
    ledger cost, restarts, escalations, and whether the merged chaos
    report matched the fault-free reference byte-for-byte.  Every row
    must show ``frames_lost == 0``; the chaos row shows
    ``byte_identical`` whenever replay succeeded for every faulted
    shard.  Backs the EXPERIMENTS.md recovery entry and the CI
    shard-chaos cell.
    """
    if supervisor is None:
        # Generous liveness deadlines so loaded CI boxes never mistake a
        # slow-but-healthy worker for a hung one; stalls are still caught
        # (just slowly) and every other fault kind kills the pipe outright.
        supervisor = SupervisorConfig(
            suspect_after=30.0, dead_after=60.0, checkpoint_every=4,
            poll_timeout=0.05,
        )
    plan = ShardFaultPlan.seeded(
        num_shards, rate=fault_rate, seed=seed, kinds=tuple(kinds)
    )
    fleet = fleet_marshaller(experiment)
    lanes = build_fleet_lanes(experiment, num_streams, seed=seed)

    import json as _json

    def _canonical(report) -> str:
        return _json.dumps(report.to_dict(), sort_keys=True)

    with span("fleet.shard_chaos_sweep", shards=num_shards,
              faults=len(plan.faults)):
        service = FleetCIService([lane.stream for lane in lanes])
        fleet.run(lanes, service, max_horizons=max_horizons)

        rows: List[Dict[str, object]] = []
        reference: Optional[str] = None
        cells = (
            ("fault-free", None),
            ("supervised", None),
            ("shard-chaos", plan),
        )
        for label, cell_plan in cells:
            cfg = None if label == "fault-free" else supervisor
            sharded = ShardedFleetMarshaller(
                fleet, num_shards, supervisor=cfg, fault_plan=cell_plan
            )
            start = time.perf_counter()
            report = sharded.run(lanes, max_horizons=max_horizons)
            elapsed = time.perf_counter() - start
            canon = _canonical(report)
            if reference is None:
                reference = canon
            supervision = report.supervision or {}
            row = {
                "cell": label,
                "streams": num_streams,
                "shards": num_shards,
                "faults": len(plan.faults) if cell_plan is not None else 0,
                "frames": report.fleet.frames_covered,
                "frames_lost": sum(
                    s.frames_lost for s in report.per_stream.values()
                ),
                "cost": report.ledger.total_cost,
                "restarts": sum(supervision.get("restarts", [])),
                "rescued": len(supervision.get("rescued_lanes", [])),
                "degraded": len(supervision.get("degraded_lanes", [])),
                "wall_s": elapsed,
                "byte_identical": canon == reference,
                "ledger_exact": report.ledger == service.ledger,
            }
            rows.append(row)
            log_info(
                "fleet.shard_chaos_point",
                cell=label,
                faults=row["faults"],
                frames_lost=row["frames_lost"],
                restarts=row["restarts"],
                byte_identical=row["byte_identical"],
            )
    return rows


def sharded_throughput_sweep(
    experiment: Experiment,
    stream_counts: Sequence[int] = (64, 256, 1024),
    num_shards: int = 4,
    max_horizons: Optional[int] = 2,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Critical-path speedup of the sharded fleet versus one process.

    For each stream count the same lanes are served twice: once through
    a single-process :class:`FleetMarshaller` (timed with
    ``perf_counter``) and once through a ``num_shards``-way
    :class:`~repro.fleet.ShardedFleetMarshaller`.  The sharded figure of
    merit is the **critical path** — the busiest shard's CPU time plus
    coordination overhead — which equals sharded wall time on a machine
    with ``num_shards`` free cores but is reproducible on a loaded or
    single-core CI box, where wall time is not.  Backs the EXPERIMENTS.md
    scale-out curve and the sharded throughput benchmark.
    """
    fleet = fleet_marshaller(experiment)
    sharded = ShardedFleetMarshaller(fleet, num_shards)
    lanes_all = build_fleet_lanes(experiment, max(stream_counts), seed=seed)
    rows: List[Dict[str, float]] = []
    with span("fleet.sharded_sweep", sizes=len(list(stream_counts)),
              shards=num_shards):
        for count in stream_counts:
            lanes = lanes_all[:count]

            start = time.perf_counter()
            single = FleetCIService([lane.stream for lane in lanes])
            report = fleet.run(lanes, single, max_horizons=max_horizons)
            single_s = time.perf_counter() - start
            frames = report.fleet.frames_covered

            sharded_report = sharded.run(lanes, max_horizons=max_horizons)
            critical_s = sharded_report.critical_path_seconds
            row = {
                "streams": count,
                "shards": num_shards,
                "frames": frames,
                "single_s": single_s,
                "busy_max_s": max(sharded_report.shard_busy_seconds, default=0.0),
                "coordinator_s": sharded_report.coordinator_seconds,
                "critical_path_s": critical_s,
                "speedup": single_s / critical_s if critical_s > 0 else float("inf"),
                "single_fps": frames / single_s if single_s > 0 else float("inf"),
                "sharded_fps": frames / critical_s if critical_s > 0 else float("inf"),
            }
            rows.append(row)
            log_info(
                "fleet.sharded_sweep_point",
                streams=count,
                single_s=round(single_s, 3),
                critical_path_s=round(critical_s, 3),
                speedup=round(row["speedup"], 2),
            )
    return rows


def continual_gate_sweep(
    experiment: Experiment,
    deltas: Sequence[float] = (0.0, 0.01, 0.05, 0.1, 0.2),
    num_streams: int = 8,
    max_ticks: int = 64,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Gated-engine speedup and score drift versus gate threshold.

    Serves ``num_streams`` lanes at stride 1 (one new frame per tick —
    the per-frame serving regime where continual inference pays off) for
    ``max_ticks`` ticks: once through the windowed engine (the speedup
    reference), once through the ungated continual engine (the *accuracy*
    reference — at stride 1 the carried state conditions on the whole
    prefix since warmup, so comparing gated scores to windowed would
    conflate gating error with that context difference), and once per
    gate threshold through the gated engine.  Each row reports the
    engine-level speedup over windowed, the fraction of lane-ticks the
    change gate absorbed, and the worst absolute score deviation from the
    ungated continual scores — pure gating error (δ=0 gates only
    bit-identical frames, so its drift row is exactly 0).  Backs the
    EXPERIMENTS.md curve and the CI chaos sweep.
    """
    if num_streams < 1:
        raise ValueError("num_streams must be >= 1")
    if max_ticks < 2:
        raise ValueError("max_ticks must be >= 2 (tick 0 is all warmups)")
    model = experiment.model
    pipeline = CovariatePipeline(
        experiment.data.spec.window_size,
        standardizer=experiment.data.standardizer,
    )
    lanes = build_fleet_lanes(experiment, num_streams, seed=seed)
    keys = [lane.name for lane in lanes]
    first = pipeline.min_frame()
    ticks = [
        np.stack(
            [
                pipeline.covariates_at(lane.features, first + t)
                for lane in lanes
            ]
        )
        for t in range(max_ticks)
    ]
    end_frames = [[first + t] * num_streams for t in range(max_ticks)]

    windowed = BatchedInference(model)
    start = time.perf_counter()
    for w in ticks:
        windowed.predict(w)
    windowed_s = time.perf_counter() - start

    ungated = make_engine("continual", model)
    reference = [
        ungated.update(w, keys, end_frames[t]).scores
        for t, w in enumerate(ticks)
    ]

    rows: List[Dict[str, float]] = []
    with span("continual.gate_sweep", deltas=len(list(deltas))):
        for delta in deltas:
            engine = make_engine("gated", model, gate_delta=delta)
            start = time.perf_counter()
            scores = [
                engine.update(w, keys, end_frames[t]).scores
                for t, w in enumerate(ticks)
            ]
            engine_s = time.perf_counter() - start
            hits = sum(engine.gate_stats(key)[0] for key in keys)
            drift = max(
                float(np.max(np.abs(s - r))) for s, r in zip(scores, reference)
            )
            row = {
                "delta": float(delta),
                "streams": num_streams,
                "ticks": max_ticks,
                "windowed_s": windowed_s,
                "gated_s": engine_s,
                "speedup": windowed_s / engine_s if engine_s > 0 else float("inf"),
                "gate_hit_rate": hits / (num_streams * max_ticks),
                "max_score_drift": drift,
            }
            rows.append(row)
            log_info(
                "continual.gate_sweep_point",
                delta=float(delta),
                speedup=round(row["speedup"], 2),
                gate_hit_rate=round(row["gate_hit_rate"], 3),
                max_score_drift=round(drift, 6),
            )
    return rows
