"""Generators for every table and figure of the paper's evaluation (§VI).

Each ``figN_*`` function returns plain row dictionaries (printable with
:mod:`repro.harness.reporting`) containing the same series the paper plots.
The benchmark suite under ``benchmarks/`` calls these with scaled-down
settings; passing paper-scale settings reproduces the full workloads.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..metrics import (
    TimingModel,
    brute_force_expense,
    expense,
    optimal_expense,
)
from ..metrics.accuracy import evaluate
from ..video.datasets import TABLE1_ROWS, table1_stats
from .experiments import CurvePoint, Experiment, ExperimentSettings, run_experiment
from .sweeps import DEFAULT_ALPHAS, DEFAULT_CONFIDENCES, min_spl_at_rec, pareto_frontier
from .tasks import TASKS, get_task

__all__ = [
    "table1_rows",
    "table2_rows",
    "fig4_rec_spl",
    "fig5_cclassify",
    "fig6_cregress",
    "fig8_cost",
    "fig9_fps",
    "fig10_stage_breakdown",
    "algorithm_timing",
]

#: Action-detection models run at ≈25 fps (paper footnote 8); the APP-VAE
#: surrogate pays this rate over its large history window.
ACTION_DETECTOR_FPS = 25.0


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------
def table1_rows(scale: float = 1.0, seed: int = 0) -> List[dict]:
    """Table I: paper vs measured event statistics of the synthetic data."""
    return table1_stats(scale=scale, seed=seed)


def table2_rows() -> List[dict]:
    """Table II: the task → event-set mapping."""
    return [
        {
            "task": task.task_id,
            "dataset": task.dataset,
            "events": "{" + ", ".join(task.event_ids) + "}",
            "group": task.group,
        }
        for task in TASKS.values()
    ]


# ----------------------------------------------------------------------
# Fig. 4 — REC–SPL curves of all algorithms on a task
# ----------------------------------------------------------------------
def fig4_rec_spl(
    task_id: str,
    settings: Optional[ExperimentSettings] = None,
    confidences: Sequence[float] = DEFAULT_CONFIDENCES,
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    cox_taus: Sequence[float] = (0.1, 0.2, 0.3, 0.5, 0.7, 0.9),
    vqs_taus: Sequence[int] = (1, 5, 10, 20, 40, 80),
    experiment: Optional[Experiment] = None,
) -> List[dict]:
    """All-algorithm REC/SPL rows for one task (one Fig. 4 panel).

    The point/curve structure matches the paper: EHO and APP-VAE are single
    operating points, EHC sweeps c, EHR sweeps α, EHCR sweeps the (c, α)
    grid, COX and VQS sweep their thresholds, OPT and BF are the corners.
    """
    experiment = experiment or run_experiment(task_id, settings=settings)
    rows: List[dict] = []

    def add(algorithm: str, knobs: Dict[str, float], summary) -> None:
        rows.append(
            {
                "task": experiment.task.task_id,
                "algorithm": algorithm,
                **{f"knob_{k}": v for k, v in knobs.items()},
                **summary.as_dict(),
            }
        )

    add("OPT", {}, experiment.evaluate("OPT"))
    add("BF", {}, experiment.evaluate("BF"))
    add("EHO", {}, experiment.evaluate("EHO"))
    for point in experiment.curve("EHC", "confidence", confidences):
        add("EHC", point.knobs, point.summary)
    for point in experiment.curve("EHR", "alpha", alphas):
        add("EHR", point.knobs, point.summary)
    for point in experiment.ehcr_grid(confidences, alphas):
        add("EHCR", point.knobs, point.summary)
    for point in experiment.curve("COX", "tau", cox_taus):
        add("COX", point.knobs, point.summary)
    for point in experiment.curve("VQS", "tau", vqs_taus):
        add("VQS", point.knobs, point.summary)
    if experiment.task.dataset == "breakfast":
        # The paper only runs APP-VAE on Breakfast (events dense enough).
        add("APP-VAE", {}, experiment.evaluate("APP-VAE"))
    return rows


# ----------------------------------------------------------------------
# Figs. 5 & 6 — conformal component studies
# ----------------------------------------------------------------------
def fig5_cclassify(
    task_id: str,
    settings: Optional[ExperimentSettings] = None,
    confidences: Sequence[float] = DEFAULT_CONFIDENCES,
    experiment: Optional[Experiment] = None,
) -> List[dict]:
    """EHC's REC / SPL / REC_c as the confidence level c varies."""
    experiment = experiment or run_experiment(task_id, settings=settings)
    rows = []
    for point in experiment.curve("EHC", "confidence", confidences):
        rows.append(
            {
                "task": experiment.task.task_id,
                "c": point.knobs["confidence"],
                "REC": point.summary.rec,
                "SPL": point.summary.spl,
                "REC_c": point.summary.rec_c,
            }
        )
    return rows


def fig6_cregress(
    task_id: str,
    settings: Optional[ExperimentSettings] = None,
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    experiment: Optional[Experiment] = None,
) -> List[dict]:
    """EHR's REC / SPL / REC_r as the coverage level α varies."""
    experiment = experiment or run_experiment(task_id, settings=settings)
    rows = []
    for point in experiment.curve("EHR", "alpha", alphas):
        rows.append(
            {
                "task": experiment.task.task_id,
                "alpha": point.knobs["alpha"],
                "REC": point.summary.rec,
                "SPL": point.summary.spl,
                "REC_r": point.summary.rec_r,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Fig. 8 — monetary cost case study
# ----------------------------------------------------------------------
def fig8_cost(
    task_id: str = "TA1",
    settings: Optional[ExperimentSettings] = None,
    confidences: Sequence[float] = DEFAULT_CONFIDENCES,
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    cox_taus: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
    price_per_frame: float = 0.001,
    experiment: Optional[Experiment] = None,
) -> List[dict]:
    """REC vs expense ($) for OPT, BF, EHCR and COX (the Fig. 8 series)."""
    experiment = experiment or run_experiment(task_id, settings=settings)
    records = experiment.data.test
    rows = [
        {
            "task": experiment.task.task_id,
            "algorithm": "OPT",
            "REC": 1.0,
            "expense": optimal_expense(records, price_per_frame),
        },
        {
            "task": experiment.task.task_id,
            "algorithm": "BF",
            "REC": 1.0,
            "expense": brute_force_expense(records, price_per_frame),
        },
    ]
    for point in experiment.ehcr_grid(confidences, alphas):
        prediction = experiment._predict(
            "EHCR",
            confidence=point.knobs["confidence"],
            alpha=point.knobs["alpha"],
        )
        rows.append(
            {
                "task": experiment.task.task_id,
                "algorithm": "EHCR",
                "REC": point.rec,
                "expense": expense(prediction, price_per_frame),
            }
        )
    for tau in cox_taus:
        prediction = experiment._predict("COX", tau=tau)
        summary = evaluate(prediction, records)
        rows.append(
            {
                "task": experiment.task.task_id,
                "algorithm": "COX",
                "REC": summary.rec,
                "expense": expense(prediction, price_per_frame),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figs. 9 & 10 — throughput and stage breakdown
# ----------------------------------------------------------------------
def algorithm_timing(
    experiment: Experiment,
    algorithm: str,
    timing_model: Optional[TimingModel] = None,
    **knobs,
):
    """PipelineTiming of one algorithm at one knob setting.

    Deployment accounting (the marshalling loop of Fig. 1): each record
    stands for one time horizon of H frames; features are extracted for
    every frame; the predictor runs once per horizon; the CI processes the
    relayed frames.  The APP-VAE surrogate instead pays the ≈25 fps action
    detector over its large history window per prediction (paper
    footnote 8).
    """
    timing_model = timing_model or TimingModel()
    records = experiment.data.test
    prediction = experiment._predict(algorithm, **knobs)
    horizon = records.horizon
    n = len(records)
    frames_covered = n * horizon
    frames_relayed = int(prediction.predicted_frames().sum())
    if algorithm.upper() == "APP-VAE":
        predictor = experiment.predictor("APP-VAE")
        history = predictor.history_window
        slow_extraction_seconds = n * history / ACTION_DETECTOR_FPS
        timing = timing_model.pipeline(
            frames_covered=frames_covered,
            frames_featurized=0,
            predictions_made=n,
            frames_relayed=frames_relayed,
        )
        from ..metrics.timing import PipelineTiming, StageBreakdown

        breakdown = StageBreakdown(
            feature_extraction=slow_extraction_seconds,
            predictor=timing.breakdown.predictor,
            cloud_inference=timing.breakdown.cloud_inference,
        )
        return PipelineTiming(frames_covered=frames_covered, breakdown=breakdown)
    return timing_model.pipeline(
        frames_covered=frames_covered,
        frames_featurized=frames_covered,
        predictions_made=n,
        frames_relayed=frames_relayed,
    )


def fig9_fps(
    task_id: str,
    settings: Optional[ExperimentSettings] = None,
    confidences: Sequence[float] = DEFAULT_CONFIDENCES,
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    cox_taus: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
    vqs_taus: Sequence[int] = (1, 5, 10, 20, 40, 80),
    timing_model: Optional[TimingModel] = None,
    experiment: Optional[Experiment] = None,
) -> List[dict]:
    """REC vs FPS points for EHCR, COX and VQS (one Fig. 9 panel)."""
    experiment = experiment or run_experiment(task_id, settings=settings)
    timing_model = timing_model or TimingModel()
    rows: List[dict] = []

    def add(algorithm: str, knobs: Dict[str, float]) -> None:
        summary = experiment.evaluate(algorithm, **knobs)
        timing = algorithm_timing(experiment, algorithm, timing_model, **knobs)
        rows.append(
            {
                "task": experiment.task.task_id,
                "algorithm": algorithm,
                **{f"knob_{k}": v for k, v in knobs.items()},
                "REC": summary.rec,
                "FPS": timing.fps,
            }
        )

    for c in confidences:
        for a in alphas:
            add("EHCR", {"confidence": c, "alpha": a})
    for tau in cox_taus:
        add("COX", {"tau": tau})
    for tau in vqs_taus:
        add("VQS", {"tau": tau})
    return rows


def fig10_stage_breakdown(
    task_id: str = "TA10",
    rec_target: float = 0.9,
    settings: Optional[ExperimentSettings] = None,
    confidences: Sequence[float] = DEFAULT_CONFIDENCES,
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    timing_model: Optional[TimingModel] = None,
    experiment: Optional[Experiment] = None,
) -> Dict[str, float]:
    """Stage-time proportions of EHCR at the cheapest setting with
    REC ≥ rec_target (Fig. 10's pie chart)."""
    experiment = experiment or run_experiment(task_id, settings=settings)
    timing_model = timing_model or TimingModel()
    points = experiment.ehcr_grid(confidences, alphas)
    eligible = [p for p in points if p.rec >= rec_target]
    if not eligible:
        # Fall back to the maximum-recall point.
        eligible = [max(points, key=lambda p: p.rec)]
    chosen = min(eligible, key=lambda p: p.spl)
    timing = algorithm_timing(
        experiment,
        "EHCR",
        timing_model,
        confidence=chosen.knobs["confidence"],
        alpha=chosen.knobs["alpha"],
    )
    proportions = timing.breakdown.proportions()
    proportions["achieved_REC"] = chosen.rec
    return proportions
