"""Experiment runner: train → calibrate → predict → evaluate for one task.

An :class:`Experiment` owns everything one §VI evaluation point needs:

* the data bundle (train / calibration / test RecordSets + streams);
* a trained EventHit and calibrated C-CLASSIFY / C-REGRESS components;
* constructors for every compared algorithm (EHO/EHC/EHR/EHCR, OPT, BF,
  COX, VQS, APP-VAE surrogate);
* evaluation and REC–SPL-curve utilities.

Benchmarks run experiments at reduced ``scale`` so a full figure
regenerates in seconds; ``scale=1.0`` reproduces the paper-sized workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..baselines import (
    BruteForce,
    CoxPredictor,
    EHC,
    EHCR,
    EHO,
    EHR,
    Oracle,
    PointProcessPredictor,
    TrainedVQSPredictor,
    VQSPredictor,
)
from ..conformal import ConformalClassifier, ConformalRegressor
from ..core import EventHitConfig, train_eventhit
from ..data import ExperimentData, build_experiment_data
from ..metrics import EvaluationSummary, evaluate
from ..obs import inc, log_info, span
from .tasks import Task, get_task

__all__ = ["ExperimentSettings", "Experiment", "CurvePoint", "run_experiment"]


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs controlling experiment size and the model configuration.

    ``scale`` shrinks the synthetic dataset; ``max_records`` caps the
    record count per split; the remaining fields override EventHit
    hyper-parameters (chosen small enough for numpy training).
    """

    scale: float = 0.08
    seed: int = 0
    max_records: int = 250
    stride: Optional[int] = None
    lstm_hidden: int = 16
    shared_hidden: tuple = (16,)
    head_hidden: tuple = (32,)
    dropout: float = 0.0
    learning_rate: float = 5e-3
    epochs: int = 15
    batch_size: int = 32

    def model_config(self, window_size: int, horizon: int) -> EventHitConfig:
        return EventHitConfig(
            window_size=window_size,
            horizon=horizon,
            lstm_hidden=self.lstm_hidden,
            shared_hidden=self.shared_hidden,
            head_hidden=self.head_hidden,
            dropout=self.dropout,
            learning_rate=self.learning_rate,
            epochs=self.epochs,
            batch_size=self.batch_size,
            seed=self.seed,
        )


@dataclass(frozen=True)
class CurvePoint:
    """One point of a REC–SPL trade-off curve."""

    knobs: Dict[str, float]
    summary: EvaluationSummary

    @property
    def rec(self) -> float:
        return self.summary.rec

    @property
    def spl(self) -> float:
        return self.summary.spl


class Experiment:
    """A fully prepared evaluation context for one task."""

    def __init__(
        self,
        task: Task,
        data: ExperimentData,
        model,
        classifier: ConformalClassifier,
        regressor: ConformalRegressor,
        settings: ExperimentSettings,
        encoder: str = "lstm",
    ):
        self.task = task
        self.data = data
        self.model = model
        self.classifier = classifier
        self.regressor = regressor
        self.settings = settings
        self.encoder = encoder
        self._predictors: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Predictor factories (cached)
    # ------------------------------------------------------------------
    def predictor(self, name: str):
        """Build (and cache) a §VI.B algorithm by name."""
        key = name.upper()
        if key in self._predictors:
            return self._predictors[key]
        if key == "EHO":
            predictor = EHO(self.model)
        elif key == "EHC":
            predictor = EHC(self.model, self.classifier)
        elif key == "EHR":
            predictor = EHR(self.model, self.regressor)
        elif key == "EHCR":
            predictor = EHCR(self.model, self.classifier, self.regressor)
        elif key == "OPT":
            predictor = Oracle()
        elif key == "BF":
            predictor = BruteForce()
        elif key == "COX":
            predictor = CoxPredictor().fit(self.data.train)
        elif key == "VQS":
            predictor = VQSPredictor(self.data.test_stream, self.data.event_types)
        elif key == "VQS-NN":
            from ..features import FeatureExtractor

            extractor = FeatureExtractor()
            train_features = extractor.extract(
                self.data.train_stream, self.data.event_types
            )
            predictor = TrainedVQSPredictor(seed=self.settings.seed)
            predictor.fit(
                self.data.train_stream, train_features, self.data.event_types
            )
            predictor.bind(self.data.test_stream, self.data.test_features)
        elif key == "APP-VAE":
            predictor = PointProcessPredictor(
                history_window=8 * self.data.spec.horizon
            ).fit(self.data.train_stream, self.data.event_types)
        else:
            raise ValueError(f"unknown predictor {name!r}")
        self._predictors[key] = predictor
        return predictor

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _predict(self, name: str, **knobs):
        predictor = self.predictor(name)
        if name.upper() == "APP-VAE":
            return predictor.predict(
                self.data.test, stream=self.data.test_stream, **knobs
            )
        return predictor.predict(self.data.test, **knobs)

    def evaluate(self, name: str, **knobs) -> EvaluationSummary:
        """Evaluate one algorithm at one knob setting on the test split.

        Instrumented as one marshalling pass over the test records: the
        predictor run is the ``marshal`` stage, the (simulated) cloud model
        over the relayed frames is the ``ci`` stage, and the ``stage.*``
        work counters feed the §VI.H time-share accounting that
        ``python -m repro.cli metrics`` renders.
        """
        records = self.data.test
        with span("marshal", algorithm=name.upper(), records=len(records)):
            prediction = self._predict(name, **knobs)
        frames_covered = len(records) * records.horizon
        frames_relayed = int(prediction.predicted_frames().sum())
        with span(
            "ci",
            algorithm=name.upper(),
            frames_relayed=frames_relayed,
        ):
            summary = evaluate(prediction, records)
        inc("stage.frames_covered", frames_covered)
        inc("stage.frames_featurized", frames_covered)
        inc("stage.predictions", len(records))
        inc("stage.frames_relayed", frames_relayed)
        log_info(
            "experiment.evaluate",
            task=self.task.task_id,
            algorithm=name.upper(),
            rec=summary.rec,
            spl=summary.spl,
            **knobs,
        )
        return summary

    def curve(
        self, name: str, knob: str, values: Sequence[float]
    ) -> List[CurvePoint]:
        """Sweep one knob and return the REC–SPL trade-off points."""
        points = []
        for value in values:
            summary = self.evaluate(name, **{knob: value})
            points.append(CurvePoint(knobs={knob: value}, summary=summary))
        return points

    def ehcr_grid(
        self,
        confidences: Sequence[float],
        alphas: Sequence[float],
    ) -> List[CurvePoint]:
        """Full (c, α) grid of EHCR — the Fig. 4 EHCR frontier."""
        points = []
        for c in confidences:
            for a in alphas:
                summary = self.evaluate("EHCR", confidence=c, alpha=a)
                points.append(
                    CurvePoint(knobs={"confidence": c, "alpha": a}, summary=summary)
                )
        return points


def run_experiment(
    task,
    settings: Optional[ExperimentSettings] = None,
    encoder: str = "lstm",
    spec_override=None,
) -> Experiment:
    """Prepare an :class:`Experiment` for ``task`` (id or Task object).

    ``spec_override`` substitutes a custom DatasetSpec (used by the M/H
    sensitivity sweeps of Fig. 7).
    """
    settings = settings or ExperimentSettings()
    if isinstance(task, str):
        task = get_task(task)
    with span("experiment", task=task.task_id, scale=settings.scale):
        spec = (
            spec_override if spec_override is not None else task.spec(settings.scale)
        )
        with span("experiment.data", task=task.task_id):
            data = build_experiment_data(
                spec,
                seed=settings.seed,
                stride=settings.stride,
                max_records=settings.max_records,
            )
        config = settings.model_config(spec.window_size, spec.horizon)
        # train_eventhit opens the "train" span; the conformal components
        # open "calibrate.classify" / "calibrate.regress".
        model, history = train_eventhit(data.train, config=config, encoder=encoder)
        classifier = ConformalClassifier(model).calibrate(data.calibration)
        regressor = ConformalRegressor(model).calibrate(data.calibration)
    log_info(
        "experiment.ready",
        task=task.task_id,
        train_records=len(data.train),
        epochs_run=history.epochs_run,
        train_seconds=round(history.seconds, 3),
        final_train_loss=history.final_train_loss,
    )
    return Experiment(
        task=task,
        data=data,
        model=model,
        classifier=classifier,
        regressor=regressor,
        settings=settings,
        encoder=encoder,
    )
