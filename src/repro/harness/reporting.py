"""Plain-text rendering of experiment rows (tables/series like the paper's)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["format_value", "format_table", "format_curve", "summarize_frontier"]


def format_value(value) -> str:
    """Compact human-readable cell: floats to 4 significant places."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000 or (abs(value) < 0.001 and value != 0):
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(rows: Sequence[Mapping], columns: Optional[Sequence[str]] = None) -> str:
    """Render a list of row dicts as an aligned text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    cells = [[format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(line[i]) for line in cells))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(str(col).ljust(w) for col, w in zip(columns, widths))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(cell.ljust(w) for cell, w in zip(line, widths)) for line in cells
    )
    return f"{header}\n{rule}\n{body}"


def format_curve(
    rows: Sequence[Mapping], x: str, y: str, label: Optional[str] = None
) -> str:
    """One-line-per-point rendering of an (x, y) series."""
    prefix = f"{label}: " if label else ""
    points = ", ".join(
        f"({format_value(row[x])}, {format_value(row[y])})" for row in rows
    )
    return f"{prefix}{points}"


def summarize_frontier(rows: Sequence[Mapping], algorithm_key: str = "algorithm") -> str:
    """Per-algorithm best-REC / best-SPL summary of Fig.-4-style rows."""
    by_algorithm: Dict[str, List[Mapping]] = {}
    for row in rows:
        by_algorithm.setdefault(str(row[algorithm_key]), []).append(row)
    lines = []
    for name in sorted(by_algorithm):
        bucket = by_algorithm[name]
        best_rec = max(row["REC"] for row in bucket)
        best_spl = min(row["SPL"] for row in bucket)
        lines.append(
            f"{name}: max REC={format_value(best_rec)}, "
            f"min SPL={format_value(best_spl)} over {len(bucket)} point(s)"
        )
    return "\n".join(lines)
