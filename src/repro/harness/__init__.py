"""Experiment harness: Table II tasks, the train→calibrate→evaluate runner,
knob/hyper-parameter sweeps, per-figure generators, and text reporting."""

from .tasks import REPRESENTATIVE_TASKS, TASKS, Task, get_task
from .experiments import CurvePoint, Experiment, ExperimentSettings, run_experiment
from .chaos import (
    DEFAULT_FAULT_RATES,
    DEFAULT_RETRY_POLICIES,
    chaos_experiment,
    chaos_marshaller,
    run_chaos_cell,
)
from .fleet import (
    build_fleet_lanes,
    fleet_marshaller,
    fleet_throughput_sweep,
    run_fleet,
    sequential_fleet_baseline,
)
from .sweeps import (
    DEFAULT_ALPHAS,
    DEFAULT_CONFIDENCES,
    grid_search_loss_weights,
    min_spl_at_rec,
    pareto_frontier,
    sweep_horizon,
    sweep_window_size,
)
from .figures import (
    algorithm_timing,
    fig10_stage_breakdown,
    fig4_rec_spl,
    fig5_cclassify,
    fig6_cregress,
    fig8_cost,
    fig9_fps,
    table1_rows,
    table2_rows,
)
from .reporting import format_curve, format_table, format_value, summarize_frontier
from .trials import AggregateResult, TrialResult, aggregate_rows, run_trials

__all__ = [
    "Task",
    "TASKS",
    "REPRESENTATIVE_TASKS",
    "get_task",
    "Experiment",
    "ExperimentSettings",
    "CurvePoint",
    "run_experiment",
    "DEFAULT_FAULT_RATES",
    "DEFAULT_RETRY_POLICIES",
    "chaos_experiment",
    "chaos_marshaller",
    "run_chaos_cell",
    "build_fleet_lanes",
    "fleet_marshaller",
    "run_fleet",
    "sequential_fleet_baseline",
    "fleet_throughput_sweep",
    "min_spl_at_rec",
    "pareto_frontier",
    "sweep_window_size",
    "sweep_horizon",
    "grid_search_loss_weights",
    "DEFAULT_CONFIDENCES",
    "DEFAULT_ALPHAS",
    "table1_rows",
    "table2_rows",
    "fig4_rec_spl",
    "fig5_cclassify",
    "fig6_cregress",
    "fig8_cost",
    "fig9_fps",
    "fig10_stage_breakdown",
    "algorithm_timing",
    "format_table",
    "format_curve",
    "format_value",
    "summarize_frontier",
    "TrialResult",
    "AggregateResult",
    "run_trials",
    "aggregate_rows",
]
