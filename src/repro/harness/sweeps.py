"""Parameter sweeps: knob curves, frontier queries, and hyper-parameter
sensitivity (Figs. 5–7) plus the β/γ grid search mentioned in §III."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core import EventHitConfig, Trainer, train_eventhit
from ..data import RecordSet
from ..video.datasets import DatasetSpec
from .experiments import CurvePoint, Experiment, ExperimentSettings, run_experiment
from .tasks import Task, get_task

__all__ = [
    "min_spl_at_rec",
    "pareto_frontier",
    "sweep_window_size",
    "sweep_horizon",
    "grid_search_loss_weights",
    "DEFAULT_CONFIDENCES",
    "DEFAULT_ALPHAS",
]

#: Default knob grids used by the figure benchmarks.
DEFAULT_CONFIDENCES: Tuple[float, ...] = (0.5, 0.7, 0.8, 0.9, 0.95, 0.99, 1.0)
DEFAULT_ALPHAS: Tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 1.0)


def min_spl_at_rec(points: Sequence[CurvePoint], rec_level: float) -> float:
    """Smallest SPL among sweep points achieving REC ≥ rec_level.

    Returns NaN when the level is unreachable — Fig. 7 reports exactly this
    quantity per (M, H, REC-level) cell.
    """
    eligible = [p.spl for p in points if p.rec >= rec_level]
    return min(eligible) if eligible else float("nan")


def pareto_frontier(points: Sequence[CurvePoint]) -> List[CurvePoint]:
    """Non-dominated (REC up, SPL down) subset, sorted by SPL."""
    ordered = sorted(points, key=lambda p: (p.spl, -p.rec))
    frontier: List[CurvePoint] = []
    best_rec = -np.inf
    for point in ordered:
        if point.rec > best_rec:
            frontier.append(point)
            best_rec = point.rec
    return frontier


def _spec_with(spec: DatasetSpec, window_size=None, horizon=None) -> DatasetSpec:
    changes = {}
    if window_size is not None:
        changes["window_size"] = window_size
    if horizon is not None:
        changes["horizon"] = horizon
    return replace(spec, **changes)


def sweep_window_size(
    task,
    window_sizes: Sequence[int],
    rec_levels: Sequence[float],
    settings: Optional[ExperimentSettings] = None,
    confidences: Sequence[float] = DEFAULT_CONFIDENCES,
    alphas: Sequence[float] = DEFAULT_ALPHAS,
) -> List[Dict[str, float]]:
    """Fig. 7 (left): SPL of EHCR at fixed REC levels vs M.

    One experiment (train + calibrate) per M; each experiment sweeps the
    EHCR (c, α) grid and reports the minimum SPL reaching each REC level.
    """
    settings = settings or ExperimentSettings()
    if isinstance(task, str):
        task = get_task(task)
    rows = []
    for m in window_sizes:
        spec = _spec_with(task.spec(settings.scale), window_size=m)
        experiment = run_experiment(task, settings=settings, spec_override=spec)
        points = experiment.ehcr_grid(confidences, alphas)
        row: Dict[str, float] = {"M": float(m)}
        for level in rec_levels:
            row[f"SPL@REC>={level}"] = min_spl_at_rec(points, level)
        rows.append(row)
    return rows


def sweep_horizon(
    task,
    horizons: Sequence[int],
    rec_levels: Sequence[float],
    settings: Optional[ExperimentSettings] = None,
    confidences: Sequence[float] = DEFAULT_CONFIDENCES,
    alphas: Sequence[float] = DEFAULT_ALPHAS,
) -> List[Dict[str, float]]:
    """Fig. 7 (right): SPL of EHCR at fixed REC levels vs H."""
    settings = settings or ExperimentSettings()
    if isinstance(task, str):
        task = get_task(task)
    rows = []
    for h in horizons:
        spec = _spec_with(task.spec(settings.scale), horizon=h)
        experiment = run_experiment(task, settings=settings, spec_override=spec)
        points = experiment.ehcr_grid(confidences, alphas)
        row: Dict[str, float] = {"H": float(h)}
        for level in rec_levels:
            row[f"SPL@REC>={level}"] = min_spl_at_rec(points, level)
        rows.append(row)
    return rows


def grid_search_loss_weights(
    train: RecordSet,
    validation: RecordSet,
    config: EventHitConfig,
    beta_grid: Sequence[float] = (0.5, 1.0, 2.0),
    gamma_grid: Sequence[float] = (0.5, 1.0, 2.0),
) -> Tuple[Tuple[float, ...], Tuple[float, ...], float]:
    """Grid search over uniform β/γ loss weights (paper §III).

    Trains one model per (β, γ) cell and returns the pair minimising the
    validation L_total, plus that loss.  Uniform per-event weights keep the
    grid small; per-event grids explode combinatorially and the paper only
    states "tuned by grid search".
    """
    best = (None, None, float("inf"))
    k = train.num_events
    for beta in beta_grid:
        for gamma in gamma_grid:
            candidate = replace(
                config, betas=(beta,) * k, gammas=(gamma,) * k
            )
            model, _ = train_eventhit(train, config=candidate)
            val_loss = Trainer(model).evaluate_loss(validation)
            if val_loss < best[2]:
                best = ((beta,) * k, (gamma,) * k, val_loss)
    return best
