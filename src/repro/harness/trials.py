"""Multi-trial experiment aggregation (paper §VI.D: "We take the average of
10 independent trials for each combination of task and algorithm").

A trial re-draws the synthetic streams, the model initialisation, and the
record sampling under a new seed; :func:`run_trials` aggregates the §VI.C
measures across trials into mean/std rows, which is what the paper's
curves actually plot.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..metrics import EvaluationSummary
from .experiments import Experiment, ExperimentSettings, run_experiment
from .tasks import Task, get_task

__all__ = ["TrialResult", "AggregateResult", "run_trials", "aggregate_rows"]


@dataclass(frozen=True)
class TrialResult:
    """One trial's evaluation of one algorithm/knob setting."""

    seed: int
    summary: EvaluationSummary


@dataclass(frozen=True)
class AggregateResult:
    """Mean/std of the evaluation measures across trials."""

    algorithm: str
    knobs: Dict[str, float]
    num_trials: int
    mean: Dict[str, float]
    std: Dict[str, float]

    def row(self) -> Dict[str, float]:
        """Flat dict for the text reporters: metric and metric_std columns."""
        out: Dict[str, float] = {"algorithm": self.algorithm}
        out.update({f"knob_{k}": v for k, v in self.knobs.items()})
        out["trials"] = self.num_trials
        for key, value in self.mean.items():
            out[key] = value
            out[f"{key}_std"] = self.std[key]
        return out


def _summary_metrics(summary: EvaluationSummary) -> Dict[str, float]:
    data = summary.as_dict()
    data.pop("frames_relayed", None)
    return data


def run_trials(
    task,
    evaluations: Sequence[Dict],
    num_trials: int = 10,
    settings: Optional[ExperimentSettings] = None,
    base_seed: int = 0,
) -> List[AggregateResult]:
    """Run ``num_trials`` independent experiments and aggregate.

    Parameters
    ----------
    task:
        Task id or :class:`Task`.
    evaluations:
        List of dicts ``{"algorithm": name, **knobs}`` to evaluate in every
        trial (e.g. ``{"algorithm": "EHCR", "confidence": 0.95,
        "alpha": 0.9}``).
    num_trials:
        Independent repetitions; each uses seed ``base_seed + trial``.
    settings:
        Template settings; only the seed varies across trials.
    """
    if num_trials <= 0:
        raise ValueError("num_trials must be positive")
    if not evaluations:
        raise ValueError("evaluations must be non-empty")
    settings = settings or ExperimentSettings()
    if isinstance(task, str):
        task = get_task(task)

    per_eval: List[List[TrialResult]] = [[] for _ in evaluations]
    for trial in range(num_trials):
        seed = base_seed + trial
        trial_settings = replace(settings, seed=seed)
        experiment = run_experiment(task, settings=trial_settings)
        for index, spec in enumerate(evaluations):
            spec = dict(spec)
            algorithm = spec.pop("algorithm")
            summary = experiment.evaluate(algorithm, **spec)
            per_eval[index].append(TrialResult(seed=seed, summary=summary))

    results = []
    for spec, trials in zip(evaluations, per_eval):
        spec = dict(spec)
        algorithm = spec.pop("algorithm")
        metric_names = _summary_metrics(trials[0].summary).keys()
        stacked = {
            name: np.array(
                [_summary_metrics(t.summary)[name] for t in trials], dtype=float
            )
            for name in metric_names
        }
        results.append(
            AggregateResult(
                algorithm=algorithm,
                knobs=spec,
                num_trials=num_trials,
                mean={k: float(np.nanmean(v)) for k, v in stacked.items()},
                std={k: float(np.nanstd(v)) for k, v in stacked.items()},
            )
        )
    return results


def aggregate_rows(results: Sequence[AggregateResult]) -> List[Dict[str, float]]:
    """Flat rows (for :func:`repro.harness.reporting.format_table`)."""
    return [result.row() for result in results]
