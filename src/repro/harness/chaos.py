"""Chaos harness: the paper's REC/cost trade-off under unreliable CI.

``chaos_experiment`` sweeps fault rates × retry policies over one task's
marshalling deployment: each cell runs the full horizon-by-horizon loop
against a seeded :class:`~repro.cloud.faults.FaultInjector` wrapped in a
:class:`~repro.cloud.resilient.ResilientCIClient`, and reports recall
(model-level and effective), dollar cost, and retry overhead.  Everything
is deterministic — the same seed, plan, and policy reproduce identical
retries, breaker transitions, and report counters.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..cloud import (
    BreakerConfig,
    CloudInferenceService,
    FaultInjector,
    FaultPlan,
    ResilientCIClient,
    RetryPolicy,
    StreamMarshaller,
)
from ..features import CovariatePipeline
from ..obs import log_info, span
from .experiments import Experiment, ExperimentSettings, run_experiment

__all__ = [
    "DEFAULT_FAULT_RATES",
    "DEFAULT_RETRY_POLICIES",
    "chaos_experiment",
    "chaos_marshaller",
    "run_chaos_cell",
]

#: Default raising-fault rates swept by the chaos harness.
DEFAULT_FAULT_RATES = (0.0, 0.05, 0.1, 0.2, 0.4)

#: Default retry policies: none, modest, aggressive.
DEFAULT_RETRY_POLICIES = (
    RetryPolicy(max_attempts=1),
    RetryPolicy(max_attempts=3),
    RetryPolicy(max_attempts=6),
)


def chaos_marshaller(
    experiment: Experiment,
    confidence: float = 0.9,
    alpha: float = 0.9,
) -> StreamMarshaller:
    """The deployment-shaped marshaller (EHCR configuration) for one task."""
    pipeline = CovariatePipeline(
        experiment.data.spec.window_size,
        standardizer=experiment.data.standardizer,
    )
    return StreamMarshaller(
        experiment.model,
        experiment.data.event_types,
        pipeline,
        classifier=experiment.classifier,
        regressor=experiment.regressor,
        confidence=confidence,
        alpha=alpha,
    )


def run_chaos_cell(
    marshaller: StreamMarshaller,
    experiment: Experiment,
    plan: FaultPlan,
    policy: RetryPolicy,
    breaker: Optional[BreakerConfig] = None,
    failure_policy: str = "defer",
    max_horizons: Optional[int] = None,
) -> Dict[str, float]:
    """One (plan, policy) cell: fresh service stack, one marshalling run."""
    service = CloudInferenceService(experiment.data.test_stream)
    injector = FaultInjector(service, plan)
    client = ResilientCIClient(injector, policy=policy, breaker=breaker)
    report = marshaller.run(
        experiment.data.test_stream,
        experiment.data.test_features,
        client,
        max_horizons=max_horizons,
        failure_policy=failure_policy,
    )
    attempts = max(1, client.stats.attempts)
    return {
        "fault_rate": plan.failure_rate,
        "max_attempts": policy.max_attempts,
        "REC": report.frame_recall,
        "REC_eff": report.effective_recall,
        "cost": report.total_cost,
        "retries": report.retries,
        "retry_overhead": client.stats.retries / attempts,
        "wait_s": client.stats.seconds_waited,
        "frames_lost": report.frames_lost,
        "deferred": report.segments_deferred,
        "failed": report.segments_failed,
        "breaker_opens": client.breaker.open_count,
        "billed_failures": injector.stats.billed_failures,
    }


def chaos_experiment(
    task,
    fault_rates: Sequence[float] = DEFAULT_FAULT_RATES,
    policies: Sequence[RetryPolicy] = DEFAULT_RETRY_POLICIES,
    settings: Optional[ExperimentSettings] = None,
    base_plan: Optional[FaultPlan] = None,
    breaker: Optional[BreakerConfig] = None,
    failure_policy: str = "defer",
    confidence: float = 0.9,
    alpha: float = 0.9,
    seed: int = 0,
    max_horizons: Optional[int] = None,
    experiment: Optional[Experiment] = None,
) -> List[Dict[str, float]]:
    """Sweep fault rates × retry policies over one task's deployment.

    One experiment (train + calibrate) backs the whole grid; each cell
    rescales ``base_plan`` (default: a uniform plan seeded with ``seed``)
    to the cell's raising-fault rate and runs marshalling with
    ``failure_policy`` through a fresh injector + resilient client.
    Returns one row dict per cell, ready for ``format_table``.
    """
    if experiment is None:
        experiment = run_experiment(task, settings=settings)
    if base_plan is None:
        base_plan = FaultPlan(seed=seed)
    marshaller = chaos_marshaller(experiment, confidence=confidence, alpha=alpha)
    rows: List[Dict[str, float]] = []
    with span("chaos", task=experiment.task.task_id, cells=len(fault_rates) * len(policies)):
        for rate in fault_rates:
            plan = base_plan.with_failure_rate(rate)
            for policy in policies:
                with span(
                    "chaos.cell", fault_rate=rate, max_attempts=policy.max_attempts
                ):
                    row = run_chaos_cell(
                        marshaller,
                        experiment,
                        plan,
                        policy,
                        breaker=breaker,
                        failure_policy=failure_policy,
                        max_horizons=max_horizons,
                    )
                rows.append(row)
                log_info(
                    "chaos.cell",
                    fault_rate=rate,
                    max_attempts=policy.max_attempts,
                    rec_eff=row["REC_eff"],
                    cost=row["cost"],
                    retries=row["retries"],
                )
    return rows
