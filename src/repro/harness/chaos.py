"""Chaos harness: the paper's REC/cost trade-off under unreliable CI.

``chaos_experiment`` sweeps fault rates × retry policies over one task's
marshalling deployment: each cell runs the full horizon-by-horizon loop
against a seeded :class:`~repro.cloud.faults.FaultInjector` wrapped in a
:class:`~repro.cloud.resilient.ResilientCIClient`, and reports recall
(model-level and effective), dollar cost, and retry overhead.  Everything
is deterministic — the same seed, plan, and policy reproduce identical
retries, breaker transitions, and report counters.
"""

from __future__ import annotations

import tempfile
from typing import Dict, List, Optional, Sequence

from ..cloud import (
    BreakerConfig,
    CloudInferenceService,
    FaultInjector,
    FaultPlan,
    ResilientCIClient,
    RetryPolicy,
    StreamMarshaller,
)
from ..conformal.classify import ConformalClassifier
from ..conformal.regress import ConformalRegressor
from ..core.continual import make_engine
from ..features import CovariatePipeline
from ..ingest import IngestFaultInjector, IngestFaultPlan, StreamGuard
from ..lifecycle import (
    LifecycleController,
    LifecycleFaultInjector,
    LifecycleFaultPlan,
    ModelRegistry,
)
from ..obs import log_info, span
from .experiments import Experiment, ExperimentSettings, run_experiment

__all__ = [
    "DEFAULT_FAULT_RATES",
    "DEFAULT_RETRY_POLICIES",
    "DEFAULT_INGEST_FAULT_RATES",
    "DEFAULT_IMPUTATIONS",
    "DEFAULT_LIFECYCLE_FAULT_RATES",
    "chaos_experiment",
    "chaos_marshaller",
    "ingest_chaos_experiment",
    "lifecycle_chaos_experiment",
    "lifecycle_marshaller",
    "run_chaos_cell",
    "run_ingest_chaos_cell",
    "run_lifecycle_chaos_cell",
]

#: Default raising-fault rates swept by the chaos harness.
DEFAULT_FAULT_RATES = (0.0, 0.05, 0.1, 0.2, 0.4)

#: Default retry policies: none, modest, aggressive.
DEFAULT_RETRY_POLICIES = (
    RetryPolicy(max_attempts=1),
    RetryPolicy(max_attempts=3),
    RetryPolicy(max_attempts=6),
)

#: Default ingest fault rates swept by the ingest chaos harness.
DEFAULT_INGEST_FAULT_RATES = (0.0, 0.05, 0.1, 0.2)

#: Default guard configurations swept per ingest fault rate.  ``"none"``
#: is the unguarded baseline (corrupted features straight into the
#: model); the rest name :data:`~repro.ingest.guard.IMPUTATION_POLICIES`.
DEFAULT_IMPUTATIONS = ("none", "hold-last", "zero-fill", "linear-interp")

#: Default total lifecycle-fault rates swept by the lifecycle chaos
#: harness (spread uniformly over the four hazard hooks).
DEFAULT_LIFECYCLE_FAULT_RATES = (0.0, 0.5, 1.0, 2.0)


def chaos_marshaller(
    experiment: Experiment,
    confidence: float = 0.9,
    alpha: float = 0.9,
    engine: str = "windowed",
    gate_delta: Optional[float] = None,
) -> StreamMarshaller:
    """The deployment-shaped marshaller (EHCR configuration) for one task.

    ``engine`` selects the inference engine by registry name
    (:data:`~repro.core.continual.ENGINES`): ``"windowed"`` is the
    stateless batched default, ``"continual"`` carries recurrent state
    across ticks, ``"gated"`` additionally change-gates recompute at
    ``gate_delta``.
    """
    pipeline = CovariatePipeline(
        experiment.data.spec.window_size,
        standardizer=experiment.data.standardizer,
    )
    return StreamMarshaller(
        experiment.model,
        experiment.data.event_types,
        pipeline,
        classifier=experiment.classifier,
        regressor=experiment.regressor,
        confidence=confidence,
        alpha=alpha,
        inference=make_engine(engine, experiment.model, gate_delta=gate_delta),
    )


def run_chaos_cell(
    marshaller: StreamMarshaller,
    experiment: Experiment,
    plan: FaultPlan,
    policy: RetryPolicy,
    breaker: Optional[BreakerConfig] = None,
    failure_policy: str = "defer",
    max_horizons: Optional[int] = None,
) -> Dict[str, float]:
    """One (plan, policy) cell: fresh service stack, one marshalling run."""
    service = CloudInferenceService(experiment.data.test_stream)
    injector = FaultInjector(service, plan)
    client = ResilientCIClient(injector, policy=policy, breaker=breaker)
    report = marshaller.run(
        experiment.data.test_stream,
        experiment.data.test_features,
        client,
        max_horizons=max_horizons,
        failure_policy=failure_policy,
    )
    attempts = max(1, client.stats.attempts)
    return {
        "fault_rate": plan.failure_rate,
        "max_attempts": policy.max_attempts,
        "REC": report.frame_recall,
        "REC_eff": report.effective_recall,
        "cost": report.total_cost,
        "retries": report.retries,
        "retry_overhead": client.stats.retries / attempts,
        "wait_s": client.stats.seconds_waited,
        "frames_lost": report.frames_lost,
        "deferred": report.segments_deferred,
        "failed": report.segments_failed,
        "breaker_opens": client.breaker.open_count,
        "billed_failures": injector.stats.billed_failures,
    }


def run_ingest_chaos_cell(
    marshaller: StreamMarshaller,
    experiment: Experiment,
    plan: IngestFaultPlan,
    imputation: str = "hold-last",
    quarantine_policy: str = "relay-all",
    max_horizons: Optional[int] = None,
) -> Dict[str, float]:
    """One (plan, imputation) cell: corrupt the feed, guard it, marshal.

    ``imputation="none"`` runs the corrupted features straight through the
    unguarded loop — the baseline every guard policy is measured against
    (NaN scores silently fail every threshold comparison, so this is how
    recall collapses without a guard).
    """
    injector = IngestFaultInjector(plan)
    features = injector.inject(experiment.data.test_features)
    guard = (
        None
        if imputation == "none"
        else StreamGuard(imputation=imputation, quarantine_policy=quarantine_policy)
    )
    service = CloudInferenceService(experiment.data.test_stream)
    report = marshaller.run(
        experiment.data.test_stream,
        features,
        service,
        max_horizons=max_horizons,
        guard=guard,
    )
    return {
        "fault_rate": plan.total_rate,
        "imputation": imputation,
        "REC": report.frame_recall,
        "REC_eff": report.effective_recall,
        "cost": report.total_cost,
        "frames_faulted": injector.stats.frames_faulted,
        "frames_invalid": report.frames_invalid,
        "frames_imputed": report.frames_imputed,
        "voided": report.guarantee_voided_frames,
        "quarantined": report.quarantined_frames,
        "transitions": report.health_transitions,
    }


def ingest_chaos_experiment(
    task,
    fault_rates: Sequence[float] = DEFAULT_INGEST_FAULT_RATES,
    imputations: Sequence[str] = DEFAULT_IMPUTATIONS,
    settings: Optional[ExperimentSettings] = None,
    base_plan: Optional[IngestFaultPlan] = None,
    quarantine_policy: str = "relay-all",
    confidence: float = 0.9,
    alpha: float = 0.9,
    seed: int = 0,
    max_horizons: Optional[int] = None,
    experiment: Optional[Experiment] = None,
) -> List[Dict[str, float]]:
    """Sweep ingest fault rates × guard policies over one task's deployment.

    The ingest mirror of :func:`chaos_experiment`: the CI stays perfect
    and the *input* degrades.  One experiment backs the grid; each cell
    rescales ``base_plan`` (default: a uniform plan seeded with ``seed``)
    to the cell's total fault rate, corrupts the test features with it,
    and runs marshalling — unguarded for ``"none"``, through a
    :class:`~repro.ingest.guard.StreamGuard` otherwise.  Returns one row
    dict per cell, ready for ``format_table``.
    """
    if experiment is None:
        experiment = run_experiment(task, settings=settings)
    if base_plan is None:
        base_plan = IngestFaultPlan(seed=seed)
    marshaller = chaos_marshaller(experiment, confidence=confidence, alpha=alpha)
    rows: List[Dict[str, float]] = []
    with span(
        "chaos.ingest",
        task=experiment.task.task_id,
        cells=len(fault_rates) * len(imputations),
    ):
        for rate in fault_rates:
            plan = base_plan.with_fault_rate(rate)
            for imputation in imputations:
                with span(
                    "chaos.ingest_cell", fault_rate=rate, imputation=imputation
                ):
                    row = run_ingest_chaos_cell(
                        marshaller,
                        experiment,
                        plan,
                        imputation=imputation,
                        quarantine_policy=quarantine_policy,
                        max_horizons=max_horizons,
                    )
                rows.append(row)
                log_info(
                    "chaos.ingest_cell",
                    fault_rate=rate,
                    imputation=imputation,
                    rec_eff=row["REC_eff"],
                    voided=row["voided"],
                    quarantined=row["quarantined"],
                )
    return rows


def chaos_experiment(
    task,
    fault_rates: Sequence[float] = DEFAULT_FAULT_RATES,
    policies: Sequence[RetryPolicy] = DEFAULT_RETRY_POLICIES,
    settings: Optional[ExperimentSettings] = None,
    base_plan: Optional[FaultPlan] = None,
    breaker: Optional[BreakerConfig] = None,
    failure_policy: str = "defer",
    confidence: float = 0.9,
    alpha: float = 0.9,
    seed: int = 0,
    max_horizons: Optional[int] = None,
    experiment: Optional[Experiment] = None,
) -> List[Dict[str, float]]:
    """Sweep fault rates × retry policies over one task's deployment.

    One experiment (train + calibrate) backs the whole grid; each cell
    rescales ``base_plan`` (default: a uniform plan seeded with ``seed``)
    to the cell's raising-fault rate and runs marshalling with
    ``failure_policy`` through a fresh injector + resilient client.
    Returns one row dict per cell, ready for ``format_table``.
    """
    if experiment is None:
        experiment = run_experiment(task, settings=settings)
    if base_plan is None:
        base_plan = FaultPlan(seed=seed)
    marshaller = chaos_marshaller(experiment, confidence=confidence, alpha=alpha)
    rows: List[Dict[str, float]] = []
    with span("chaos", task=experiment.task.task_id, cells=len(fault_rates) * len(policies)):
        for rate in fault_rates:
            plan = base_plan.with_failure_rate(rate)
            for policy in policies:
                with span(
                    "chaos.cell", fault_rate=rate, max_attempts=policy.max_attempts
                ):
                    row = run_chaos_cell(
                        marshaller,
                        experiment,
                        plan,
                        policy,
                        breaker=breaker,
                        failure_policy=failure_policy,
                        max_horizons=max_horizons,
                    )
                rows.append(row)
                log_info(
                    "chaos.cell",
                    fault_rate=rate,
                    max_attempts=policy.max_attempts,
                    rec_eff=row["REC_eff"],
                    cost=row["cost"],
                    retries=row["retries"],
                )
    return rows


def lifecycle_marshaller(
    experiment: Experiment,
    confidence: float = 0.9,
    alpha: float = 0.9,
) -> StreamMarshaller:
    """A deployment-shaped marshaller with *private* conformal components.

    Lifecycle swaps rebind and recalibrate the marshaller's classifier and
    regressor in place; sharing the experiment's cached components (as
    :func:`chaos_marshaller` does, correctly, for read-only runs) would
    leak one chaos cell's swaps into the next.
    """
    marshaller = chaos_marshaller(experiment, confidence=confidence, alpha=alpha)
    marshaller.classifier = ConformalClassifier(experiment.model).calibrate(
        experiment.data.calibration
    )
    marshaller.regressor = ConformalRegressor(
        experiment.model, tau2=experiment.regressor.tau2
    ).calibrate(experiment.data.calibration)
    return marshaller


def run_lifecycle_chaos_cell(
    experiment: Experiment,
    plan: LifecycleFaultPlan,
    registry_root: Optional[str] = None,
    audit_rate: float = 1.0,
    retrain_every_audits: int = 12,
    min_positives: int = 1,
    recall_margin: float = 0.2,
    brier_margin: float = 0.5,
    confidence: float = 0.9,
    alpha: float = 0.9,
    seed: int = 0,
    max_horizons: Optional[int] = None,
) -> Dict[str, float]:
    """One lifecycle fault plan: retrain/publish/canary/swap under chaos.

    A fresh marshaller + registry per cell (in ``registry_root`` or an
    ephemeral directory); scheduled retraining and a permissive canary
    gate keep swap traffic flowing so every hazard hook actually fires —
    the sweep measures crash-safety, not candidate quality.  After the
    run the registry is **reopened from disk** (the crash-restart path:
    manifest recovery plus artifact verification) and the last good
    version it can actually serve is reported alongside the live stats.
    """
    marshaller = lifecycle_marshaller(experiment, confidence=confidence, alpha=alpha)
    injector = LifecycleFaultInjector(plan)

    def cell(root: str) -> Dict[str, float]:
        registry = ModelRegistry(root, injector=injector)
        controller = LifecycleController(
            marshaller,
            registry,
            audit_rate=audit_rate,
            retrain_every_audits=retrain_every_audits,
            min_positives=min_positives,
            recall_margin=recall_margin,
            brier_margin=brier_margin,
            seed=seed,
            injector=injector,
        )
        controller.register_incumbent()
        service = CloudInferenceService(experiment.data.test_stream)
        report = marshaller.run(
            experiment.data.test_stream,
            experiment.data.test_features,
            service,
            max_horizons=max_horizons,
            lifecycle=controller,
        )
        reopened = ModelRegistry(root)
        last_good, _ = reopened.load_last_good()
        return {
            "fault_rate": plan.total_rate,
            "REC": report.frame_recall,
            "cost": report.total_cost,
            "audits": controller.audits,
            "retrains": controller.retrains,
            "retrain_failures": controller.retrain_failures,
            "publish_failures": controller.publish_failures,
            "rollbacks": controller.rollbacks,
            "swaps": controller.swaps,
            "voided": report.swap_voided_frames,
            "frames_lost": report.frames_lost,
            "serving": controller.serving_version,
            "last_good": last_good.version,
            "manifest_recoveries": reopened.manifest_recoveries,
            "faults": injector.stats.total,
        }

    if registry_root is not None:
        return cell(registry_root)
    with tempfile.TemporaryDirectory() as root:
        return cell(root)


def lifecycle_chaos_experiment(
    task,
    fault_rates: Sequence[float] = DEFAULT_LIFECYCLE_FAULT_RATES,
    settings: Optional[ExperimentSettings] = None,
    base_plan: Optional[LifecycleFaultPlan] = None,
    audit_rate: float = 1.0,
    retrain_every_audits: int = 12,
    confidence: float = 0.9,
    alpha: float = 0.9,
    seed: int = 0,
    max_horizons: Optional[int] = None,
    experiment: Optional[Experiment] = None,
) -> List[Dict[str, float]]:
    """Sweep lifecycle fault rates over one task's deployment.

    The lifecycle mirror of :func:`chaos_experiment`: the CI and the
    input stay perfect, and the *model lifecycle machinery* degrades —
    torn checkpoint writes, corrupted manifests, retrain blow-ups, flaky
    canaries.  One experiment backs the grid; each cell rescales
    ``base_plan`` (default: a uniform plan seeded with ``seed``) to the
    cell's total fault rate.  Deterministic end to end: the same seed and
    rates reproduce identical retrains, faults, swaps, and reports.
    """
    if experiment is None:
        experiment = run_experiment(task, settings=settings)
    if base_plan is None:
        base_plan = LifecycleFaultPlan(seed=seed)
    rows: List[Dict[str, float]] = []
    with span(
        "chaos.lifecycle",
        task=experiment.task.task_id,
        cells=len(fault_rates),
    ):
        for rate in fault_rates:
            plan = base_plan.with_total_rate(rate)
            with span("chaos.lifecycle_cell", fault_rate=rate):
                row = run_lifecycle_chaos_cell(
                    experiment,
                    plan,
                    audit_rate=audit_rate,
                    retrain_every_audits=retrain_every_audits,
                    confidence=confidence,
                    alpha=alpha,
                    seed=seed,
                    max_horizons=max_horizons,
                )
            rows.append(row)
            log_info(
                "chaos.lifecycle_cell",
                fault_rate=rate,
                retrains=row["retrains"],
                swaps=row["swaps"],
                rollbacks=row["rollbacks"],
                serving=row["serving"],
                last_good=row["last_good"],
            )
    return rows
