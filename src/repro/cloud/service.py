"""Simulated cloud inference service (the CI of Fig. 1).

The paper assumes the CI hosts "the latest and most advanced models" and is
*accurate* for the events of interest (§VI.A); what the framework optimises
is how many frames reach it.  Accordingly the simulated service answers
detection queries from the ground-truth schedule, while keeping the books
that the paper's evaluation needs: frames processed, per-request billing,
and simulated processing time (via the timing model's CI rate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import inc, observe, span
from ..video.events import EventType
from ..video.stream import StreamSegment, VideoStream
from .pricing import FlatPricing, PricingModel

__all__ = ["Detection", "UsageLedger", "CloudInferenceService", "merge_segments"]


def merge_segments(segments: Sequence[StreamSegment]) -> List[StreamSegment]:
    """Maximal disjoint segments covering ``segments``.

    Overlapping *or adjacent* inputs coalesce — the billing-relevant union
    used by :meth:`CloudInferenceService.detect_many`.
    """
    ordered = sorted(segments, key=lambda s: (s.start, s.end))
    merged: List[StreamSegment] = []
    for segment in ordered:
        if merged and segment.start <= merged[-1].end + 1:
            if segment.end > merged[-1].end:
                merged[-1] = StreamSegment(merged[-1].start, segment.end)
        else:
            merged.append(segment)
    return merged


@dataclass(frozen=True)
class Detection:
    """One event detection returned by the CI for a relayed segment."""

    event_name: str
    start: int  # absolute frame
    end: int  # absolute frame

    @property
    def num_frames(self) -> int:
        return self.end - self.start + 1


@dataclass
class UsageLedger:
    """Billing/usage record of one CI account."""

    frames_processed: int = 0
    requests: int = 0
    total_cost: float = 0.0
    frames_per_event: Dict[str, int] = field(default_factory=dict)

    def charge(self, event_name: str, frames: int, cost: float) -> None:
        self.frames_processed += frames
        self.requests += 1
        self.total_cost += cost
        self.frames_per_event[event_name] = (
            self.frames_per_event.get(event_name, 0) + frames
        )

    def reset(self) -> None:
        """Zero every counter in place (new billing period).

        In-place so references held by wrappers (fault injectors, resilient
        clients) keep observing the same ledger object.
        """
        self.frames_processed = 0
        self.requests = 0
        self.total_cost = 0.0
        self.frames_per_event.clear()

    def merge(self, *others: "UsageLedger") -> "UsageLedger":
        """Fold other ledgers into this one (multi-account aggregation).

        Frame/request counts and costs add; ``frames_per_event`` unions
        key-wise.  Returns ``self`` so ``UsageLedger().merge(*ledgers)``
        builds a fresh rollup — the coordinator merges shard-local
        ledger deltas this way, which is exact because frames and
        requests are integers and each shard's cost was billed against
        its own account.
        """
        for other in others:
            self.frames_processed += other.frames_processed
            self.requests += other.requests
            self.total_cost += other.total_cost
            for name, frames in other.frames_per_event.items():
                self.frames_per_event[name] = (
                    self.frames_per_event.get(name, 0) + frames
                )
        return self

    @classmethod
    def merged(cls, ledgers: Sequence["UsageLedger"]) -> "UsageLedger":
        """A new ledger aggregating ``ledgers`` (inputs untouched)."""
        return cls().merge(*ledgers)


class CloudInferenceService:
    """A pay-per-frame event-detection service over a known stream.

    Parameters
    ----------
    stream:
        The stream whose ground truth the "advanced cloud model" detects.
    pricing:
        Billing model; defaults to the paper's flat Rekognition price.
    ci_fps:
        Frames/second the service sustains (drives simulated latency).
    """

    def __init__(
        self,
        stream: VideoStream,
        pricing: Optional[PricingModel] = None,
        ci_fps: float = 20.0,
    ):
        if ci_fps <= 0:
            raise ValueError("ci_fps must be positive")
        self.stream = stream
        self.pricing = pricing or FlatPricing()
        self.ci_fps = ci_fps
        self.ledger = UsageLedger()
        self._simulated_seconds = 0.0

    # ------------------------------------------------------------------
    @property
    def simulated_seconds(self) -> float:
        """Total simulated processing time spent by the CI."""
        return self._simulated_seconds

    def reset(self) -> None:
        """Clear the ledger (new billing period)."""
        self.ledger.reset()
        self._simulated_seconds = 0.0

    # ------------------------------------------------------------------
    def detect(
        self, segment: StreamSegment, event_type: EventType
    ) -> List[Detection]:
        """Run the (accurate) cloud model on ``segment`` for one event type.

        Bills every frame of the segment regardless of outcome — exactly the
        cost model that makes marshalling worthwhile.
        """
        if segment.end >= self.stream.length:
            raise ValueError(
                f"segment [{segment.start}, {segment.end}] exceeds stream "
                f"length {self.stream.length}"
            )
        frames = segment.num_frames
        with span("ci.detect", event=event_type.name, frames=frames) as call:
            cost = self.pricing.cost(self.ledger.frames_processed + frames) - (
                self.pricing.cost(self.ledger.frames_processed)
            )
            self.ledger.charge(event_type.name, frames, cost)
            self._simulated_seconds += frames / self.ci_fps

            detections: List[Detection] = []
            for instance in self.stream.schedule.instances_of(event_type):
                if instance.overlaps(segment.start, segment.end):
                    detections.append(
                        Detection(
                            event_name=event_type.name,
                            start=max(instance.start, segment.start),
                            end=min(instance.end, segment.end),
                        )
                    )
        observe("ci.call_seconds", call.seconds)
        inc("ci.requests")
        inc("ci.frames", frames)
        inc("ci.cost", cost)
        inc("ci.simulated_seconds", frames / self.ci_fps)
        return detections

    def detect_many(
        self, segments: Sequence[StreamSegment], event_type: EventType
    ) -> List[Detection]:
        """Detect over several segments, merging the per-segment results.

        Overlapping or adjacent input segments are merged into maximal
        disjoint segments *before* billing, so no frame is charged twice
        for one batch (and under tiered pricing the merged frame count is
        what walks the tier schedule).  One request is billed per merged
        segment.
        """
        out: List[Detection] = []
        for segment in merge_segments(segments):
            out.extend(self.detect(segment, event_type))
        return out
