"""Deterministic fault injection for the cloud inference path.

The paper's deployment story (Fig. 1, §VI.A) relays frame ranges to a
remote pay-per-frame CI service; a real deployment therefore lives with
timeouts, throttling, transient errors, hard outages, latency spikes, and
partial responses.  This module makes those failures *reproducible*: a
:class:`FaultInjector` wraps any ``CloudInferenceService``-shaped object
and, from a seeded RNG plus a declarative :class:`FaultPlan`, injects typed
:class:`CIError` failures on ``detect()`` with exact bookkeeping of whether
each failed call was billed (real pay-per-frame APIs bill timeouts; the
``bill_on_timeout`` knob models both contracts).

Everything is deterministic: one RNG draw per non-outage call, in call
order, so the same seed + plan + call sequence reproduces the same faults.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import inc, log_debug
from ..video.events import EventType
from ..video.stream import StreamSegment

__all__ = [
    "CIError",
    "CITimeout",
    "CIThrottled",
    "CITransientError",
    "CIOutage",
    "CIBreakerOpen",
    "FaultPlan",
    "FaultStats",
    "FaultInjector",
]


# ----------------------------------------------------------------------
# Fault taxonomy
# ----------------------------------------------------------------------
class CIError(RuntimeError):
    """Base class of every cloud-inference failure.

    ``billed`` records whether the failed call was charged to the ledger —
    the distinction a cost-aware retry policy must reason about.
    """

    def __init__(self, message: str, billed: bool = False):
        super().__init__(message)
        self.billed = billed


class CITimeout(CIError):
    """The CI did not answer within its deadline.

    Depending on the provider contract the frames may still be billed
    (``FaultPlan.bill_on_timeout``).
    """


class CIThrottled(CIError):
    """Rate-limited before processing; carries the provider's retry hint."""

    def __init__(self, message: str, retry_after: float = 0.0):
        super().__init__(message, billed=False)
        self.retry_after = retry_after


class CITransientError(CIError):
    """A retryable 5xx-style failure; the request never processed."""


class CIOutage(CIError):
    """Hard downtime: the service is unreachable for a window of calls."""

    def __init__(self, message: str, window: Tuple[int, int]):
        super().__init__(message, billed=False)
        self.window = window


class CIBreakerOpen(CIError):
    """A resilient client refused the call because its circuit is open."""


#: Fault kinds in the order the injector's single RNG draw resolves them.
_FAULT_KINDS = ("timeout", "throttle", "transient", "partial", "latency_spike")


# ----------------------------------------------------------------------
# Declarative plan
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of the faults one injector produces.

    Rates are per-call probabilities resolved from a single uniform draw,
    so ``timeout_rate + throttle_rate + transient_rate + partial_rate +
    latency_spike_rate`` must not exceed 1.  ``outages`` are half-open
    ``[start, end)`` windows over the call index — hard downtime that
    fails deterministically without consuming an RNG draw.
    """

    timeout_rate: float = 0.0
    throttle_rate: float = 0.0
    transient_rate: float = 0.0
    partial_rate: float = 0.0
    latency_spike_rate: float = 0.0
    latency_spike_seconds: float = 5.0
    retry_after_seconds: float = 1.0
    partial_fraction: float = 0.5
    outages: Tuple[Tuple[int, int], ...] = ()
    bill_on_timeout: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        for kind in _FAULT_KINDS:
            rate = getattr(self, f"{kind}_rate")
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{kind}_rate must be in [0, 1], got {rate}")
        if self.total_rate > 1.0 + 1e-12:
            raise ValueError("fault rates must sum to at most 1")
        if not 0.0 < self.partial_fraction <= 1.0:
            raise ValueError("partial_fraction must be in (0, 1]")
        if self.latency_spike_seconds < 0:
            raise ValueError("latency_spike_seconds must be non-negative")
        if self.retry_after_seconds < 0:
            raise ValueError("retry_after_seconds must be non-negative")
        normalized = []
        for window in self.outages:
            start, end = int(window[0]), int(window[1])
            if start < 0 or end <= start:
                raise ValueError(f"invalid outage window [{start}, {end})")
            normalized.append((start, end))
        object.__setattr__(self, "outages", tuple(normalized))

    # ------------------------------------------------------------------
    @property
    def failure_rate(self) -> float:
        """Probability a call *raises* (timeouts + throttles + transients)."""
        return self.timeout_rate + self.throttle_rate + self.transient_rate

    @property
    def total_rate(self) -> float:
        """Probability a call is faulted in any way (including non-raising)."""
        return self.failure_rate + self.partial_rate + self.latency_spike_rate

    @classmethod
    def uniform(cls, failure_rate: float, seed: int = 0, **overrides) -> "FaultPlan":
        """A plan spreading ``failure_rate`` evenly over the raising faults."""
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError("failure_rate must be in [0, 1]")
        share = failure_rate / 3.0
        return cls(
            timeout_rate=share,
            throttle_rate=share,
            transient_rate=share,
            seed=seed,
            **overrides,
        )

    def with_failure_rate(self, failure_rate: float) -> "FaultPlan":
        """This plan rescaled so its raising faults sum to ``failure_rate``."""
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError("failure_rate must be in [0, 1]")
        current = self.failure_rate
        if current <= 0.0:
            share = failure_rate / 3.0
            return replace(
                self,
                timeout_rate=share,
                throttle_rate=share,
                transient_rate=share,
            )
        scale = failure_rate / current
        return replace(
            self,
            timeout_rate=self.timeout_rate * scale,
            throttle_rate=self.throttle_rate * scale,
            transient_rate=self.transient_rate * scale,
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        out = asdict(self)
        out["outages"] = [list(window) for window in self.outages]
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown FaultPlan fields: {sorted(unknown)}")
        kwargs = dict(data)
        if "outages" in kwargs:
            kwargs["outages"] = tuple(
                tuple(window) for window in kwargs["outages"]
            )
        return cls(**kwargs)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Bookkeeping
# ----------------------------------------------------------------------
@dataclass
class FaultStats:
    """Exact books of what one injector did."""

    calls: int = 0
    faults: Dict[str, int] = field(default_factory=dict)
    outage_rejections: int = 0
    billed_failures: int = 0
    unbilled_failures: int = 0
    frames_billed_on_failure: int = 0
    partial_responses: int = 0
    detections_truncated: int = 0
    latency_spikes: int = 0
    spike_seconds: float = 0.0

    def record_fault(self, kind: str) -> None:
        self.faults[kind] = self.faults.get(kind, 0) + 1

    @property
    def failures(self) -> int:
        """Calls that raised (outages included)."""
        return self.billed_failures + self.unbilled_failures

    def as_dict(self) -> Dict[str, object]:
        out = asdict(self)
        out["failures"] = self.failures
        return out


# ----------------------------------------------------------------------
# The injector
# ----------------------------------------------------------------------
class FaultInjector:
    """Wrap a ``CloudInferenceService``-shaped object with seeded faults.

    The wrapper mirrors the service interface (``detect`` / ``detect_many``
    / ``reset`` plus the ``stream`` / ``pricing`` / ``ledger`` /
    ``simulated_seconds`` attributes), so marshalling code cannot tell the
    difference — until a fault fires.
    """

    def __init__(self, service, plan: FaultPlan):
        self.service = service
        self.plan = plan
        self.stats = FaultStats()
        self._rng = np.random.default_rng(plan.seed)
        self._call_index = 0
        self._spike_seconds = 0.0

    # ------------------------------------------------------------------
    # Service-shaped delegation
    # ------------------------------------------------------------------
    @property
    def stream(self):
        return self.service.stream

    @property
    def pricing(self):
        return self.service.pricing

    @property
    def ledger(self):
        return self.service.ledger

    @property
    def simulated_seconds(self) -> float:
        """Inner processing time plus injected latency spikes."""
        return self.service.simulated_seconds + self._spike_seconds

    def reset(self) -> None:
        """Reset the inner service *and* replay the fault sequence."""
        self.service.reset()
        self.stats = FaultStats()
        self._rng = np.random.default_rng(self.plan.seed)
        self._call_index = 0
        self._spike_seconds = 0.0

    def detect_many(
        self, segments: Sequence[StreamSegment], event_type: EventType
    ) -> List:
        out: List = []
        for segment in segments:
            out.extend(self.detect(segment, event_type))
        return out

    # ------------------------------------------------------------------
    def _raise(self, kind: str, exc: CIError) -> None:
        self.stats.record_fault(kind)
        if exc.billed:
            self.stats.billed_failures += 1
        else:
            self.stats.unbilled_failures += 1
        inc("ci.faults.injected")
        inc(f"ci.faults.{kind}")
        log_debug("ci.fault", kind=kind, billed=exc.billed, call=self._call_index)
        raise exc

    def detect(self, segment: StreamSegment, event_type: EventType) -> List:
        """Inner ``detect`` with at most one injected fault per call."""
        index = self._call_index
        self._call_index += 1
        self.stats.calls += 1

        for window in self.plan.outages:
            if window[0] <= index < window[1]:
                self.stats.outage_rejections += 1
                self._raise(
                    "outage",
                    CIOutage(
                        f"CI outage window [{window[0]}, {window[1]}) "
                        f"(call {index})",
                        window=window,
                    ),
                )

        draw = float(self._rng.random())
        threshold = 0.0
        kind: Optional[str] = None
        for candidate in _FAULT_KINDS:
            threshold += getattr(self.plan, f"{candidate}_rate")
            if draw < threshold:
                kind = candidate
                break

        if kind == "timeout":
            billed = self.plan.bill_on_timeout
            if billed:
                # The provider processed (and billed) the frames; the
                # response just never arrived.
                self.service.detect(segment, event_type)
                self.stats.frames_billed_on_failure += segment.num_frames
            self._raise(
                "timeout", CITimeout(f"CI timeout on call {index}", billed=billed)
            )
        if kind == "throttle":
            self._raise(
                "throttle",
                CIThrottled(
                    f"CI throttled on call {index}",
                    retry_after=self.plan.retry_after_seconds,
                ),
            )
        if kind == "transient":
            self._raise(
                "transient", CITransientError(f"CI transient error on call {index}")
            )

        detections = self.service.detect(segment, event_type)
        if kind == "partial":
            # Full segment billed, results truncated to a prefix of it.
            keep = max(
                1, int(math.ceil(self.plan.partial_fraction * segment.num_frames))
            )
            prefix_end = segment.start + keep - 1
            truncated = []
            for det in detections:
                if det.start > prefix_end:
                    continue
                if det.end > prefix_end:
                    det = replace(det, end=prefix_end)
                truncated.append(det)
            self.stats.partial_responses += 1
            self.stats.detections_truncated += len(detections) - len(truncated)
            self.stats.record_fault("partial")
            inc("ci.faults.injected")
            inc("ci.faults.partial")
            log_debug(
                "ci.fault", kind="partial", call=index, prefix_end=prefix_end
            )
            return truncated
        if kind == "latency_spike":
            self.stats.latency_spikes += 1
            self.stats.spike_seconds += self.plan.latency_spike_seconds
            self._spike_seconds += self.plan.latency_spike_seconds
            self.stats.record_fault("latency_spike")
            inc("ci.faults.injected")
            inc("ci.faults.latency_spike")
            inc("ci.faults.spike_seconds", self.plan.latency_spike_seconds)
        return detections
