"""Resilient cloud-inference client: retries, backoff, circuit breaker.

:class:`ResilientCIClient` wraps any ``CloudInferenceService``-shaped
object (typically a :class:`~repro.cloud.faults.FaultInjector` in tests
and chaos sweeps, the raw service in production-shaped runs) and adds the
failure semantics a live deployment needs:

* capped exponential backoff with *deterministic* jitter (seeded RNG —
  never a real ``sleep``; waits advance a simulated clock);
* per-call deadlines and a client-lifetime retry budget;
* a circuit breaker (closed → open → half-open probing) whose state
  changes emit ``repro.obs`` counters and structured log events.

:class:`RetryPolicy` and :class:`BreakerConfig` are plain dataclasses with
``to_dict``/``from_dict`` so policies serialize into experiment configs.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import inc, log_debug, log_info, set_gauge, span
from ..video.events import EventType
from ..video.stream import StreamSegment
from .faults import CIBreakerOpen, CIError, CIThrottled

__all__ = [
    "RetryPolicy",
    "BreakerConfig",
    "CircuitBreaker",
    "ResilienceStats",
    "ResilientCIClient",
]


def _dataclass_from_dict(cls, data: Dict[str, object]):
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown {cls.__name__} fields: {sorted(unknown)}")
    return cls(**data)


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    ``deadline_seconds`` bounds the *simulated* time one ``detect`` call may
    spend across attempts; ``retry_budget`` bounds total retries over the
    client's lifetime (``None`` = unlimited).  ``seed`` drives the jitter
    RNG so a policy replays identically.
    """

    max_attempts: int = 4
    base_delay: float = 0.1
    max_delay: float = 10.0
    multiplier: float = 2.0
    jitter: float = 0.1
    deadline_seconds: Optional[float] = None
    retry_budget: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive when set")
        if self.retry_budget is not None and self.retry_budget < 0:
            raise ValueError("retry_budget must be non-negative when set")

    def backoff_delay(self, attempt: int, rng: np.random.Generator) -> float:
        """Delay before retry number ``attempt`` (1-based), jittered down."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter:
            raw *= 1.0 - self.jitter * float(rng.random())
        return raw

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RetryPolicy":
        return _dataclass_from_dict(cls, data)


@dataclass(frozen=True)
class BreakerConfig:
    """Circuit-breaker tuning.

    After ``failure_threshold`` consecutive failures the breaker opens and
    rejects calls for ``recovery_seconds`` of simulated time, then lets
    probes through (half-open); ``half_open_probes`` consecutive probe
    successes close it again, one probe failure re-opens it.
    """

    failure_threshold: int = 5
    recovery_seconds: float = 30.0
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.recovery_seconds < 0:
            raise ValueError("recovery_seconds must be non-negative")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BreakerConfig":
        return _dataclass_from_dict(cls, data)


class CircuitBreaker:
    """Closed → open → half-open state machine over a simulated clock.

    Every transition is recorded in ``transitions`` as
    ``(from_state, to_state, at_seconds)`` and mirrored into ``repro.obs``
    (``ci.breaker.opened`` / ``.half_opened`` / ``.closed`` counters), so a
    chaos run's breaker history is fully auditable and reproducible.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, config: Optional[BreakerConfig] = None):
        self.config = config or BreakerConfig()
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self._probe_successes = 0
        self.transitions: List[Tuple[str, str, float]] = []

    _TRANSITION_COUNTERS = {
        OPEN: "ci.breaker.opened",
        HALF_OPEN: "ci.breaker.half_opened",
        CLOSED: "ci.breaker.closed",
    }

    #: Numeric encoding of ``state`` for the ``ci.breaker.state_code``
    #: gauge (time-series stores need numbers; ordered by severity).
    STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}

    def _transition(self, to_state: str, now: float) -> None:
        from_state = self.state
        self.state = to_state
        self.transitions.append((from_state, to_state, now))
        inc(self._TRANSITION_COUNTERS[to_state])
        set_gauge("ci.breaker.state_code", self.STATE_CODES[to_state])
        log_info(
            "ci.breaker.transition", from_state=from_state, to_state=to_state,
            at=now,
        )

    # ------------------------------------------------------------------
    @property
    def open_count(self) -> int:
        return sum(1 for _, to, _ in self.transitions if to == self.OPEN)

    def allow(self, now: float) -> bool:
        """Whether a call may proceed at simulated time ``now``.

        An open breaker whose recovery window has elapsed transitions to
        half-open as a side effect and lets the probe through.
        """
        if self.state == self.OPEN:
            assert self.opened_at is not None
            if now - self.opened_at >= self.config.recovery_seconds:
                self._probe_successes = 0
                self._transition(self.HALF_OPEN, now)
                return True
            return False
        return True

    def record_success(self, now: float) -> None:
        if self.state == self.HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.config.half_open_probes:
                self.consecutive_failures = 0
                self._transition(self.CLOSED, now)
        else:
            self.consecutive_failures = 0

    def record_failure(self, now: float) -> None:
        if self.state == self.HALF_OPEN:
            self.opened_at = now
            self._transition(self.OPEN, now)
            return
        self.consecutive_failures += 1
        if (
            self.state == self.CLOSED
            and self.consecutive_failures >= self.config.failure_threshold
        ):
            self.opened_at = now
            self._transition(self.OPEN, now)

    def reset(self) -> None:
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at = None
        self._probe_successes = 0
        self.transitions = []


@dataclass
class ResilienceStats:
    """Books of one resilient client."""

    calls: int = 0
    successes: int = 0
    failures: int = 0
    retries: int = 0
    attempts: int = 0
    breaker_rejections: int = 0
    budget_exhausted: int = 0
    deadline_exhausted: int = 0
    seconds_waited: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


class ResilientCIClient:
    """Retry/backoff/breaker wrapper with the service's duck type.

    The client is itself ``CloudInferenceService``-shaped, so it can stand
    wherever a service does — including inside ``StreamMarshaller.run``.
    Backoff waits advance a simulated clock (``seconds_waited``); combined
    with the wrapped service's ``simulated_seconds`` they drive breaker
    recovery timing, so runs are fully deterministic.
    """

    def __init__(
        self,
        service,
        policy: Optional[RetryPolicy] = None,
        breaker: Optional[BreakerConfig] = None,
    ):
        self.service = service
        self.policy = policy or RetryPolicy()
        self.breaker = CircuitBreaker(breaker)
        self.stats = ResilienceStats()
        self._rng = np.random.default_rng(self.policy.seed)
        self._waited = 0.0
        self._budget_left = self.policy.retry_budget

    # ------------------------------------------------------------------
    # Service-shaped delegation
    # ------------------------------------------------------------------
    @property
    def stream(self):
        return self.service.stream

    @property
    def pricing(self):
        return self.service.pricing

    @property
    def ledger(self):
        return self.service.ledger

    @property
    def simulated_seconds(self) -> float:
        """Inner simulated time plus backoff waits."""
        return self.service.simulated_seconds + self._waited

    @property
    def retry_budget_remaining(self) -> Optional[int]:
        """Retries left in the lifetime budget (``None`` = unlimited)."""
        return self._budget_left

    def _now(self) -> float:
        return self.service.simulated_seconds + self._waited

    def advance_clock(self, seconds: float) -> None:
        """Advance the simulated clock by stream time passing outside calls.

        The marshalling loop calls this once per horizon (horizon/fps
        seconds): it is what lets an *open* breaker reach its recovery
        window when every call is being rejected — otherwise simulated
        time would freeze and the circuit could never half-open.
        """
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        self._waited += seconds

    def reset(self) -> None:
        self.service.reset()
        self.breaker.reset()
        self.stats = ResilienceStats()
        self._rng = np.random.default_rng(self.policy.seed)
        self._waited = 0.0
        self._budget_left = self.policy.retry_budget

    def detect_many(
        self, segments: Sequence[StreamSegment], event_type: EventType
    ) -> List:
        out: List = []
        for segment in segments:
            out.extend(self.detect(segment, event_type))
        return out

    # ------------------------------------------------------------------
    def detect(self, segment: StreamSegment, event_type: EventType) -> List:
        """``detect`` with retries, backoff, deadline, budget, and breaker.

        Raises :class:`CIBreakerOpen` without touching the service while
        the circuit is open; otherwise re-raises the last :class:`CIError`
        once attempts, budget, or deadline are exhausted.
        """
        self.stats.calls += 1
        attempt = 0
        started = self._now()
        with span("ci.resilient.detect", frames=segment.num_frames):
            while True:
                if not self.breaker.allow(self._now()):
                    self.stats.breaker_rejections += 1
                    inc("ci.resilient.breaker_rejections")
                    raise CIBreakerOpen(
                        f"circuit open; call rejected at t={self._now():.3f}s"
                    )
                attempt += 1
                self.stats.attempts += 1
                try:
                    detections = self.service.detect(segment, event_type)
                except CIError as exc:
                    self.breaker.record_failure(self._now())
                    inc("ci.resilient.attempt_failures")
                    if not self._schedule_retry(attempt, started, exc):
                        self.stats.failures += 1
                        inc("ci.resilient.exhausted")
                        raise
                else:
                    self.breaker.record_success(self._now())
                    self.stats.successes += 1
                    return detections

    def _schedule_retry(self, attempt: int, started: float, exc: CIError) -> bool:
        """Consume budget and wait out the backoff; False = give up."""
        if attempt >= self.policy.max_attempts:
            return False
        if self._budget_left is not None and self._budget_left <= 0:
            self.stats.budget_exhausted += 1
            inc("ci.resilient.budget_exhausted")
            return False
        delay = self.policy.backoff_delay(attempt, self._rng)
        if isinstance(exc, CIThrottled):
            delay = max(delay, exc.retry_after)
        deadline = self.policy.deadline_seconds
        if deadline is not None and (self._now() + delay - started) > deadline:
            self.stats.deadline_exhausted += 1
            inc("ci.resilient.deadline_exhausted")
            return False
        self._waited += delay
        self.stats.seconds_waited += delay
        if self._budget_left is not None:
            self._budget_left -= 1
            set_gauge("ci.resilient.budget_remaining", self._budget_left)
        self.stats.retries += 1
        inc("ci.resilient.retries")
        inc("ci.resilient.backoff_seconds", delay)
        log_debug(
            "ci.retry",
            attempt=attempt,
            delay=delay,
            error=type(exc).__name__,
        )
        return True
