"""Pricing models for cloud inference services (paper §I / §VI.G).

The paper's case study uses Amazon Rekognition at US $0.001 per frame.
Tiered pricing (volume discounts, as real providers offer) is included so
the cost case study can be run against more realistic billing curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["PricingModel", "FlatPricing", "TieredPricing", "REKOGNITION"]


class PricingModel:
    """Interface: dollars charged for processing ``frames`` frames."""

    def cost(self, frames: int) -> float:
        raise NotImplementedError

    def marginal_price(self, frames_so_far: int) -> float:
        """Price of the next frame after ``frames_so_far`` already billed."""
        raise NotImplementedError


@dataclass(frozen=True)
class FlatPricing(PricingModel):
    """Constant per-frame price (the paper's Rekognition model)."""

    price_per_frame: float = 0.001

    def __post_init__(self) -> None:
        if self.price_per_frame < 0:
            raise ValueError("price_per_frame must be non-negative")

    def cost(self, frames: int) -> float:
        if frames < 0:
            raise ValueError("frames must be non-negative")
        return frames * self.price_per_frame

    def marginal_price(self, frames_so_far: int) -> float:
        return self.price_per_frame


@dataclass(frozen=True)
class TieredPricing(PricingModel):
    """Volume-tiered pricing: [(threshold_frames, price), ...].

    The k-th tier price applies to frames beyond its threshold; tiers must
    be sorted by threshold with the first threshold at 0.
    """

    tiers: Tuple[Tuple[int, float], ...]

    def __post_init__(self) -> None:
        if not self.tiers:
            raise ValueError("at least one tier required")
        if self.tiers[0][0] != 0:
            raise ValueError("first tier must start at 0 frames")
        thresholds = [t for t, _ in self.tiers]
        if thresholds != sorted(thresholds) or len(set(thresholds)) != len(thresholds):
            raise ValueError("tier thresholds must be strictly increasing")
        if any(p < 0 for _, p in self.tiers):
            raise ValueError("tier prices must be non-negative")

    def cost(self, frames: int) -> float:
        if frames < 0:
            raise ValueError("frames must be non-negative")
        total = 0.0
        for index, (threshold, price) in enumerate(self.tiers):
            next_threshold = (
                self.tiers[index + 1][0] if index + 1 < len(self.tiers) else None
            )
            upper = frames if next_threshold is None else min(frames, next_threshold)
            if upper > threshold:
                total += (upper - threshold) * price
        return total

    def marginal_price(self, frames_so_far: int) -> float:
        if frames_so_far < 0:
            raise ValueError("frames_so_far must be non-negative")
        price = self.tiers[0][1]
        for threshold, tier_price in self.tiers:
            if frames_so_far >= threshold:
                price = tier_price
        return price


#: Amazon Rekognition image pricing as used in the paper's Fig. 8.
REKOGNITION = FlatPricing(price_per_frame=0.001)
