"""Simulated cloud inference infrastructure (the CI of Fig. 1): pricing,
the pay-per-frame detection service, deterministic fault injection, the
resilient retry/breaker client, and the runtime marshalling loop."""

from .pricing import REKOGNITION, FlatPricing, PricingModel, TieredPricing
from .service import CloudInferenceService, Detection, UsageLedger, merge_segments
from .faults import (
    CIBreakerOpen,
    CIError,
    CIOutage,
    CIThrottled,
    CITimeout,
    CITransientError,
    FaultInjector,
    FaultPlan,
    FaultStats,
)
from .resilient import (
    BreakerConfig,
    CircuitBreaker,
    ResilienceStats,
    ResilientCIClient,
    RetryPolicy,
)
from .marshaller import FAILURE_POLICIES, MarshallingReport, StreamMarshaller

__all__ = [
    "PricingModel",
    "FlatPricing",
    "TieredPricing",
    "REKOGNITION",
    "CloudInferenceService",
    "Detection",
    "UsageLedger",
    "merge_segments",
    "CIError",
    "CITimeout",
    "CIThrottled",
    "CITransientError",
    "CIOutage",
    "CIBreakerOpen",
    "FaultPlan",
    "FaultStats",
    "FaultInjector",
    "RetryPolicy",
    "BreakerConfig",
    "CircuitBreaker",
    "ResilienceStats",
    "ResilientCIClient",
    "FAILURE_POLICIES",
    "MarshallingReport",
    "StreamMarshaller",
]
