"""Simulated cloud inference infrastructure (the CI of Fig. 1): pricing,
the pay-per-frame detection service, and the runtime marshalling loop."""

from .pricing import REKOGNITION, FlatPricing, PricingModel, TieredPricing
from .service import CloudInferenceService, Detection, UsageLedger
from .marshaller import MarshallingReport, StreamMarshaller

__all__ = [
    "PricingModel",
    "FlatPricing",
    "TieredPricing",
    "REKOGNITION",
    "CloudInferenceService",
    "Detection",
    "UsageLedger",
    "MarshallingReport",
    "StreamMarshaller",
]
