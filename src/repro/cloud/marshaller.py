"""The runtime marshalling loop of Fig. 1.

Deployment works horizon by horizon: at the current frame the marshaller
assembles the collection window, asks EventHit (optionally through
C-CLASSIFY / C-REGRESS) *if* and *when* each event will occur in the next
time horizon, relays only the predicted occurrence intervals to the CI, and
then advances to the next horizon.  Everything the paper's case studies
measure — relayed frames, dollar cost, recall of true event frames — is
collected in the :class:`MarshallingReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..conformal.classify import ConformalClassifier
from ..conformal.regress import ConformalRegressor
from ..core.batched import BatchedInference
from ..core.inference import extract_interval_segments, extract_intervals
from ..core.model import EventHit
from ..features.extractors import FeatureMatrix
from ..features.pipeline import CovariatePipeline
from ..ingest.guard import HEALTHY, QUARANTINED, GuardedStream, StreamGuard
from ..obs import inc, is_enabled, log_info, set_gauge, span
from ..video.events import EventType
from ..video.stream import StreamSegment, VideoStream
from .faults import CIError
from .service import CloudInferenceService, Detection

__all__ = ["MarshallingReport", "StreamMarshaller", "FAILURE_POLICIES"]

#: Valid ``failure_policy`` values for :meth:`StreamMarshaller.run`.
FAILURE_POLICIES = ("raise", "skip", "defer")


@dataclass
class _DeferredSegment:
    """A relay that exhausted its retries, queued for a later horizon."""

    segment: StreamSegment
    event_type: EventType
    deferrals: int = 1


def _truth_frames_in(
    stream: VideoStream, segment: StreamSegment, event_type: EventType
) -> set:
    """Ground-truth event frames of ``event_type`` inside ``segment``."""
    frames: set = set()
    for instance in stream.schedule.instances_of(event_type):
        if instance.overlaps(segment.start, segment.end):
            frames.update(
                range(
                    max(instance.start, segment.start),
                    min(instance.end, segment.end) + 1,
                )
            )
    return frames


def _merge_runs(runs):
    """Merge overlapping/adjacent (start, end) offset runs after widening."""
    if not runs:
        return []
    ordered = sorted(runs)
    merged = [ordered[0]]
    for start, end in ordered[1:]:
        prev_start, prev_end = merged[-1]
        if start <= prev_end + 1:
            merged[-1] = (prev_start, max(prev_end, end))
        else:
            merged.append((start, end))
    return merged


@dataclass
class MarshallingReport:
    """Outcome of marshalling one stream.

    ``total_cost`` is the cost *this run* added to the service ledger (the
    delta over the run, not the ledger's lifetime total), so one service
    can back many marshals without inflating later reports.

    The failure counters (``segments_failed`` / ``segments_deferred`` /
    ``frames_lost`` / ``lost_event_frames`` / ``retries``) are all zero on
    reliable infrastructure; they fill in when the service raises
    :class:`~repro.cloud.faults.CIError` and ``run(...,
    failure_policy="skip"|"defer")`` absorbs the failure.

    The ingest counters (``frames_invalid`` / ``frames_imputed`` /
    ``guarantee_voided_frames`` / ``quarantined_frames`` /
    ``health_transitions``) are all zero on clean input; they fill in
    when ``run(..., guard=StreamGuard(...))`` sanitizes a degraded
    feature stream.  ``guarantee_voided_frames`` counts covered frames
    of horizons whose conformal coverage guarantees no longer hold —
    any horizon decided from an imputed collection window, predicting
    over invalid frames, or taken while the stream was not HEALTHY.

    The lifecycle counters (``model_swaps`` / ``swap_voided_frames``) are
    zero unless a :class:`~repro.lifecycle.LifecycleController` hot-swaps
    the serving model mid-run; the first horizon decided by a freshly
    swapped model is declared guarantee-voided (the online conformal
    state is recalibrated at the swap boundary, and the guarantee is not
    silently carried across versions), so ``swap_voided_frames`` is also
    folded into ``guarantee_voided_frames``.
    """

    horizons_evaluated: int = 0
    frames_covered: int = 0
    frames_relayed: int = 0
    total_cost: float = 0.0
    detections: List[Detection] = field(default_factory=list)
    true_event_frames: int = 0
    detected_event_frames: int = 0
    segments_failed: int = 0
    segments_deferred: int = 0
    frames_lost: int = 0
    lost_event_frames: int = 0
    retries: int = 0
    frames_invalid: int = 0
    frames_imputed: int = 0
    guarantee_voided_frames: int = 0
    quarantined_frames: int = 0
    health_transitions: int = 0
    model_swaps: int = 0
    swap_voided_frames: int = 0

    @property
    def frame_recall(self) -> float:
        """Recall the marshalling *decisions* achieve on reliable
        infrastructure (≈ the paper's REC): true event frames the CI saw,
        plus those in selected-but-lost segments it would have seen.
        Identical to ``effective_recall`` when nothing was lost."""
        if self.true_event_frames == 0:
            return float("nan")
        return (
            self.detected_event_frames + self.lost_event_frames
        ) / self.true_event_frames

    @property
    def effective_recall(self) -> float:
        """End-to-end recall charging infrastructure losses: only true
        event frames the CI *actually* saw count — frames lost to failed
        relays (``lost_event_frames``) are charged against REC."""
        if self.true_event_frames == 0:
            return float("nan")
        return self.detected_event_frames / self.true_event_frames

    @property
    def relay_fraction(self) -> float:
        """Fraction of covered frames relayed (BF would be ≈ 1)."""
        if self.frames_covered == 0:
            return float("nan")
        return self.frames_relayed / self.frames_covered

    def cost_saving_vs_brute_force(self, price_per_frame: float) -> float:
        """Dollars saved against sending every covered frame per event."""
        brute = self.frames_covered * price_per_frame
        return brute - self.total_cost

    def merge(self, *others: "MarshallingReport") -> "MarshallingReport":
        """Fold other reports into this one (multi-stream aggregation).

        Counts and costs add; the derived ratios (``frame_recall``,
        ``relay_fraction``) then reflect the union.  Returns ``self`` so
        ``MarshallingReport().merge(*reports)`` builds a fresh aggregate.
        """
        for other in others:
            self.horizons_evaluated += other.horizons_evaluated
            self.frames_covered += other.frames_covered
            self.frames_relayed += other.frames_relayed
            self.total_cost += other.total_cost
            self.detections.extend(other.detections)
            self.true_event_frames += other.true_event_frames
            self.detected_event_frames += other.detected_event_frames
            self.segments_failed += other.segments_failed
            self.segments_deferred += other.segments_deferred
            self.frames_lost += other.frames_lost
            self.lost_event_frames += other.lost_event_frames
            self.retries += other.retries
            self.frames_invalid += other.frames_invalid
            self.frames_imputed += other.frames_imputed
            self.guarantee_voided_frames += other.guarantee_voided_frames
            self.quarantined_frames += other.quarantined_frames
            self.health_transitions += other.health_transitions
            self.model_swaps += other.model_swaps
            self.swap_voided_frames += other.swap_voided_frames
        return self

    @classmethod
    def merged(cls, reports: Sequence["MarshallingReport"]) -> "MarshallingReport":
        """A new report aggregating ``reports`` (inputs untouched)."""
        return cls().merge(*reports)

    def to_dict(self, include_detections: bool = False) -> Dict[str, object]:
        """One serialization path shared by exporters and harness rollups."""
        out: Dict[str, object] = {
            "horizons_evaluated": self.horizons_evaluated,
            "frames_covered": self.frames_covered,
            "frames_relayed": self.frames_relayed,
            "total_cost": self.total_cost,
            "true_event_frames": self.true_event_frames,
            "detected_event_frames": self.detected_event_frames,
            "num_detections": len(self.detections),
            "segments_failed": self.segments_failed,
            "segments_deferred": self.segments_deferred,
            "frames_lost": self.frames_lost,
            "lost_event_frames": self.lost_event_frames,
            "retries": self.retries,
            "frames_invalid": self.frames_invalid,
            "frames_imputed": self.frames_imputed,
            "guarantee_voided_frames": self.guarantee_voided_frames,
            "quarantined_frames": self.quarantined_frames,
            "health_transitions": self.health_transitions,
            "model_swaps": self.model_swaps,
            "swap_voided_frames": self.swap_voided_frames,
            "frame_recall": self.frame_recall,
            "effective_recall": self.effective_recall,
            "relay_fraction": self.relay_fraction,
        }
        if include_detections:
            out["detections"] = [
                {"event": d.event_name, "start": d.start, "end": d.end}
                for d in self.detections
            ]
        return out


class StreamMarshaller:
    """Drive EventHit (+ optional conformal layers) over a live stream.

    Parameters
    ----------
    model:
        Trained EventHit.
    event_types:
        The event types the deployment watches (order must match the
        model's heads).
    pipeline:
        Covariate pipeline with the training-fitted standardizer.
    classifier / regressor:
        Optional calibrated C-CLASSIFY / C-REGRESS components; when absent
        the EHO thresholds τ1/τ2 are used.
    confidence / alpha:
        Knobs c and α.
    tau1 / tau2:
        Fallback thresholds (Eqs. 4–5).
    segmented:
        Multi-instance mode (paper footnote 1): relay each contiguous run
        of above-τ2 offsets as its own segment instead of one min..max
        span — with two event instances in a horizon, the idle gap between
        them is not billed.  C-REGRESS widening, when configured, is
        applied per segment.
    segment_min_gap:
        Runs closer than this many offsets are merged (filters score dips
        inside one occurrence).
    inference:
        Optional :class:`~repro.core.batched.BatchedInference` engine to
        run the per-horizon forward pass through.  Defaults to a fresh
        engine over ``model``; sharing one engine across a fleet of
        marshallers is what makes batched multi-stream serving bitwise
        equivalent to sequential runs (the engine is batch-size
        invariant).
    """

    def __init__(
        self,
        model: EventHit,
        event_types: Sequence[EventType],
        pipeline: CovariatePipeline,
        classifier: Optional[ConformalClassifier] = None,
        regressor: Optional[ConformalRegressor] = None,
        confidence: float = 0.9,
        alpha: float = 0.9,
        tau1: float = 0.5,
        tau2: float = 0.5,
        segmented: bool = False,
        segment_min_gap: int = 5,
        inference: Optional[BatchedInference] = None,
    ):
        if len(event_types) != model.num_events:
            raise ValueError(
                f"{len(event_types)} event types but model has "
                f"{model.num_events} heads"
            )
        if classifier is not None and not classifier.is_calibrated:
            raise ValueError("classifier must be calibrated")
        if regressor is not None and not regressor.is_calibrated:
            raise ValueError("regressor must be calibrated")
        if not 0.0 <= confidence <= 1.0:
            raise ValueError("confidence must be in [0, 1]")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.model = model
        self.event_types = list(event_types)
        self.pipeline = pipeline
        self.classifier = classifier
        self.regressor = regressor
        self.confidence = confidence
        self.alpha = alpha
        if segment_min_gap < 1:
            raise ValueError("segment_min_gap must be >= 1")
        self.tau1 = tau1
        self.tau2 = tau2
        self.segmented = segmented
        self.segment_min_gap = segment_min_gap
        self.inference = inference if inference is not None else BatchedInference(model)
        self.horizon = model.config.horizon

    # ------------------------------------------------------------------
    def _decide(self, output) -> tuple:
        """(exists (B,K) bool, segments[b][k] = [(start, end), ...]).

        Batch-native: every underlying operation (conformal p-values,
        interval extraction, C-REGRESS widening) is row-independent, so
        row ``b``'s segments are exactly what a single-row call would
        return — the fleet marshaller decides all lanes in this one call.
        In span mode each event gets at most one segment per row.
        """
        if self.classifier is not None:
            exists = self.classifier.predict(output, self.confidence)
        else:
            exists = output.scores >= self.tau1
        batch = exists.shape[0]

        if self.segmented:
            raw = extract_interval_segments(
                output.frame_scores, self.tau2, min_gap=self.segment_min_gap
            )
            if self.regressor is not None:
                quantiles = self.regressor.quantiles(self.alpha)
                widened_rows = []
                for row in raw:
                    widened = []
                    for k, runs in enumerate(row):
                        q_start, q_end = int(quantiles[k, 0]), int(quantiles[k, 1])
                        adjusted = [
                            (max(1, s - q_start), min(self.horizon, e + q_end))
                            for s, e in runs
                        ]
                        widened.append(_merge_runs(adjusted))
                    widened_rows.append(widened)
                raw = widened_rows
            segments = [
                [runs if exists[b, k] else [] for k, runs in enumerate(raw[b])]
                for b in range(batch)
            ]
            if self.regressor is not None:
                inc(
                    "marshal.widenings",
                    sum(len(runs) for row in segments for runs in row),
                )
            return exists, segments

        if self.regressor is not None:
            inc("marshal.widenings", int(exists.sum()))
            predictions = self.regressor.predict(output, exists, self.alpha)
            starts, ends = predictions.starts, predictions.ends
        else:
            starts, ends = extract_intervals(output.frame_scores, self.tau2)
        segments = [
            [
                [(int(starts[b, k]), int(ends[b, k]))] if exists[b, k] else []
                for k in range(exists.shape[1])
            ]
            for b in range(batch)
        ]
        return exists, segments

    def _horizon_truth_frames(
        self, stream: VideoStream, frame: int, event_type: EventType
    ) -> set:
        """Absolute ground-truth frames of ``event_type`` in the horizon
        starting at ``frame`` (recall accounting; shared with the fleet)."""
        truth_frames: set = set()
        for ev in stream.schedule.events_in_horizon(event_type, frame, self.horizon):
            truth_frames.update(
                range(frame + ev.start_offset, frame + ev.end_offset + 1)
            )
        return truth_frames

    # ------------------------------------------------------------------
    # Engine dispatch (shared with the fleet marshaller)
    # ------------------------------------------------------------------
    def _engine_forward(
        self,
        windows: np.ndarray,
        keys: Sequence[str],
        end_frames: Sequence[int],
    ) -> "EventHitOutput":
        """Score stacked windows through whichever engine is bound.

        Stateful engines (anything exposing ``update``) get lane keys and
        absolute end frames so they can carry recurrence state across
        ticks; the stateless windowed engine just sees the windows.  Duck
        typing keeps the marshalling loop engine-agnostic — the same loop
        serves ``windowed``, ``continual``, and ``gated``.
        """
        update = getattr(self.inference, "update", None)
        if update is not None:
            return update(windows, keys, end_frames)
        return self.inference.predict(windows)

    def _engine_reset(self, keys: Optional[Sequence[str]] = None) -> None:
        """Drop carried engine state for ``keys`` (no-op when stateless).

        Called at run start, on quarantine entry, and on guard-voided
        horizons: any carried state may have consumed frames the guard no
        longer vouches for, so the engine must warm up from the next full
        (clean) window.
        """
        reset = getattr(self.inference, "reset", None)
        if reset is not None:
            reset(keys)

    # ------------------------------------------------------------------
    # Ingest-guard bookkeeping (shared with the fleet marshaller)
    # ------------------------------------------------------------------
    def _guard_bookkeeping(
        self, guarded: GuardedStream, frame: int, report: "MarshallingReport"
    ) -> Tuple[int, bool]:
        """Per-horizon guard accounting; returns ``(health, voided)`` at
        ``frame`` (the decision point — the end of the collection
        window).  ``health`` is what the caller routes on; ``voided``
        flags horizons whose conformal guarantee no longer holds, which
        stateful engines use as a state-drop trigger (their carried
        recurrence may have consumed imputed or invalid frames)."""
        horizon = self.horizon
        health = guarded.state_at(frame)
        lo, hi = frame + 1, frame + horizon + 1
        invalid = guarded.invalid_count(lo, hi)
        imputed = guarded.imputed_count(lo, hi)
        report.frames_invalid += invalid
        report.frames_imputed += imputed
        report.health_transitions += guarded.transitions_in(lo, hi)
        window_dirty = (
            guarded.invalid_count(frame - self.pipeline.window_size + 1, frame + 1)
            > 0
        )
        voided = health != HEALTHY or window_dirty or invalid > 0
        if voided:
            # C-CLASSIFY / C-REGRESS coverage is calibrated on clean,
            # exchangeable windows; none of that holds here.
            report.guarantee_voided_frames += horizon
            inc("ingest.guarantee_voided", horizon)
        if health == QUARANTINED:
            report.quarantined_frames += horizon
            inc("stream.health.quarantined_horizons")
        set_gauge("stream.health.state", health)
        return health, voided

    def _quarantine_horizon(
        self,
        stream: VideoStream,
        frame: int,
        service: CloudInferenceService,
        report: "MarshallingReport",
        quarantine_policy: str,
        failure_policy: str,
        pending: List[_DeferredSegment],
    ) -> None:
        """Conservative fallback for a quarantined horizon.

        The model's input is untrustworthy, so no prediction is made:
        ``"relay-all"`` ships the whole horizon to the CI per event type
        (spend money, miss nothing), ``"skip"`` relays nothing and the
        horizon's frames stay accounted under ``quarantined_frames``.
        """
        for event_type in self.event_types:
            truth_frames = self._horizon_truth_frames(stream, frame, event_type)
            report.true_event_frames += len(truth_frames)
            if quarantine_policy != "relay-all":
                continue
            segment = stream.segment(frame + 1, frame + self.horizon)
            try:
                detections = service.detect(segment, event_type)
            except CIError as exc:
                if failure_policy == "raise":
                    raise
                if failure_policy == "skip":
                    self._fail_segment(stream, segment, event_type, report, exc)
                else:
                    self._defer_segment(
                        _DeferredSegment(segment, event_type), pending, report
                    )
            else:
                self._credit_success(
                    stream, segment, event_type, detections, report
                )

    # ------------------------------------------------------------------
    # Degraded-mode bookkeeping
    # ------------------------------------------------------------------
    @staticmethod
    def _advance_service_clock(service, seconds: float) -> None:
        """Tell a resilience-aware service that stream time passed.

        One horizon of the stream takes horizon/fps wall seconds; a
        circuit breaker waiting out its recovery window needs that time to
        flow even while it rejects every call.  Plain services ignore it.
        """
        advance = getattr(service, "advance_clock", None)
        if advance is not None:
            advance(seconds)

    def _fail_segment(
        self,
        stream: VideoStream,
        segment: StreamSegment,
        event_type: EventType,
        report: MarshallingReport,
        error: CIError,
    ) -> None:
        """Give up on ``segment``: charge its frames as lost."""
        report.segments_failed += 1
        report.frames_lost += segment.num_frames
        report.lost_event_frames += len(
            _truth_frames_in(stream, segment, event_type)
        )
        inc("marshal.segments_failed")
        inc("marshal.frames_lost", segment.num_frames)
        log_info(
            "marshal.segment_lost",
            start=segment.start,
            end=segment.end,
            event_type=event_type.name,
            error=type(error).__name__,
        )

    def _defer_segment(
        self,
        item: _DeferredSegment,
        pending: List[_DeferredSegment],
        report: MarshallingReport,
    ) -> None:
        report.segments_deferred += 1
        pending.append(item)
        inc("marshal.segments_deferred")

    def _credit_success(
        self,
        stream: VideoStream,
        segment: StreamSegment,
        event_type: EventType,
        detections: List[Detection],
        report: MarshallingReport,
    ) -> None:
        """Accounting for a relay that succeeded outside its home horizon."""
        report.detections.extend(detections)
        report.frames_relayed += segment.num_frames
        covered = set()
        for det in detections:
            covered.update(range(det.start, det.end + 1))
        truth = _truth_frames_in(stream, segment, event_type)
        report.detected_event_frames += len(covered & truth)

    def _attempt_deferred(
        self,
        pending: List[_DeferredSegment],
        stream: VideoStream,
        service: CloudInferenceService,
        report: MarshallingReport,
        max_deferrals: int,
    ) -> List[_DeferredSegment]:
        """One retry round over the deferral queue; returns what remains."""
        still_pending: List[_DeferredSegment] = []
        for item in pending:
            try:
                detections = service.detect(item.segment, item.event_type)
            except CIError as exc:
                if item.deferrals >= max_deferrals:
                    self._fail_segment(
                        stream, item.segment, item.event_type, report, exc
                    )
                else:
                    item.deferrals += 1
                    self._defer_segment(item, still_pending, report)
            else:
                self._credit_success(
                    stream, item.segment, item.event_type, detections, report
                )
        return still_pending

    def run(
        self,
        stream: VideoStream,
        features: FeatureMatrix,
        service: CloudInferenceService,
        start_frame: Optional[int] = None,
        max_horizons: Optional[int] = None,
        failure_policy: str = "raise",
        max_deferrals: int = 8,
        guard: Optional[StreamGuard] = None,
        lifecycle=None,
    ) -> MarshallingReport:
        """Marshal ``stream`` horizon by horizon through ``service``.

        ``failure_policy`` decides what happens when ``service.detect``
        raises a :class:`~repro.cloud.faults.CIError` (retries, if any,
        already exhausted inside the service wrapper):

        * ``"raise"`` (default) — propagate; the perfect-infrastructure
          contract of the original loop.
        * ``"skip"`` — drop the segment, charging its frames to
          ``frames_lost`` / ``lost_event_frames``.
        * ``"defer"`` — re-queue the segment into the next horizon (the
          queue drains at stream end, so deferrals are clamped to it);
          a segment failing more than ``max_deferrals`` times is charged
          as lost, which bounds the run even under sustained faults.

        ``guard``, when given, sanitizes ``features`` before any window is
        cut (imputation replaces invalid values, the health state machine
        tracks stream quality) and quarantined horizons bypass the model
        entirely, falling back to the guard's ``quarantine_policy``.  On a
        clean stream the guard returns the same feature object and every
        guard counter stays zero, so the report is byte-identical to an
        unguarded run.

        ``lifecycle``, when given, is a
        :class:`~repro.lifecycle.LifecycleController` (duck-typed: any
        object with ``maybe_swap`` / ``observe``): staged model swaps are
        applied at horizon boundaries — before the window is cut, so a
        fresh version never decides from a stale forward pass — and every
        decided horizon is offered for audit.  A lifecycle that never
        swaps leaves the report byte-identical to a run without one.
        """
        if features.num_frames != stream.length:
            raise ValueError("feature matrix length != stream length")
        if service.stream is not stream:
            raise ValueError("service must be bound to the same stream")
        if failure_policy not in FAILURE_POLICIES:
            raise ValueError(
                f"failure_policy must be one of {FAILURE_POLICIES}, "
                f"got {failure_policy!r}"
            )
        if max_deferrals < 1:
            raise ValueError("max_deferrals must be >= 1")
        guarded: Optional[GuardedStream] = None
        if guard is not None:
            guarded = guard.sanitize(features)
            features = guarded.features
        report = MarshallingReport()
        horizon = self.horizon
        frame = start_frame if start_frame is not None else self.pipeline.min_frame()
        if frame < self.pipeline.min_frame():
            raise ValueError("start_frame leaves no room for the collection window")

        cost_before = service.ledger.total_cost
        retries_before = getattr(getattr(service, "stats", None), "retries", 0)
        pending: List[_DeferredSegment] = []
        self._engine_reset()  # a fresh run never inherits carried state
        with span("marshal.run", start_frame=frame, horizon=horizon):
            while frame + horizon < stream.length:
                if (
                    max_horizons is not None
                    and report.horizons_evaluated >= max_horizons
                ):
                    break
                with span("marshal.horizon", frame=frame):
                    if pending:
                        pending = self._attempt_deferred(
                            pending, stream, service, report, max_deferrals
                        )
                    if is_enabled():
                        # Backpressure: how much deferred work is queued
                        # in front of this horizon.
                        set_gauge("marshal.backlog.segments", len(pending))
                        set_gauge(
                            "marshal.backlog.frames",
                            sum(d.segment.num_frames for d in pending),
                        )
                    if guarded is not None:
                        health, voided = self._guard_bookkeeping(
                            guarded, frame, report
                        )
                        if voided:
                            # Carried recurrence state may include imputed
                            # or invalid frames — drop it; the engine
                            # warms up from the next full window.
                            self._engine_reset([stream.name])
                        if health == QUARANTINED:
                            # Model input is untrustworthy: skip the
                            # forward pass, fall back conservatively.
                            self._quarantine_horizon(
                                stream,
                                frame,
                                service,
                                report,
                                guard.quarantine_policy,
                                failure_policy,
                                pending,
                            )
                            report.horizons_evaluated += 1
                            report.frames_covered += horizon
                            frame += horizon
                            self._advance_service_clock(
                                service, horizon / stream.fps
                            )
                            continue
                    if lifecycle is not None:
                        lifecycle.maybe_swap(
                            report, tick=report.horizons_evaluated
                        )
                    window = self.pipeline.covariates_at(features, frame)
                    output = self._engine_forward(
                        window[None], [stream.name], [frame]
                    )
                    exists, segments = self._decide(output)
                    if lifecycle is not None:
                        lifecycle.observe(
                            stream,
                            frame,
                            window,
                            output,
                            exists,
                            tick=report.horizons_evaluated,
                        )

                    for k, event_type in enumerate(self.event_types):
                        # Ground truth within this horizon, for recall
                        # accounting.
                        truth_frames = self._horizon_truth_frames(
                            stream, frame, event_type
                        )
                        report.true_event_frames += len(truth_frames)

                        covered = set()
                        for start_offset, end_offset in segments[0][k]:
                            segment = stream.segment(
                                frame + start_offset, frame + end_offset
                            )
                            try:
                                detections = service.detect(segment, event_type)
                            except CIError as exc:
                                if failure_policy == "raise":
                                    raise
                                if failure_policy == "skip":
                                    self._fail_segment(
                                        stream, segment, event_type, report, exc
                                    )
                                else:
                                    self._defer_segment(
                                        _DeferredSegment(segment, event_type),
                                        pending,
                                        report,
                                    )
                                continue
                            report.detections.extend(detections)
                            report.frames_relayed += segment.num_frames
                            for det in detections:
                                covered.update(range(det.start, det.end + 1))
                        report.detected_event_frames += len(covered & truth_frames)

                    report.horizons_evaluated += 1
                    report.frames_covered += horizon
                    frame += horizon
                self._advance_service_clock(service, horizon / stream.fps)

            if pending:
                # Stream exhausted with relays still queued: drain in
                # bounded rounds (each failure consumes a deferral).
                with span("marshal.drain", pending=len(pending)):
                    while pending:
                        pending = self._attempt_deferred(
                            pending, stream, service, report, max_deferrals
                        )
                        self._advance_service_clock(service, horizon / stream.fps)

        report.total_cost = service.ledger.total_cost - cost_before
        report.retries = (
            getattr(getattr(service, "stats", None), "retries", 0) - retries_before
        )
        inc("marshal.horizons", report.horizons_evaluated)
        inc("marshal.frames_covered", report.frames_covered)
        inc("marshal.frames_relayed", report.frames_relayed)
        inc("marshal.cost", report.total_cost)
        inc("stage.frames_covered", report.frames_covered)
        inc("stage.frames_featurized", report.frames_covered)
        inc("stage.predictions", report.horizons_evaluated)
        inc("stage.frames_relayed", report.frames_relayed)
        return report
