"""Configuration for the EventHit model and trainer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

__all__ = ["EventHitConfig"]


@dataclass(frozen=True)
class EventHitConfig:
    """Hyper-parameters of EventHit (paper §III, Fig. 3).

    Attributes
    ----------
    window_size:
        Collection window length M.
    horizon:
        Time horizon H — each event head emits 1 existence score plus H
        per-offset occurrence scores.
    lstm_hidden:
        Hidden width of the shared LSTM encoder.
    shared_hidden:
        Widths of the fully connected layer(s) after the LSTM that produce
        the latent vector z.
    head_hidden:
        Widths of each event-specific sub-network's hidden layers.
    dropout:
        Dropout probability in the shared sub-network (paper: "fully
        connected and dropout layer(s)").
    betas / gammas:
        Per-event loss weights β_k / γ_k (default: all ones).  The paper
        tunes them by grid search; :mod:`repro.harness.sweeps` provides one.
    learning_rate / epochs / batch_size:
        Optimiser settings (paper reports batch size 128).
    grad_clip:
        Global gradient-norm clip applied every step.
    seed:
        Seed for weight init and batch shuffling.
    """

    window_size: int = 25
    horizon: int = 500
    lstm_hidden: int = 64
    shared_hidden: Tuple[int, ...] = (64,)
    head_hidden: Tuple[int, ...] = (64,)
    dropout: float = 0.1
    betas: Optional[Tuple[float, ...]] = None
    gammas: Optional[Tuple[float, ...]] = None
    learning_rate: float = 3e-3
    epochs: int = 30
    batch_size: int = 128
    grad_clip: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.window_size <= 0 or self.horizon <= 0:
            raise ValueError("window_size and horizon must be positive")
        if self.lstm_hidden <= 0:
            raise ValueError("lstm_hidden must be positive")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if self.grad_clip <= 0:
            raise ValueError("grad_clip must be positive")
