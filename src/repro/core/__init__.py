"""EventHit core: the paper's primary contribution.

* :class:`EventHit` — shared LSTM sub-network + K event-specific heads
  (§III, Fig. 3).
* :class:`Trainer` / :func:`train_eventhit` — end-to-end L1+L2 training.
* :func:`threshold_predictions` — Eq. 4–6 inference (the EHO rule).
"""

from .batched import BatchedInference, rowstable_matmul
from .config import EventHitConfig
from .continual import ENGINES, ContinualInference, make_engine
from .model import EventHit, EventHitOutput
from .inference import (
    PredictionBatch,
    extract_interval_segments,
    extract_intervals,
    predict_existence,
    segments_to_mask,
    threshold_predictions,
)
from .trainer import Trainer, TrainingHistory, train_eventhit
from .checkpoint import CheckpointError, load_checkpoint, save_checkpoint

__all__ = [
    "BatchedInference",
    "rowstable_matmul",
    "ContinualInference",
    "ENGINES",
    "make_engine",
    "EventHitConfig",
    "EventHit",
    "EventHitOutput",
    "PredictionBatch",
    "predict_existence",
    "extract_intervals",
    "extract_interval_segments",
    "segments_to_mask",
    "threshold_predictions",
    "Trainer",
    "TrainingHistory",
    "train_eventhit",
    "CheckpointError",
    "save_checkpoint",
    "load_checkpoint",
]
