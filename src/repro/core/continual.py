"""O(1)-per-tick continual inference with change-gated recompute.

:class:`~repro.core.batched.BatchedInference` re-runs the whole
``(window, features)`` recurrence for every decision, even though
consecutive windows of a live stream overlap in all but the stride's worth
of frames.  *Continual Inference* (Hedegaard & Iosifidis, 2022) shows that
carrying recurrent state across evaluations turns the per-step cost of an
online DNN from O(window) to O(1); *CBinfer* (Cavigelli & Benini, 2017)
and *Event Neural Networks* (Dutson et al., 2022) show that change-based
gating skips recompute entirely on the near-static inputs that dominate
surveillance video.  This module applies both to the marshalling
predictor:

* :class:`ContinualInference` — a stateful sibling of
  :class:`BatchedInference` that keeps per-lane ``(h, c)`` state and
  consumes only the *new* frames of each incoming window (one
  :func:`~repro.nn.fused.lstm_step_numpy` per frame instead of a full
  window unroll).
* **Change gating** (``gate_delta``) — when every incoming frame's
  features are within ``gate_delta`` (∞-norm) of the features of the last
  frame the recurrence consumed, the engine skips the step *and* the head
  entirely and re-serves the lane's cached Θ scores.

Correctness contract
--------------------
The stateful path is **bitwise-equal to the windowed forward,
warmup-aligned**: after a warm-up on window ``[a..b]`` and steps over
frames ``b+1..t``, the lane's output is bit-for-bit what
``BatchedInference.predict`` returns for the single window ``[a..t]``
(same prepared weights, same row-stable contraction, same op order — the
step kernel *is* the sequence forward's inner loop).  In particular, a
lane whose windows never overlap (stride ≥ window, the repo's default
horizon/window geometry) warms up every tick and the engine is
byte-identical to the windowed one.  The gated path trades bounded score
error (controlled by ``gate_delta``) for skipped work and is byte-identical
to the ungated continual path whenever zero gates fire.  Both pins live in
``tests/core/test_continual.py`` / ``tests/fleet/test_continual_fleet.py``.

Like the batched engine, every matmul goes through
:func:`~repro.core.batched.rowstable_matmul`, so per-lane results never
depend on which other lanes share the batch — fleet serving stays bitwise
equivalent to sequential serving.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn import gru_step_numpy, lstm_forward_numpy, lstm_step_numpy
from ..obs import inc
from .batched import BatchedInference, rowstable_matmul
from .model import EventHit, EventHitOutput

__all__ = ["ContinualInference", "ContinualLaneState", "ENGINES", "make_engine"]

#: Engine registry names accepted by :func:`make_engine` (and the CLI's
#: ``--engine`` flag).
ENGINES = ("windowed", "continual", "gated")

#: Default ∞-norm feature threshold for the ``gated`` engine.  Features
#: are standardized (unit variance per channel), so 0.05σ is a
#: conservative "nothing moved" band.
DEFAULT_GATE_DELTA = 0.05


class ContinualLaneState:
    """One lane's carried recurrence state (private to the engine)."""

    __slots__ = ("h", "c", "end_frame", "ref", "theta", "gate_hits", "computes")

    def __init__(self) -> None:
        self.h: Optional[np.ndarray] = None  # (hidden,)
        self.c: Optional[np.ndarray] = None  # (hidden,) — LSTM only
        self.end_frame: int = -1  # absolute frame the state has consumed up to
        self.ref: Optional[np.ndarray] = None  # features of the last consumed frame
        self.theta: Optional[np.ndarray] = None  # cached (K, H+1) scores
        self.gate_hits: int = 0
        self.computes: int = 0


# Per-row actions resolved by _classify (module constants, not an enum, to
# keep the per-tick dispatch allocation-free).
_WARMUP, _STEP, _GATE = 0, 1, 2


class ContinualInference(BatchedInference):
    """Serve stacked stream windows with carried state and change gating.

    Parameters
    ----------
    model:
        A (trained) :class:`EventHit` with a recurrent encoder (``lstm``
        or ``gru``).  The ``mean`` encoder has no recurrence to carry and
        is rejected — use the windowed engine for it.
    gate_delta:
        ``None`` (default) disables change gating.  A float ≥ 0 enables
        it: an update whose new frames all lie within ``gate_delta``
        (∞-norm, per feature) of the last consumed frame's features
        reuses the lane's cached scores without touching state.

    Unlike the windowed engine, which reads model parameters live on every
    call, this engine caches the permuted/pre-doubled weight projections
    at bind time (they are rebuilt by :meth:`rebind` /
    :meth:`refresh_weights` — the lifecycle controller's hot-swap path).
    """

    def __init__(self, model: EventHit, gate_delta: Optional[float] = None):
        super().__init__(model)
        if model.encoder_kind not in ("lstm", "gru"):
            raise ValueError(
                "ContinualInference requires a recurrent encoder (lstm/gru); "
                f"the {model.encoder_kind!r} encoder has no state to carry"
            )
        if gate_delta is not None and gate_delta < 0:
            raise ValueError("gate_delta must be >= 0 (or None to disable)")
        self.gate_delta = gate_delta
        self._lanes: Dict[str, ContinualLaneState] = {}
        self.refresh_weights()

    # ------------------------------------------------------------------
    # Weight cache / lifecycle
    # ------------------------------------------------------------------
    def refresh_weights(self) -> None:
        """Rebuild the prepared weight cache from the bound model.

        Must be called after the encoder's parameters change in place
        (the hot-swap path goes through :meth:`rebind`, which starts from
        a fresh cache).  Carried lane state is *not* touched — callers
        that retrain in place must also :meth:`reset`.
        """
        model = self.model
        if model.encoder_kind == "lstm":
            cell = model.encoder.cell
            hidden = cell.hidden_size
            # Same preparation lstm_forward_numpy applies per call: permute
            # gate columns [i, f, g, o] → [o, i, f, g] and pre-double the
            # candidate block (tanh via 2σ(2x) − 1; ×2 is exact).
            from ..nn.fused import _gate_permutation

            perm = _gate_permutation(hidden)
            wx_p = cell.weight_x.data[:, perm]
            wh_p = cell.weight_h.data[:, perm]
            b_p = cell.bias.data[perm]
            wx_p[:, 3 * hidden :] *= 2.0
            wh_p[:, 3 * hidden :] *= 2.0
            b_p[3 * hidden :] *= 2.0
            self._prepared_weights = (wx_p, wh_p, b_p)
        else:  # gru
            cell = model.encoder.cell
            self._prepared_weights = (
                cell.weight_x_gates.data,
                cell.weight_h_gates.data,
                cell.bias_gates.data,
                cell.weight_x_cand.data,
                cell.weight_h_cand.data,
                cell.bias_cand.data,
            )

    def rebind(self, model: EventHit) -> "ContinualInference":
        """Fresh engine for ``model`` with this engine's gating config.

        All carried lane state is dropped — the state rebase after a
        hot-swap: every lane warms up from its next full window under the
        new weights, exactly as if the deployment had just started.
        """
        return type(self)(model, gate_delta=self.gate_delta)

    # ------------------------------------------------------------------
    # State management
    # ------------------------------------------------------------------
    def reset(self, keys: Optional[Sequence[str]] = None) -> None:
        """Drop carried state for ``keys`` (all lanes when ``None``).

        The marshallers call this on quarantine entry, on guard-voided
        horizons, and at run start — any point where the carried state
        may have consumed frames the guard no longer vouches for.
        """
        if keys is None:
            self._lanes.clear()
            return
        for key in keys:
            self._lanes.pop(key, None)

    def has_state(self, key: str) -> bool:
        return key in self._lanes

    def gate_stats(self, key: str) -> Tuple[int, int]:
        """``(gate_hits, computes)`` counters for one lane (0, 0 if unknown)."""
        slot = self._lanes.get(key)
        if slot is None:
            return (0, 0)
        return (slot.gate_hits, slot.computes)

    # ------------------------------------------------------------------
    # The stateful update
    # ------------------------------------------------------------------
    def _classify(
        self, slot: Optional[ContinualLaneState], window: np.ndarray, end_frame: int
    ) -> Tuple[int, int]:
        """(action, stride) for one lane's incoming window."""
        steps = window.shape[0]
        if slot is None or slot.end_frame < 0:
            stride = steps
        else:
            stride = end_frame - slot.end_frame
        if stride <= 0:
            stride = steps  # restart / rewind: treat as a fresh lane
        gated = (
            self.gate_delta is not None
            and slot is not None
            and slot.theta is not None
            and slot.ref is not None
        )
        if gated:
            new = window[-min(stride, steps) :]
            if np.max(np.abs(new - slot.ref)) <= self.gate_delta:
                return _GATE, stride
        if stride >= steps:
            return _WARMUP, steps
        return _STEP, stride

    def update(
        self,
        windows: np.ndarray,
        keys: Sequence[str],
        end_frames: Sequence[int],
    ) -> EventHitOutput:
        """Advance every lane to its window's end frame and score it.

        Parameters
        ----------
        windows:
            ``(B, M, D)`` stacked collection windows, one per lane —
            exactly what :meth:`BatchedInference.predict` takes.
        keys:
            Lane identities (stream names); carried state is keyed by
            these.
        end_frames:
            Absolute index of each window's final frame.  The engine
            derives the stride from the lane's last consumed frame: new
            lanes (or gaps ≥ window) warm up on the full window, smaller
            strides step only the new frames, and gated lanes reuse
            cached scores.

        Returns the same :class:`EventHitOutput` shape as ``predict``;
        row ``i`` depends only on lane ``i``'s own history, never on the
        batch composition (row-stable contraction throughout).
        """
        x = np.asarray(windows, dtype=np.float64)
        if x.ndim != 3:
            raise ValueError(f"expected (B, M, D) covariates, got {x.shape}")
        batch, steps, features = x.shape
        if batch != len(keys) or batch != len(end_frames):
            raise ValueError("windows, keys, and end_frames must align")
        if features != self.model.num_features:
            raise ValueError(
                f"expected D={self.model.num_features} channels, got {features}"
            )
        if batch == 0 or steps == 0:
            raise ValueError("empty covariate batch")

        actions: List[Tuple[int, int]] = []
        slots: List[ContinualLaneState] = []
        for i, key in enumerate(keys):
            slot = self._lanes.get(key)
            actions.append(self._classify(slot, x[i], int(end_frames[i])))
            if slot is None:
                slot = ContinualLaneState()
                self._lanes[key] = slot
            slots.append(slot)

        hidden = self.model.encoder.hidden_size
        is_lstm = self.model.encoder_kind == "lstm"
        h_rows = np.empty((batch, hidden))
        c_rows = np.empty((batch, hidden)) if is_lstm else None

        # Warm-up rows: one stacked whole-window forward (bitwise the
        # windowed engine's encoding — same kernel, same contraction).
        warm = [i for i, (a, _) in enumerate(actions) if a == _WARMUP]
        if warm:
            if is_lstm:
                wx_p, wh_p, b_p = self._prepared_weights
                h_w, c_w = lstm_forward_numpy(
                    x[warm],
                    self.model.encoder.cell.weight_x.data,
                    self.model.encoder.cell.weight_h.data,
                    self.model.encoder.cell.bias.data,
                    matmul=rowstable_matmul,
                    return_state=True,
                )
                c_rows[warm] = c_w
            else:
                h_w = self._eval_gru(self.model.encoder, x[warm])
            h_rows[warm] = h_w
            inc("continual.warmups", len(warm))

        # Step rows, grouped by stride so each group advances in lock-step
        # (per-row math is batch-invariant, so grouping is free).
        step_rows = [i for i, (a, _) in enumerate(actions) if a == _STEP]
        by_stride: Dict[int, List[int]] = {}
        for i in step_rows:
            by_stride.setdefault(actions[i][1], []).append(i)
        for stride, rows in by_stride.items():
            h_g = np.stack([slots[i].h for i in rows])
            c_g = np.stack([slots[i].c for i in rows]) if is_lstm else None
            frames = x[rows, steps - stride :, :]  # (G, stride, D)
            for t in range(stride):
                if is_lstm:
                    wx_p, wh_p, b_p = self._prepared_weights
                    h_g, c_g = lstm_step_numpy(
                        frames[:, t], h_g, c_g, wx_p, wh_p, b_p,
                        matmul=rowstable_matmul,
                    )
                else:
                    h_g = gru_step_numpy(
                        frames[:, t], h_g, *self._prepared_weights,
                        matmul=rowstable_matmul,
                    )
            h_rows[rows] = h_g
            if is_lstm:
                c_rows[rows] = c_g
            inc("continual.steps", stride * len(rows))

        # Head pass over every computed row in one stacked call.
        computed = sorted(warm + step_rows)
        theta = np.empty(
            (batch, self.model.num_events, self.model.config.horizon + 1)
        )
        if computed:
            theta[computed] = self._head_theta(
                h_rows[computed], x[computed, -1, :]
            )

        gate_hits = 0
        for i, (action, _) in enumerate(actions):
            slot = slots[i]
            slot.end_frame = int(end_frames[i])
            if action == _GATE:
                theta[i] = slot.theta
                slot.gate_hits += 1
                gate_hits += 1
                inc(f"continual.gate.hits.{keys[i]}")
                continue
            slot.h = h_rows[i].copy()
            if is_lstm:
                slot.c = c_rows[i].copy()
            slot.ref = x[i, -1, :].copy()
            slot.theta = theta[i].copy()
            slot.computes += 1
        if gate_hits:
            inc("continual.gate.hits", gate_hits)

        return EventHitOutput(theta[:, :, 0], theta[:, :, 1:])


def make_engine(
    name: str,
    model: EventHit,
    gate_delta: Optional[float] = None,
) -> BatchedInference:
    """Build an inference engine by registry name.

    ``"windowed"`` is the stateless batched engine, ``"continual"``
    carries state with gating off, ``"gated"`` carries state with change
    gating at ``gate_delta`` (default :data:`DEFAULT_GATE_DELTA`).
    """
    if name == "windowed":
        return BatchedInference(model)
    if name == "continual":
        return ContinualInference(model)
    if name == "gated":
        delta = DEFAULT_GATE_DELTA if gate_delta is None else gate_delta
        return ContinualInference(model, gate_delta=delta)
    raise ValueError(f"engine must be one of {ENGINES}, got {name!r}")
