"""End-to-end training of EventHit (paper §III: minimise L_total = L1 + L2)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..data.records import RecordSet
from ..nn import Adam, clip_grad_norm, no_grad, total_loss
from ..obs import log_info, observe, set_gauge, span
from .config import EventHitConfig
from .model import EventHit

__all__ = ["TrainingHistory", "Trainer", "train_eventhit"]


@dataclass
class TrainingHistory:
    """Per-epoch loss trace of one training run."""

    train_losses: List[float] = field(default_factory=list)
    val_losses: List[float] = field(default_factory=list)
    learning_rates: List[float] = field(default_factory=list)
    epochs_run: int = 0
    seconds: float = 0.0
    epoch_seconds: List[float] = field(default_factory=list)
    stopped_early: bool = False

    @property
    def final_train_loss(self) -> float:
        return self.train_losses[-1] if self.train_losses else float("nan")


class Trainer:
    """Mini-batch Adam training loop with gradient clipping.

    Parameters
    ----------
    model:
        The EventHit instance to optimise.
    patience:
        Early-stopping patience on validation loss (None disables).
    scheduler_factory:
        Optional callable ``optimizer -> Scheduler`` (e.g.
        ``lambda opt: nn.chain(opt, warmup_epochs=3, total_epochs=30)``);
        the scheduler steps once per epoch.
    """

    def __init__(
        self,
        model: EventHit,
        patience: Optional[int] = None,
        scheduler_factory=None,
    ):
        self.model = model
        self.config = model.config
        if patience is not None and patience <= 0:
            raise ValueError("patience must be positive")
        self.patience = patience
        self.scheduler_factory = scheduler_factory

    def _loss_from_arrays(
        self,
        covariates: np.ndarray,
        labels: np.ndarray,
        frame_targets: np.ndarray,
    ):
        scores, frame_scores = self.model(covariates)
        return total_loss(
            scores,
            frame_scores,
            labels,
            frame_targets,
            betas=self.config.betas,
            gammas=self.config.gammas,
        )

    def _batch_loss(self, batch: RecordSet):
        return self._loss_from_arrays(
            batch.covariates, batch.labels, batch.frame_targets()
        )

    def evaluate_loss(self, records: RecordSet, batch_size: int = 512) -> float:
        """Mean L_total over ``records`` without touching gradients."""
        was_training = self.model.training
        self.model.eval()
        total, count = 0.0, 0
        try:
            with no_grad():
                for batch in records.batches(batch_size):
                    total += self._batch_loss(batch).item() * len(batch)
                    count += len(batch)
        finally:
            self.model.train(was_training)
        return total / max(count, 1)

    def fit(
        self,
        train: RecordSet,
        validation: Optional[RecordSet] = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train for ``config.epochs`` epochs (early-stopping optional)."""
        if train.num_events != self.model.num_events:
            raise ValueError(
                f"records have {train.num_events} events, model has "
                f"{self.model.num_events}"
            )
        cfg = self.config
        rng = np.random.default_rng(cfg.seed + 1)
        optimizer = Adam(self.model.parameters(), lr=cfg.learning_rate)
        scheduler = (
            self.scheduler_factory(optimizer)
            if self.scheduler_factory is not None
            else None
        )
        history = TrainingHistory()
        best_val = float("inf")
        bad_epochs = 0

        # Hot-loop fast path: the (B, K, H) occupancy grid and the record
        # arrays are fixed for the whole fit, so they are materialised once
        # here and sliced per batch — the per-batch RecordSet construction
        # (with its full validation pass) and per-batch frame_targets()
        # expansion would otherwise repeat every epoch.  Batch contents are
        # identical to train.batches(): same permutation, same indices.
        covariates = train.covariates
        labels = train.labels
        frame_targets = train.frame_targets()

        self.model.train()
        with span("train", epochs=cfg.epochs, records=len(train)) as train_span:
            for epoch in range(cfg.epochs):
                with span("train.epoch", epoch=epoch + 1) as epoch_span:
                    epoch_loss, seen = 0.0, 0
                    for idx in train.batch_indices(cfg.batch_size, rng=rng):
                        optimizer.zero_grad()
                        loss = self._loss_from_arrays(
                            covariates[idx], labels[idx], frame_targets[idx]
                        )
                        loss.backward()
                        grad_norm = clip_grad_norm(
                            self.model.parameters(), cfg.grad_clip
                        )
                        observe("train.grad_norm", grad_norm)
                        optimizer.step()
                        epoch_loss += loss.item() * len(idx)
                        seen += len(idx)
                    history.train_losses.append(epoch_loss / max(seen, 1))
                    history.epochs_run = epoch + 1
                    if scheduler is not None:
                        history.learning_rates.append(scheduler.step())
                        set_gauge("train.lr", history.learning_rates[-1])
                    set_gauge("train.loss", history.train_losses[-1])

                    stop = False
                    if validation is not None:
                        val_loss = self.evaluate_loss(validation)
                        history.val_losses.append(val_loss)
                        set_gauge("train.val_loss", val_loss)
                        if self.patience is not None:
                            if val_loss < best_val - 1e-6:
                                best_val = val_loss
                                bad_epochs = 0
                            else:
                                bad_epochs += 1
                                if bad_epochs >= self.patience:
                                    history.stopped_early = True
                                    stop = True
                history.epoch_seconds.append(epoch_span.seconds)
                if verbose:
                    log_info(
                        "train.epoch",
                        _force=True,
                        epoch=epoch + 1,
                        epochs=cfg.epochs,
                        train_loss=round(history.train_losses[-1], 6),
                        **(
                            {"val_loss": round(history.val_losses[-1], 6)}
                            if history.val_losses
                            else {}
                        ),
                    )
                if stop:
                    break

        history.seconds = train_span.seconds
        self.model.eval()
        return history


def train_eventhit(
    train: RecordSet,
    config: Optional[EventHitConfig] = None,
    validation: Optional[RecordSet] = None,
    encoder: str = "lstm",
    patience: Optional[int] = None,
    verbose: bool = False,
):
    """Convenience: build an EventHit matching ``train`` and fit it.

    Returns ``(model, history)``.
    """
    config = config or EventHitConfig(
        window_size=train.window_size, horizon=train.horizon
    )
    if config.horizon != train.horizon:
        raise ValueError(
            f"config horizon {config.horizon} != records horizon {train.horizon}"
        )
    model = EventHit(
        num_features=train.num_channels,
        num_events=train.num_events,
        config=config,
        encoder=encoder,
    )
    trainer = Trainer(model, patience=patience)
    history = trainer.fit(train, validation=validation, verbose=verbose)
    return model, history
