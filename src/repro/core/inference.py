"""Threshold inference over EventHit outputs (paper Eqs. 4–6).

Given Θ_k = [b_k, θ_{k,1..H}]:

* existence (Eq. 4):  b_k ≥ τ1  ⇒  E_k ∈ L̂;
* occurrence interval (Eqs. 5–6): the frames with θ_{k,v} ≥ τ2, converted
  to one continuous range [min v, max v] (the paper notes the raw
  above-threshold set may be discontinuous).

If an event is predicted present but no offset clears τ2, we fall back to a
single-frame interval at the argmax offset, so a positive existence
prediction always yields a non-empty relay range (the paper leaves this
corner unspecified; an empty range would silently drop the event).

The Θ scores thresholded here come from the graph-free inference
forwards (``EventHit.predict`` / ``BatchedInference.predict``, both on
the fused numpy path of :mod:`repro.nn.fused`); thresholding itself is
pure numpy and never touches the autograd graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .model import EventHitOutput

__all__ = [
    "PredictionBatch",
    "predict_existence",
    "extract_intervals",
    "threshold_predictions",
    "extract_interval_segments",
    "segments_to_mask",
]


@dataclass
class PredictionBatch:
    """Batched predictions: existence set L̂ and intervals T̂.

    ``starts``/``ends`` are horizon offsets in [1, H]; rows/columns where
    ``exists`` is False carry zeros and represent "no frames relayed".
    """

    exists: np.ndarray  # (B, K) bool
    starts: np.ndarray  # (B, K) int
    ends: np.ndarray  # (B, K) int
    horizon: int

    def __post_init__(self) -> None:
        self.exists = np.asarray(self.exists, dtype=bool)
        self.starts = np.asarray(self.starts, dtype=int)
        self.ends = np.asarray(self.ends, dtype=int)
        if self.exists.shape != self.starts.shape or self.starts.shape != self.ends.shape:
            raise ValueError("exists/starts/ends shapes must match")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        on = self.exists
        if np.any(self.starts[on] < 1) or np.any(self.ends[on] > self.horizon):
            raise ValueError("predicted offsets must lie in [1, H]")
        if np.any(self.starts[on] > self.ends[on]):
            raise ValueError("start offsets must be <= end offsets")
        self.starts = np.where(self.exists, self.starts, 0)
        self.ends = np.where(self.exists, self.ends, 0)

    @property
    def batch_size(self) -> int:
        return self.exists.shape[0]

    @property
    def num_events(self) -> int:
        return self.exists.shape[1]

    def predicted_frames(self) -> np.ndarray:
        """(B, K) count of frames each prediction would relay to the CI."""
        return np.where(self.exists, self.ends - self.starts + 1, 0)

    def with_intervals(self, starts: np.ndarray, ends: np.ndarray) -> "PredictionBatch":
        """Copy with replaced intervals (used by C-REGRESS widening)."""
        return PredictionBatch(self.exists.copy(), starts, ends, self.horizon)


def predict_existence(scores: np.ndarray, tau1: float = 0.5) -> np.ndarray:
    """Eq. 4: b_k ≥ τ1 ⇒ event predicted to occur in the horizon."""
    if not 0.0 <= tau1 <= 1.0:
        raise ValueError("tau1 must be in [0, 1]")
    return np.asarray(scores) >= tau1


def extract_intervals(
    frame_scores: np.ndarray, tau2: float = 0.5
) -> Tuple[np.ndarray, np.ndarray]:
    """Eqs. 5–6: continuous interval spanned by offsets with θ ≥ τ2.

    Returns (starts, ends) as offsets in [1, H]; falls back to the argmax
    offset when no score clears τ2.
    """
    if not 0.0 <= tau2 <= 1.0:
        raise ValueError("tau2 must be in [0, 1]")
    frame_scores = np.asarray(frame_scores)
    if frame_scores.ndim != 3:
        raise ValueError("frame_scores must be (B, K, H)")
    above = frame_scores >= tau2
    any_above = above.any(axis=2)
    horizon = frame_scores.shape[2]
    offsets = np.arange(1, horizon + 1)

    # min/max above-threshold offsets; argmax fallback where none clears.
    first = np.where(above, offsets[None, None, :], horizon + 1).min(axis=2)
    last = np.where(above, offsets[None, None, :], 0).max(axis=2)
    peak = frame_scores.argmax(axis=2) + 1
    starts = np.where(any_above, first, peak)
    ends = np.where(any_above, last, peak)
    return starts.astype(int), ends.astype(int)


def threshold_predictions(
    output: EventHitOutput, tau1: float = 0.5, tau2: float = 0.5
) -> PredictionBatch:
    """The EHO decision rule: Eq. 4 existence + Eqs. 5–6 intervals."""
    exists = predict_existence(output.scores, tau1)
    starts, ends = extract_intervals(output.frame_scores, tau2)
    return PredictionBatch(
        exists=exists,
        starts=np.where(exists, starts, 0),
        ends=np.where(exists, ends, 0),
        horizon=output.horizon,
    )


def extract_interval_segments(
    frame_scores: np.ndarray, tau2: float = 0.5, min_gap: int = 1
) -> list:
    """Multiple occurrence intervals per horizon (paper footnote 1).

    Eq. 6 spans the min..max above-threshold offsets with *one* interval;
    when two event instances fall in the same horizon, that bridges the
    idle gap between them and wastes CI frames.  This variant returns each
    contiguous run of offsets with θ ≥ τ2 as its own segment, merging runs
    separated by fewer than ``min_gap`` offsets (short score dips within a
    single occurrence).  Falls back to the argmax offset when nothing
    clears the threshold, matching :func:`extract_intervals`.

    Returns
    -------
    A nested list ``segments[b][k] = [(start, end), ...]`` of 1-based
    inclusive offset ranges, sorted by start.
    """
    if not 0.0 <= tau2 <= 1.0:
        raise ValueError("tau2 must be in [0, 1]")
    if min_gap < 1:
        raise ValueError("min_gap must be >= 1")
    frame_scores = np.asarray(frame_scores)
    if frame_scores.ndim != 3:
        raise ValueError("frame_scores must be (B, K, H)")
    batch, events, horizon = frame_scores.shape
    out = []
    for b in range(batch):
        per_event = []
        for k in range(events):
            above = frame_scores[b, k] >= tau2
            if not above.any():
                peak = int(frame_scores[b, k].argmax()) + 1
                per_event.append([(peak, peak)])
                continue
            # Contiguous runs of True.
            padded = np.concatenate([[False], above, [False]])
            changes = np.flatnonzero(padded[1:] != padded[:-1])
            runs = [
                (int(changes[i]) + 1, int(changes[i + 1]))
                for i in range(0, len(changes), 2)
            ]
            # Merge runs separated by less than min_gap offsets.
            merged = [runs[0]]
            for start, end in runs[1:]:
                prev_start, prev_end = merged[-1]
                if start - prev_end - 1 < min_gap:
                    merged[-1] = (prev_start, end)
                else:
                    merged.append((start, end))
            per_event.append(merged)
        out.append(per_event)
    return out


def segments_to_mask(
    segments: list, horizon: int, exists: Optional[np.ndarray] = None
) -> np.ndarray:
    """(B, K, H) boolean relay mask from :func:`extract_interval_segments`.

    ``exists`` (B, K) zeroes the rows of events predicted absent.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    batch = len(segments)
    events = len(segments[0]) if batch else 0
    mask = np.zeros((batch, events, horizon), dtype=bool)
    for b in range(batch):
        if len(segments[b]) != events:
            raise ValueError("ragged segment structure")
        for k in range(events):
            for start, end in segments[b][k]:
                if not 1 <= start <= end <= horizon:
                    raise ValueError(
                        f"segment ({start}, {end}) outside [1, {horizon}]"
                    )
                mask[b, k, start - 1 : end] = True
    if exists is not None:
        exists = np.asarray(exists, dtype=bool)
        if exists.shape != (batch, events):
            raise ValueError("exists must be (B, K)")
        mask &= exists[:, :, None]
    return mask
