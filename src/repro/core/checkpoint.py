"""Whole-model checkpointing for EventHit.

:mod:`repro.nn.serialization` persists parameter tensors; a deployable
checkpoint also needs the architecture (config, feature/event counts,
encoder kind) so the model can be rebuilt without the training script.
Checkpoints are a single ``.npz`` holding the parameters plus a JSON
metadata entry — no pickle, safe to load.

Writes are crash-safe: the archive is written to a sibling temp file,
fsynced, and atomically renamed over the destination (the directory entry
is fsynced too), so a crash mid-save leaves either the previous checkpoint
or none — never a torn file at the final path.  The model registry
(:mod:`repro.lifecycle`) builds its versioned store on this same
discipline.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from typing import Union

import numpy as np

from .config import EventHitConfig
from .model import EventHit

__all__ = [
    "CheckpointError",
    "checkpoint_path",
    "save_checkpoint",
    "load_checkpoint",
]

PathLike = Union[str, os.PathLike]

_META_KEY = "__eventhit_meta__"
_FORMAT_VERSION = 1


class CheckpointError(ValueError):
    """A checkpoint file is malformed, truncated, or corrupted.

    Subclasses :class:`ValueError` so pre-existing callers catching that
    keep working; new callers should catch this to distinguish a bad
    checkpoint from a bad argument.
    """


def _fsync_directory(directory: str) -> None:
    """Flush a directory entry so an atomic rename survives a crash.

    Platforms without directory fsync (e.g. Windows) skip silently — the
    rename itself is still atomic there.
    """
    try:
        fd = os.open(directory or ".", os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def checkpoint_path(path: PathLike) -> str:
    """The final on-disk path for ``path`` (``np.savez`` appends ``.npz``
    to paths lacking the extension; the atomic writer must match)."""
    final = os.fspath(path)
    if not isinstance(final, str):  # bytes paths
        final = os.fsdecode(final)
    if not final.endswith(".npz"):
        final = final + ".npz"
    return final


def save_checkpoint(model: EventHit, path: PathLike) -> str:
    """Write architecture + parameters to ``path`` (``.npz``).

    Temp + fsync + atomic rename: the destination never holds a partial
    archive, even if the process dies mid-write.  Returns the final path
    (with the ``.npz`` extension ``np.savez`` would have appended).
    """
    meta = {
        "format_version": _FORMAT_VERSION,
        "num_features": model.num_features,
        "num_events": model.num_events,
        "encoder": model.encoder_kind,
        "config": asdict(model.config),
    }
    payload = {name: value for name, value in model.state_dict().items()}
    payload[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    final = checkpoint_path(path)
    tmp = final + ".tmp"
    try:
        with open(tmp, "wb") as fh:
            np.savez(fh, **payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)
    except BaseException:
        # A failed save must not leave a plausible-looking temp file for a
        # later directory scan to trip over.
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    _fsync_directory(os.path.dirname(final))
    return final


def load_checkpoint(path: PathLike) -> EventHit:
    """Rebuild an EventHit from a checkpoint written by :func:`save_checkpoint`.

    Raises :class:`CheckpointError` (a :class:`ValueError`) when the file
    is not an EventHit checkpoint, was written by an unknown format
    version, has missing/unexpected/shape-mismatched parameter tensors,
    or carries non-finite parameter values — a deployment must fail fast
    on a corrupted artifact, not serve NaN scores.
    """
    with np.load(path) as archive:
        if _META_KEY not in archive.files:
            raise CheckpointError(f"{path!r} is not an EventHit checkpoint")
        try:
            meta = json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"{path!r} has corrupted checkpoint metadata: {exc}"
            ) from exc
        if meta.get("format_version") != _FORMAT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {meta.get('format_version')!r}"
            )
        try:
            config_dict = dict(meta["config"])
            # Tuples become lists through JSON; restore the tuple-typed
            # fields.
            for key in ("shared_hidden", "head_hidden", "betas", "gammas"):
                if config_dict.get(key) is not None:
                    config_dict[key] = tuple(config_dict[key])
            config = EventHitConfig(**config_dict)
            model = EventHit(
                num_features=int(meta["num_features"]),
                num_events=int(meta["num_events"]),
                config=config,
                encoder=meta["encoder"],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"{path!r} has invalid checkpoint metadata: {exc}"
            ) from exc
        state = {
            name: archive[name] for name in archive.files if name != _META_KEY
        }
        try:
            model.load_state_dict(state)
        except (KeyError, ValueError) as exc:
            raise CheckpointError(
                f"{path!r} does not match its declared architecture: {exc}"
            ) from exc
        for name, value in state.items():
            if not np.isfinite(value).all():
                raise CheckpointError(
                    f"{path!r} carries non-finite values in parameter {name!r}"
                )
    model.eval()
    return model
