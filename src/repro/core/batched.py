"""Batched, batch-size-invariant EventHit inference (the fleet hot path).

Serving many streams means running the EventHit forward pass over a
stacked ``(num_streams, window, features)`` tensor in *one* numpy call per
horizon instead of one call per stream — the batched/stateful-inference
idea NoScope and Continual Inference apply to per-frame models, applied
here to the marshalling predictor.

Correctness guarantee
---------------------
``BatchedInference.predict`` is **batch-size invariant**: for any stacking
``X`` and any row ``i``,

    ``predict(X).scores[i] == predict(X[i:i+1]).scores[0]``  (bitwise)

and likewise for ``frame_scores``.  BLAS-backed ``@`` does *not* satisfy
this (GEMV vs. GEMM kernels change the per-row accumulation order by up to
an ulp, which can flip a τ-threshold decision), so every affine map here
goes through :func:`rowstable_matmul` — an einsum contraction whose
per-row accumulation order depends only on the weight shape, never on the
batch size.  The guarantee is what makes a fleet run byte-identical to N
sequential runs; it is pinned by ``tests/core/test_batched.py``.

The engine reads the model's parameters live (no copies), so a retrained
or fine-tuned model is served without rebuilding the engine.  Inference is
always in eval semantics (dropout off) and never touches the autograd
graph, which also makes the single-stream path measurably faster than
``EventHit.predict``.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..nn import (
    GRU,
    LSTM,
    MLP,
    Dropout,
    Linear,
    Sequential,
    gru_forward_numpy,
    lstm_forward_numpy,
)
from ..nn.layers import ReLU, Sigmoid, Tanh
from .model import EventHit, EventHitOutput

__all__ = ["BatchedInference", "rowstable_matmul"]


def rowstable_matmul(x: np.ndarray, weight: np.ndarray) -> np.ndarray:
    """``x @ weight`` with a per-row accumulation order that does not
    depend on the number of rows.

    ``np.einsum`` (non-optimized) reduces the contraction index with one
    fixed-order loop per output element, so row ``i`` of the product is
    bitwise identical whether ``x`` carries 1 row or 1000.  BLAS GEMM does
    not make that promise — it picks different kernels (and therefore
    different partial-sum orders) for different batch shapes.  Accepts any
    leading batch shape (the fused LSTM forward projects the whole
    ``(B, T, D)`` input in one contraction).
    """
    return np.einsum("...i,io->...o", x, weight)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    # Same formula as Tensor.sigmoid, for bitwise agreement of the
    # elementwise path.
    return 1.0 / (1.0 + np.exp(-x))


def _relu(x: np.ndarray) -> np.ndarray:
    # Mirrors Tensor.relu (x * mask), not np.maximum, so -0.0 handling and
    # rounding match the training-side implementation exactly.
    return x * (x > 0).astype(np.float64)


class BatchedInference:
    """Run EventHit forward passes over stacked per-stream windows.

    Parameters
    ----------
    model:
        A (trained) :class:`EventHit`.  All supported encoder kinds
        (``lstm``, ``gru``, ``mean``) are handled.

    The engine is a pure-numpy re-evaluation of the model graph: it walks
    the same ``Sequential``/``MLP`` structure the model holds, reading each
    layer's parameters in place, with every matmul routed through
    :func:`rowstable_matmul`.  Outputs therefore agree with
    ``EventHit.predict`` to floating-point round-off (~1 ulp) and agree
    with *themselves* bitwise across any batch split.
    """

    def __init__(self, model: EventHit):
        if not isinstance(model, EventHit):
            raise TypeError("BatchedInference serves EventHit models")
        self.model = model

    def rebind(self, model: EventHit) -> "BatchedInference":
        """A fresh engine of this engine's kind bound to ``model``.

        The hot-swap hook: the lifecycle controller rebinds whatever
        engine class the deployment selected (windowed, continual, gated)
        without knowing which — stateful engines override this to carry
        their configuration across the swap while dropping all carried
        state (the post-swap warm-up is the state rebase).
        """
        return type(self)(model)

    # ------------------------------------------------------------------
    # Layer evaluators (eval-mode, raw numpy)
    # ------------------------------------------------------------------
    def _eval_layer(self, layer, x: np.ndarray) -> np.ndarray:
        if isinstance(layer, Linear):
            out = rowstable_matmul(x, layer.weight.data)
            if layer.bias is not None:
                out = out + layer.bias.data
            return out
        if isinstance(layer, Tanh):
            return np.tanh(x)
        if isinstance(layer, Sigmoid):
            return _sigmoid(x)
        if isinstance(layer, ReLU):
            return _relu(x)
        if isinstance(layer, Dropout):
            return x  # inference is always eval-mode
        if isinstance(layer, MLP):
            return self._eval_sequential(layer.net, x)
        if isinstance(layer, Sequential):
            return self._eval_sequential(layer, x)
        raise TypeError(
            f"BatchedInference cannot evaluate layer {type(layer).__name__}"
        )

    def _eval_sequential(self, seq: Sequential, x: np.ndarray) -> np.ndarray:
        for layer in seq._layers:
            x = self._eval_layer(layer, x)
        return x

    def _eval_lstm(self, encoder: LSTM, x: np.ndarray) -> np.ndarray:
        # Delegate to the fused sequence kernel with the row-stable
        # contraction injected.  Every non-matmul op in the kernel is
        # elementwise per row, so batch-size invariance is preserved while
        # the recurrence reuses the fused path's hoisted input projection
        # and preallocated gate buffers.
        cell = encoder.cell
        return lstm_forward_numpy(
            x,
            cell.weight_x.data,
            cell.weight_h.data,
            cell.bias.data,
            matmul=rowstable_matmul,
        )

    def _eval_gru(self, encoder: GRU, x: np.ndarray) -> np.ndarray:
        cell = encoder.cell
        return gru_forward_numpy(
            x,
            cell.weight_x_gates.data,
            cell.weight_h_gates.data,
            cell.bias_gates.data,
            cell.weight_x_cand.data,
            cell.weight_h_cand.data,
            cell.bias_cand.data,
            matmul=rowstable_matmul,
        )

    # ------------------------------------------------------------------
    def predict(self, covariates: np.ndarray) -> EventHitOutput:
        """One fused forward pass over stacked windows.

        Parameters
        ----------
        covariates:
            ``(B, M, D)`` array — one collection window per stream.

        Returns
        -------
        :class:`EventHitOutput` with ``(B, K)`` scores and ``(B, K, H)``
        frame scores.  Row ``i`` is bitwise identical to the row a
        single-window call would produce, so chunking a fleet across
        several calls can never change a marshalling decision.
        """
        model = self.model
        x = np.asarray(covariates, dtype=np.float64)
        if x.ndim != 3:
            raise ValueError(f"expected (B, M, D) covariates, got {x.shape}")
        if x.shape[2] != model.num_features:
            raise ValueError(
                f"expected D={model.num_features} channels, got {x.shape[2]}"
            )
        if x.shape[0] == 0 or x.shape[1] == 0:
            raise ValueError("empty covariate batch")

        last_vector = x[:, -1, :]
        if model.encoder_kind == "lstm":
            encoded = self._eval_lstm(model.encoder, x)
        elif model.encoder_kind == "gru":
            encoded = self._eval_gru(model.encoder, x)
        else:  # mean encoder: Tensor.mean == sum * (1/count)
            pooled = x.sum(axis=1) * (1.0 / x.shape[1])
            encoded = self._eval_layer(model.encoder, pooled)

        theta = self._head_theta(encoded, last_vector)
        return EventHitOutput(theta[:, :, 0], theta[:, :, 1:])

    def _head_theta(self, encoded: np.ndarray, last_vector: np.ndarray) -> np.ndarray:
        """Shared sub-network + heads over encoded states: ``(B, K, H+1)``.

        Every op here is row-independent (row-stable matmuls, elementwise
        activations), so this stage is batch-size invariant on its own —
        the continual engine reuses it over per-step hidden states, and
        the windowed path reuses it over whole-window encodings, with
        bitwise-equal rows whenever the encodings are bitwise equal.
        """
        z = self._eval_sequential(self.model.shared, encoded)
        head_input = np.concatenate([z, last_vector], axis=1)
        outputs: List[np.ndarray] = [
            self._eval_layer(head, head_input) for head in self.model.heads()
        ]
        return np.stack(outputs, axis=1)  # (B, K, H+1)
