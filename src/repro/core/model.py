"""The EventHit network (paper §III, Fig. 3).

Architecture, verbatim from the paper:

* a **shared sub-network**: an LSTM encoder processes the covariate window
  X_n ∈ R^{M×D} frame by frame; the last hidden state h_n goes through fully
  connected + dropout layer(s) to produce the latent vector z; z is then
  concatenated with X_n's last feature vector;
* **K event-specific sub-networks**, each a stack of fully connected layers
  with independent weights and a sigmoid output, mapping z ⊕ X_n to the
  output vector Θ_k = [b_k, θ_{k,1}, …, θ_{k,H}] — an existence score plus
  one occurrence score per horizon offset.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..nn import GRU, LSTM, MLP, Dropout, Linear, Module, Sequential, Tensor
from .config import EventHitConfig

__all__ = ["EventHit", "EventHitOutput"]


class EventHitOutput:
    """Numpy view of one forward pass: Θ vectors split into b and θ parts.

    Attributes
    ----------
    scores:
        (B, K) existence scores b_k ∈ [0, 1].
    frame_scores:
        (B, K, H) per-offset occurrence scores θ_{k,v} ∈ [0, 1].
    """

    def __init__(self, scores: np.ndarray, frame_scores: np.ndarray):
        scores = np.asarray(scores, dtype=np.float64)
        frame_scores = np.asarray(frame_scores, dtype=np.float64)
        if scores.ndim != 2 or frame_scores.ndim != 3:
            raise ValueError("scores must be (B, K); frame_scores (B, K, H)")
        if scores.shape != frame_scores.shape[:2]:
            raise ValueError("scores and frame_scores disagree on (B, K)")
        self.scores = scores
        self.frame_scores = frame_scores

    @property
    def batch_size(self) -> int:
        return self.scores.shape[0]

    @property
    def num_events(self) -> int:
        return self.scores.shape[1]

    @property
    def horizon(self) -> int:
        return self.frame_scores.shape[2]

    def subset(self, indices) -> "EventHitOutput":
        return EventHitOutput(self.scores[indices], self.frame_scores[indices])


class EventHit(Module):
    """EventHit: shared LSTM encoder + per-event prediction heads.

    Parameters
    ----------
    num_features:
        Covariate channel count D.
    num_events:
        Number of event types K (one head each).
    config:
        Hyper-parameters (window M, horizon H, widths, dropout, ...).
    encoder:
        "lstm" (paper architecture), "gru" (lighter recurrent ablation), or
        "mean" — an order-blind encoder that mean-pools the window and
        passes it through an MLP; the latter two feed the encoder ablation
        benchmark.
    """

    def __init__(
        self,
        num_features: int,
        num_events: int,
        config: Optional[EventHitConfig] = None,
        encoder: str = "lstm",
    ):
        super().__init__()
        if num_features <= 0 or num_events <= 0:
            raise ValueError("num_features and num_events must be positive")
        if encoder not in ("lstm", "gru", "mean"):
            raise ValueError(f"unknown encoder {encoder!r}")
        self.config = config or EventHitConfig()
        self.num_features = num_features
        self.num_events = num_events
        self.encoder_kind = encoder

        rng = np.random.default_rng(self.config.seed)
        cfg = self.config

        if encoder == "lstm":
            self.encoder = LSTM(num_features, cfg.lstm_hidden, rng=rng)
        elif encoder == "gru":
            self.encoder = GRU(num_features, cfg.lstm_hidden, rng=rng)
        else:
            self.encoder = MLP(
                num_features,
                [cfg.lstm_hidden],
                cfg.lstm_hidden,
                activation="tanh",
                rng=rng,
            )
        encoder_out = cfg.lstm_hidden

        # Fully connected + dropout layers producing the latent vector z.
        shared_layers: List[Module] = []
        previous = encoder_out
        for width in cfg.shared_hidden:
            shared_layers.append(Linear(previous, width, rng=rng))
            shared_layers.append(nn.Tanh())
            shared_layers.append(Dropout(cfg.dropout, rng=rng))
            previous = width
        self.shared = Sequential(*shared_layers)
        self.latent_dim = previous

        # One head per event: z ⊕ X_n  →  [b_k, θ_{k,1..H}], sigmoid.
        head_in = self.latent_dim + num_features
        for k in range(num_events):
            head = MLP(
                head_in,
                list(cfg.head_hidden),
                cfg.horizon + 1,
                dropout=0.0,
                activation="relu",
                output_activation="sigmoid",
                rng=rng,
            )
            setattr(self, f"head{k}", head)

    # ------------------------------------------------------------------
    def heads(self) -> List[Module]:
        return [getattr(self, f"head{k}") for k in range(self.num_events)]

    def forward(self, covariates) -> Tuple[Tensor, Tensor]:
        """Forward pass.

        Parameters
        ----------
        covariates:
            (B, M, D) array or Tensor of collection-window features.

        Returns
        -------
        ``(scores, frame_scores)`` Tensors of shapes (B, K) and (B, K, H).
        """
        x = covariates if isinstance(covariates, Tensor) else Tensor(covariates)
        if x.ndim != 3:
            raise ValueError(f"expected (B, M, D) covariates, got {x.shape}")
        if x.shape[2] != self.num_features:
            raise ValueError(
                f"expected D={self.num_features} channels, got {x.shape[2]}"
            )
        last_vector = x[:, -1, :]  # X_n, the newest feature vector

        if self.encoder_kind in ("lstm", "gru"):
            encoded = self.encoder(x)
        else:
            encoded = self.encoder(x.mean(axis=1))

        z = self.shared(encoded)
        head_input = nn.concat([z, last_vector], axis=1)

        outputs = [head(head_input) for head in self.heads()]  # each (B, H+1)
        theta = nn.stack(outputs, axis=1)  # (B, K, H+1)
        scores = theta[:, :, 0]
        frame_scores = theta[:, :, 1:]
        return scores, frame_scores

    def predict(self, covariates: np.ndarray, batch_size: int = 512) -> EventHitOutput:
        """Inference pass (eval mode, no autograd), batched for memory.

        Under ``no_grad`` the LSTM encoder takes the graph-free fused
        forward (:func:`repro.nn.fused.lstm_forward_numpy`) — no backward
        closures or autograd bookkeeping are allocated, only the raw
        numpy recurrence with preallocated gate buffers.
        """
        covariates = np.asarray(covariates, dtype=np.float64)
        was_training = self.training
        self.eval()
        scores_parts, frames_parts = [], []
        try:
            with nn.no_grad():
                for lo in range(0, covariates.shape[0], batch_size):
                    s, f = self.forward(covariates[lo : lo + batch_size])
                    scores_parts.append(s.data)
                    frames_parts.append(f.data)
        finally:
            self.train(was_training)
        return EventHitOutput(
            np.concatenate(scores_parts, axis=0),
            np.concatenate(frames_parts, axis=0),
        )
