"""Minimal deep-learning substrate (numpy autograd) for the reproduction.

The paper's EventHit model is a small LSTM encoder plus per-event MLP heads
trained end-to-end; this package provides everything needed to train it
without an external DL framework:

* :mod:`repro.nn.tensor` — reverse-mode autograd ``Tensor``.
* :mod:`repro.nn.layers` — ``Module``, ``Linear``, ``Dropout``, activations,
  ``Sequential``/``MLP`` containers.
* :mod:`repro.nn.lstm` — ``LSTMCell`` / ``LSTM`` encoder.
* :mod:`repro.nn.fused` — the fused fast path: whole-sequence LSTM/BPTT
  autograd op, graph-free ``no_grad`` forwards, fused BCE/L1/L2 loss
  kernels (default on; ``REPRO_NN_FUSED=0`` restores the op-by-op graph).
* :mod:`repro.nn.optim` — ``SGD`` / ``Adam`` and gradient clipping.
* :mod:`repro.nn.losses` — the paper's L1 (existence) and L2 (interval)
  cross-entropy losses.
* :mod:`repro.nn.serialization` — ``.npz`` checkpoints.
"""

from .tensor import Tensor, concat, is_grad_enabled, no_grad, stack, where
from .fused import (
    fused_binary_cross_entropy,
    fused_enabled,
    fused_weighted_bce_sum,
    gru_forward_numpy,
    gru_step_numpy,
    lstm_forward_numpy,
    lstm_fused,
    lstm_step_numpy,
    use_fused,
)
from .layers import (
    MLP,
    Dropout,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from .lstm import LSTM, LSTMCell
from .gru import GRU, GRUCell
from .optim import Adam, Optimizer, SGD, clip_grad_norm
from .schedulers import CosineDecay, LinearWarmup, Scheduler, StepDecay, chain
from .losses import existence_loss, interval_loss, interval_weights, total_loss
from .serialization import load_module, load_state, save_module, save_state
from . import functional

__all__ = [
    "Tensor",
    "concat",
    "stack",
    "where",
    "no_grad",
    "is_grad_enabled",
    "fused_enabled",
    "use_fused",
    "lstm_fused",
    "lstm_forward_numpy",
    "lstm_step_numpy",
    "gru_forward_numpy",
    "gru_step_numpy",
    "fused_weighted_bce_sum",
    "fused_binary_cross_entropy",
    "Module",
    "Parameter",
    "Linear",
    "Dropout",
    "Sigmoid",
    "Tanh",
    "ReLU",
    "Sequential",
    "MLP",
    "LSTM",
    "LSTMCell",
    "GRU",
    "GRUCell",
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "Scheduler",
    "StepDecay",
    "CosineDecay",
    "LinearWarmup",
    "chain",
    "existence_loss",
    "interval_loss",
    "interval_weights",
    "total_loss",
    "save_module",
    "load_module",
    "save_state",
    "load_state",
    "functional",
]
