"""Learning-rate schedules for :mod:`repro.nn` optimisers.

Small LSTM models benefit from a brief warmup (stabilises the gate
statistics) and late-stage decay (settles the interval boundaries);
the EventHit trainer accepts any of these via its ``scheduler`` argument.
"""

from __future__ import annotations

import math
from typing import Optional

from .optim import Optimizer

__all__ = ["Scheduler", "StepDecay", "CosineDecay", "LinearWarmup", "chain"]


class Scheduler:
    """Base class: mutates ``optimizer.lr`` once per epoch via :meth:`step`."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def lr_at(self, epoch: int) -> float:
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch; returns the new learning rate."""
        self.epoch += 1
        new_lr = self.lr_at(self.epoch)
        if new_lr <= 0:
            raise ValueError("scheduler produced a non-positive learning rate")
        self.optimizer.lr = new_lr
        return new_lr


class StepDecay(Scheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        self.step_size = step_size
        self.gamma = gamma

    def lr_at(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineDecay(Scheduler):
    """Cosine annealing from the base rate to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 1e-5):
        super().__init__(optimizer)
        if total_epochs <= 0:
            raise ValueError("total_epochs must be positive")
        if min_lr <= 0 or min_lr > self.base_lr:
            raise ValueError("min_lr must be in (0, base_lr]")
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def lr_at(self, epoch: int) -> float:
        progress = min(epoch, self.total_epochs) / self.total_epochs
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


class LinearWarmup(Scheduler):
    """Ramp linearly from ``start_factor``·base to base over ``warmup_epochs``,
    then hand over to an optional inner scheduler."""

    def __init__(
        self,
        optimizer: Optimizer,
        warmup_epochs: int,
        start_factor: float = 0.1,
        after: Optional[Scheduler] = None,
    ):
        super().__init__(optimizer)
        if warmup_epochs <= 0:
            raise ValueError("warmup_epochs must be positive")
        if not 0.0 < start_factor <= 1.0:
            raise ValueError("start_factor must be in (0, 1]")
        if after is not None and after.optimizer is not optimizer:
            raise ValueError("inner scheduler must share the optimizer")
        self.warmup_epochs = warmup_epochs
        self.start_factor = start_factor
        self.after = after
        # Apply the warmup starting point immediately.
        optimizer.lr = self.base_lr * start_factor

    def lr_at(self, epoch: int) -> float:
        if epoch <= self.warmup_epochs:
            fraction = epoch / self.warmup_epochs
            factor = self.start_factor + (1.0 - self.start_factor) * fraction
            return self.base_lr * factor
        if self.after is not None:
            return self.after.lr_at(epoch - self.warmup_epochs)
        return self.base_lr


def chain(optimizer: Optimizer, warmup_epochs: int, total_epochs: int) -> Scheduler:
    """The standard recipe: linear warmup into cosine decay."""
    cosine = CosineDecay(optimizer, total_epochs=max(1, total_epochs - warmup_epochs))
    return LinearWarmup(optimizer, warmup_epochs=warmup_epochs, after=cosine)
