"""Loss functions for EventHit training (paper §III).

The paper trains EventHit end-to-end on the sum of two losses:

* **L1** — average cross-entropy between the per-event existence score
  ``b_k`` and the binary ground truth *"does event k occur in the time
  horizon"*, weighted per event by β_k.
* **L2** — average cross-entropy between the per-frame occurrence scores
  ``θ_{k,v}`` and the indicator *"does event k occur at offset v"*, computed
  only for records where the event occurs, with in-interval terms normalised
  by the interval length and out-of-interval terms by the complement length,
  weighted per event by γ_k.

Both are expressed here as batched tensor computations so a single backward
pass trains all event heads and the shared encoder jointly.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .functional import log_safe
from .fused import fused_enabled, fused_weighted_bce_sum
from .tensor import Tensor

__all__ = ["existence_loss", "interval_loss", "total_loss", "interval_weights"]


def existence_loss(
    scores: Tensor,
    labels: np.ndarray,
    betas: Optional[Sequence[float]] = None,
) -> Tensor:
    """Paper loss L1.

    Parameters
    ----------
    scores:
        Tensor of shape (batch, K) with occurrence scores ``b_k`` in [0, 1].
    labels:
        Array (batch, K) of {0,1}: whether event k occurs in the horizon.
    betas:
        Per-event classification-loss weights β_k; defaults to ones.

    Returns
    -------
    Scalar tensor: ``-1/|P| Σ_n Σ_k β_k CE(b_k, 1[E_k ∈ L_n])``.
    """
    labels = np.asarray(labels, dtype=np.float64)
    if labels.shape != scores.shape:
        raise ValueError(
            f"labels shape {labels.shape} != scores shape {scores.shape}"
        )
    batch, num_events = labels.shape
    beta = _event_weights(betas, num_events)
    if fused_enabled():
        return fused_weighted_bce_sum(
            scores, labels, beta.reshape(1, -1), scale=1.0 / batch
        )
    pos = Tensor(labels)
    neg = Tensor(1.0 - labels)
    per_element = -(pos * log_safe(scores) + neg * log_safe(1.0 - scores))
    weighted = per_element * Tensor(beta.reshape(1, -1))
    return weighted.sum() * (1.0 / batch)


def interval_weights(
    labels: np.ndarray, frame_targets: np.ndarray
) -> np.ndarray:
    """Per-frame normalisation weights for loss L2.

    For a record n and event k with the event present, frames inside the
    occurrence interval get weight ``1 / |interval|`` and frames outside get
    ``1 / (H - |interval|)``.  Records without the event get all-zero weight
    (L2 is gated by 1[E_k ∈ L_n]).  Degenerate cases (interval covering the
    whole horizon) zero the outside term rather than dividing by zero.

    Parameters
    ----------
    labels:
        (batch, K) existence indicators.
    frame_targets:
        (batch, K, H) indicators of event occupancy per horizon offset.

    Returns
    -------
    (batch, K, H) weights.
    """
    labels = np.asarray(labels, dtype=np.float64)
    frame_targets = np.asarray(frame_targets, dtype=np.float64)
    if frame_targets.ndim != 3:
        raise ValueError("frame_targets must be (batch, K, H)")
    if labels.shape != frame_targets.shape[:2]:
        raise ValueError("labels and frame_targets disagree on (batch, K)")
    horizon = frame_targets.shape[2]
    inside_len = frame_targets.sum(axis=2, keepdims=True)
    outside_len = horizon - inside_len
    with np.errstate(divide="ignore", invalid="ignore"):
        inside_w = np.where(inside_len > 0, 1.0 / np.maximum(inside_len, 1), 0.0)
        outside_w = np.where(outside_len > 0, 1.0 / np.maximum(outside_len, 1), 0.0)
    weights = frame_targets * inside_w + (1.0 - frame_targets) * outside_w
    return weights * labels[:, :, None]


def interval_loss(
    frame_scores: Tensor,
    labels: np.ndarray,
    frame_targets: np.ndarray,
    gammas: Optional[Sequence[float]] = None,
) -> Tensor:
    """Paper loss L2.

    Parameters
    ----------
    frame_scores:
        Tensor (batch, K, H) of per-frame occurrence scores θ_{k,v}.
    labels:
        (batch, K) existence indicators (gates the loss).
    frame_targets:
        (batch, K, H) per-frame occupancy indicators.
    gammas:
        Per-event occurrence-loss weights γ_k; defaults to ones.
    """
    frame_targets = np.asarray(frame_targets, dtype=np.float64)
    if frame_targets.shape != frame_scores.shape:
        raise ValueError(
            f"frame_targets shape {frame_targets.shape} != scores shape "
            f"{frame_scores.shape}"
        )
    batch, num_events, _ = frame_targets.shape
    gamma = _event_weights(gammas, num_events)
    weights = interval_weights(labels, frame_targets)
    if fused_enabled():
        return fused_weighted_bce_sum(
            frame_scores,
            frame_targets,
            weights * gamma.reshape(1, -1, 1),
            scale=1.0 / batch,
        )
    pos = Tensor(frame_targets)
    neg = Tensor(1.0 - frame_targets)
    per_frame = -(pos * log_safe(frame_scores) + neg * log_safe(1.0 - frame_scores))
    weighted = per_frame * Tensor(weights) * Tensor(gamma.reshape(1, -1, 1))
    return weighted.sum() * (1.0 / batch)


def total_loss(
    scores: Tensor,
    frame_scores: Tensor,
    labels: np.ndarray,
    frame_targets: np.ndarray,
    betas: Optional[Sequence[float]] = None,
    gammas: Optional[Sequence[float]] = None,
) -> Tensor:
    """``L_total = L1 + L2`` as in paper §III.

    With the fused fast path enabled (the default) each term lowers to one
    :func:`repro.nn.fused.fused_weighted_bce_sum` kernel — a raw-numpy
    forward plus a single analytic backward closure — instead of the
    ~10-node ``log_safe``/mul/sum autograd chains.
    """
    return existence_loss(scores, labels, betas) + interval_loss(
        frame_scores, labels, frame_targets, gammas
    )


def _event_weights(weights: Optional[Sequence[float]], count: int) -> np.ndarray:
    if weights is None:
        return np.ones(count)
    arr = np.asarray(weights, dtype=np.float64)
    if arr.shape != (count,):
        raise ValueError(f"expected {count} event weights, got shape {arr.shape}")
    if (arr < 0).any():
        raise ValueError("event weights must be non-negative")
    return arr
