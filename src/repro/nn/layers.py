"""Neural network layers built on the autograd :class:`~repro.nn.tensor.Tensor`.

The layer taxonomy intentionally mirrors the small subset of torch.nn the
paper's EventHit architecture needs: ``Linear`` (fully connected), ``Dropout``,
elementwise activations, and ``Sequential`` containers.  Every layer derives
from :class:`Module`, which provides parameter traversal, train/eval mode
switching, and state-dict (de)serialisation.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from . import functional as F
from . import init
from .tensor import Tensor

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "Dropout",
    "Sigmoid",
    "Tanh",
    "ReLU",
    "Sequential",
    "MLP",
]


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as trainable by :class:`Module`."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class providing parameter registration and mode switching."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------
    # Registration: attribute assignment auto-registers parameters/modules.
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        """All trainable parameters of this module and its children."""
        params = list(self._parameters.values())
        for child in self._modules.values():
            params.extend(child.parameters())
        return params

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix + child_name + ".")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Mode and gradient management
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # State dict
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: expected {param.data.shape}, "
                    f"got {value.shape}"
                )
            param.data = value.copy()

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Linear(Module):
    """Fully connected layer: ``y = x @ W + b`` with W of shape (in, out)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform(in_features, out_features, rng))
        self.bias = Parameter(init.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"expected input with last dim {self.in_features}, got {x.shape}"
            )
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features})"


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, self._rng)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self._layers: List[Module] = []
        for index, layer in enumerate(layers):
            setattr(self, f"layer{index}", layer)
            self._layers.append(layer)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self._layers)

    def __getitem__(self, index: int) -> Module:
        return self._layers[index]


class MLP(Module):
    """Multi-layer perceptron with configurable hidden sizes and dropout.

    This is the building block of EventHit's event-specific sub-networks
    (fully connected layers with independent weights, sigmoid output).
    """

    def __init__(
        self,
        in_features: int,
        hidden_sizes: Sequence[int],
        out_features: int,
        dropout: float = 0.0,
        activation: str = "relu",
        output_activation: Optional[str] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        activations = {"relu": ReLU, "tanh": Tanh, "sigmoid": Sigmoid}
        if activation not in activations:
            raise ValueError(f"unknown activation {activation!r}")
        layers: List[Module] = []
        previous = in_features
        for width in hidden_sizes:
            layers.append(Linear(previous, width, rng=rng))
            layers.append(activations[activation]())
            if dropout > 0.0:
                layers.append(Dropout(dropout, rng=rng))
            previous = width
        layers.append(Linear(previous, out_features, rng=rng))
        if output_activation is not None:
            if output_activation not in activations:
                raise ValueError(f"unknown output activation {output_activation!r}")
            layers.append(activations[output_activation]())
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)
