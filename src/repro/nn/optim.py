"""First-order optimisers for :mod:`repro.nn` parameters.

EventHit is trained with Adam in our reproduction (the paper does not name
its optimiser; Adam is the standard choice for small LSTM models and is what
the DeepHit lineage the paper cites uses).  SGD with momentum is provided for
ablations and tests.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from .layers import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in-place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm, mirroring the torch utility.  LSTMs are
    prone to occasional exploding gradients; the EventHit trainer clips at a
    configurable norm every step.
    """
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total


class Optimizer:
    """Base optimiser holding a parameter list."""

    def __init__(self, parameters: Iterable[Parameter]):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.lr = lr
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        correction1 = 1.0 - b1**self._t
        correction2 = 1.0 - b2**self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= b1
            m += (1.0 - b1) * grad
            v *= b2
            v += (1.0 - b2) * grad**2
            m_hat = m / correction1
            v_hat = v / correction2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
