"""First-order optimisers for :mod:`repro.nn` parameters.

EventHit is trained with Adam in our reproduction (the paper does not name
its optimiser; Adam is the standard choice for small LSTM models and is what
the DeepHit lineage the paper cites uses).  SGD with momentum is provided for
ablations and tests.

Both optimisers are part of the fused training fast path: ``step()`` updates
moments and parameters strictly in place through a single preallocated
scratch buffer per parameter (no per-step temporaries in the default
no-weight-decay configuration), and ``zero_grad()`` is lazy — it drops
gradients to ``None`` instead of zero-filling, so parameters untouched by a
backward pass cost nothing in ``step()``.  Because a silently skipped
``None`` gradient is also how a lazy-zero_grad regression would hide,
``step()`` counts skips into the ``train.params_skipped`` observability
counter.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from ..obs import inc
from .layers import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in-place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm, mirroring the torch utility.  LSTMs are
    prone to occasional exploding gradients; the EventHit trainer clips at a
    configurable norm every step.  ``max_norm`` is validated *before* any
    norm computation, and the reduction short-circuits when no parameter
    carries a gradient (the common lazy-``zero_grad`` case for frozen
    sub-networks).
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    params = [p for p in parameters if p.grad is not None]
    if not params:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total


class Optimizer:
    """Base optimiser holding a parameter list."""

    def __init__(self, parameters: Iterable[Parameter]):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    @staticmethod
    def _count_skipped(skipped: int) -> None:
        """Publish silently skipped ``None``-grad parameters.

        Lazy ``zero_grad`` makes a missing gradient legal; the
        ``train.params_skipped`` counter keeps an unexpected regression
        (e.g. a backward pass that stopped reaching the encoder) visible
        in the metrics registry instead of silently freezing weights.
        """
        if skipped:
            inc("train.params_skipped", skipped)


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        skipped = 0
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                skipped += 1
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.data -= self.lr * grad
        self._count_skipped(skipped)


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction.

    ``step()`` is fully in place: per parameter it reuses one preallocated
    scratch buffer for every intermediate (the ``(1-β)·g`` terms, ``g²``,
    and the ``√v̂ + ε`` denominator), so the hot training loop performs no
    per-step array allocation.  The update folds the bias corrections into
    scalar factors — ``p ← p − (lr/c₁) · m / (√(v/c₂) + ε)`` — which is
    algebraically identical to the textbook form.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.lr = lr
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._scratch = [np.empty_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        correction1 = 1.0 - b1**self._t
        correction2 = 1.0 - b2**self._t
        step_scale = self.lr / correction1
        skipped = 0
        for p, m, v, buf in zip(self.parameters, self._m, self._v, self._scratch):
            if p.grad is None:
                skipped += 1
                continue
            grad = p.grad
            if self.weight_decay:
                # Decay needs grad twice while ``buf`` is busy, so this
                # (ablation-only) branch pays one temporary.
                grad = grad + self.weight_decay * p.data
            np.multiply(grad, 1.0 - b1, out=buf)
            m *= b1
            m += buf
            np.multiply(grad, grad, out=buf)
            buf *= 1.0 - b2
            v *= b2
            v += buf
            np.divide(v, correction2, out=buf)
            np.sqrt(buf, out=buf)
            buf += self.eps
            np.divide(m, buf, out=buf)
            buf *= step_scale
            p.data -= buf
        self._count_skipped(skipped)
