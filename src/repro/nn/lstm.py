"""LSTM encoder used by EventHit's shared sub-network (paper §III, Fig. 3).

The paper: *"It first utilizes a Long Short Term Memory (LSTM) encoder that is
suitable for modeling temporal relationships in the video stream across
frames.  The LSTM encoder processes the feature vectors in sequence, updating
corresponding hidden states at each time-step: h_m = LSTM(h_{m-1}, X_m)."*

We implement a single fused-gate LSTM cell and a sequence wrapper that
returns either the full hidden-state sequence or only the final hidden state
``h_n`` (the quantity consumed by the fully connected layers).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from . import init
from .fused import fused_enabled, lstm_fused
from .layers import Module, Parameter
from .tensor import Tensor, concat

__all__ = ["LSTMCell", "LSTM"]


class LSTMCell(Module):
    """A single LSTM step with fused gate weights.

    Gate layout along the last axis of the fused projection is
    ``[input, forget, cell, output]``, matching the standard formulation:

    .. math::
        i, f, g, o &= \\mathrm{split}(x W_x + h W_h + b) \\\\
        c' &= \\sigma(f + b_f) \\odot c + \\sigma(i) \\odot \\tanh(g) \\\\
        h' &= \\sigma(o) \\odot \\tanh(c')

    A unit forget-gate bias is applied at initialisation, the usual trick to
    keep long-range gradients alive early in training.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("input_size and hidden_size must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_x = Parameter(
            init.xavier_uniform(input_size, 4 * hidden_size, rng)
        )
        self.weight_h = Parameter(
            np.concatenate(
                [init.orthogonal(hidden_size, hidden_size, rng) for _ in range(4)],
                axis=1,
            )
        )
        bias = init.zeros(4 * hidden_size)
        bias[hidden_size : 2 * hidden_size] = 1.0  # forget-gate bias
        self.bias = Parameter(bias)

    def forward(
        self, x: Tensor, state: Tuple[Tensor, Tensor]
    ) -> Tuple[Tensor, Tensor]:
        """Advance one time-step.

        Parameters
        ----------
        x:
            Input of shape (batch, input_size).
        state:
            Tuple ``(h, c)`` each of shape (batch, hidden_size).

        Returns
        -------
        The new ``(h, c)`` state.
        """
        h_prev, c_prev = state
        gates = x @ self.weight_x + h_prev @ self.weight_h + self.bias
        hs = self.hidden_size
        i = gates[:, 0 * hs : 1 * hs].sigmoid()
        f = gates[:, 1 * hs : 2 * hs].sigmoid()
        g = gates[:, 2 * hs : 3 * hs].tanh()
        o = gates[:, 3 * hs : 4 * hs].sigmoid()
        c = f * c_prev + i * g
        h = o * c.tanh()
        return h, c

    def initial_state(self, batch_size: int) -> Tuple[Tensor, Tensor]:
        zeros = np.zeros((batch_size, self.hidden_size))
        return Tensor(zeros), Tensor(zeros.copy())

    def step_numpy(
        self, x: np.ndarray, h: np.ndarray, c: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Graph-free single step in the canonical ``[i, f, g, o]`` layout.

        The stateful reference for the continual engine: the engine steps
        on permuted/pre-doubled weight caches for speed, and the
        equivalence tests check it against this plain-formula step (which
        mirrors :meth:`forward` without touching the autograd graph).
        Inputs are ``(batch, input_size)`` / ``(batch, hidden_size)``
        arrays; returns the new ``(h, c)``.
        """
        gates = x @ self.weight_x.data + h @ self.weight_h.data + self.bias.data
        hs = self.hidden_size
        i = 1.0 / (1.0 + np.exp(-gates[:, 0 * hs : 1 * hs]))
        f = 1.0 / (1.0 + np.exp(-gates[:, 1 * hs : 2 * hs]))
        g = np.tanh(gates[:, 2 * hs : 3 * hs])
        o = 1.0 / (1.0 + np.exp(-gates[:, 3 * hs : 4 * hs]))
        c_new = f * c + i * g
        return o * np.tanh(c_new), c_new


class LSTM(Module):
    """Run an :class:`LSTMCell` over a (batch, time, feature) sequence."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)
        self.input_size = input_size
        self.hidden_size = hidden_size

    def forward(
        self,
        sequence: Tensor,
        state: Optional[Tuple[Tensor, Tensor]] = None,
        return_sequence: bool = False,
    ):
        """Encode a batched sequence.

        Parameters
        ----------
        sequence:
            Tensor of shape (batch, time, input_size).
        state:
            Optional initial ``(h, c)``; zeros when omitted.
        return_sequence:
            When true, additionally return the list of per-step hidden states.

        Returns
        -------
        ``h_n`` of shape (batch, hidden_size), or ``(h_n, [h_1..h_n])`` when
        ``return_sequence`` is set.

        Notes
        -----
        The default execution path is :func:`repro.nn.fused.lstm_fused` —
        one autograd node for the whole sequence with a hand-derived BPTT
        backward.  ``REPRO_NN_FUSED=0`` (or ``return_sequence=True``, which
        needs per-step graph outputs) falls back to the op-by-op reference
        loop below, which is kept as the ground truth for the fused-vs-
        reference equivalence tests.
        """
        if sequence.ndim != 3:
            raise ValueError(
                f"expected (batch, time, features) input, got shape {sequence.shape}"
            )
        batch, steps, features = sequence.shape
        if features != self.input_size:
            raise ValueError(
                f"expected feature dim {self.input_size}, got {features}"
            )
        if steps == 0:
            raise ValueError("cannot encode an empty sequence")
        if fused_enabled() and not return_sequence:
            cell = self.cell
            h0, c0 = state if state is not None else (None, None)
            return lstm_fused(
                sequence, cell.weight_x, cell.weight_h, cell.bias, h0, c0
            )
        if state is None:
            state = self.cell.initial_state(batch)
        outputs: List[Tensor] = []
        for t in range(steps):  # reference-loop: op-by-op autograd ground truth
            x_t = sequence[:, t, :]
            state = self.cell(x_t, state)
            if return_sequence:
                outputs.append(state[0])
        if return_sequence:
            return state[0], outputs
        return state[0]
