"""Weight initialisation schemes for :mod:`repro.nn` layers."""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "orthogonal", "zeros", "uniform"]


def xavier_uniform(
    fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a (fan_in, fan_out) matrix."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def xavier_normal(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier normal initialisation for a (fan_in, fan_out) matrix."""
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=(fan_in, fan_out))


def orthogonal(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Orthogonal initialisation — the usual choice for recurrent weights."""
    raw = rng.normal(size=(max(fan_in, fan_out), min(fan_in, fan_out)))
    q, _ = np.linalg.qr(raw)
    q = q[:fan_in, :fan_out] if q.shape[0] >= fan_in else q.T[:fan_in, :fan_out]
    return np.ascontiguousarray(q)


def zeros(*shape: int) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def uniform(low: float, high: float, shape, rng: np.random.Generator) -> np.ndarray:
    return rng.uniform(low, high, size=shape)
