"""Save/load helpers for :class:`repro.nn.layers.Module` state.

Checkpoints are plain ``.npz`` archives keyed by parameter path, so they are
portable, inspectable with numpy alone, and safe to load (no pickle).
"""

from __future__ import annotations

import os
from typing import Dict, Union

import numpy as np

from .layers import Module

__all__ = ["save_module", "load_module", "save_state", "load_state"]

PathLike = Union[str, os.PathLike]


def save_state(state: Dict[str, np.ndarray], path: PathLike) -> None:
    """Write a parameter-name → array mapping to an ``.npz`` archive."""
    np.savez(path, **state)


def load_state(path: PathLike) -> Dict[str, np.ndarray]:
    """Read a state dict previously written by :func:`save_state`."""
    with np.load(path) as archive:
        return {name: archive[name] for name in archive.files}


def save_module(module: Module, path: PathLike) -> None:
    """Serialise a module's parameters to ``path`` (``.npz``)."""
    save_state(module.state_dict(), path)


def load_module(module: Module, path: PathLike) -> Module:
    """Load parameters into ``module`` in place and return it."""
    module.load_state_dict(load_state(path))
    return module
