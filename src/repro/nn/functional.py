"""Functional wrappers over :class:`repro.nn.tensor.Tensor` operations.

These mirror the ``torch.nn.functional`` convention: stateless functions that
operate on tensors.  Layers in :mod:`repro.nn.layers` delegate here.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .fused import fused_binary_cross_entropy, fused_enabled
from .tensor import Tensor, _ensure_tensor, concat, is_grad_enabled, stack, where

__all__ = [
    "sigmoid",
    "tanh",
    "relu",
    "linear",
    "dropout",
    "binary_cross_entropy",
    "log_safe",
    "softplus",
    "concat",
    "stack",
    "where",
]

_EPS = 1e-12


def sigmoid(x: Tensor) -> Tensor:
    return _ensure_tensor(x).sigmoid()


def tanh(x: Tensor) -> Tensor:
    return _ensure_tensor(x).tanh()


def relu(x: Tensor) -> Tensor:
    return _ensure_tensor(x).relu()


def softplus(x: Tensor) -> Tensor:
    """Numerically stable ``log(1 + exp(x))``.

    Used by the point-process baseline to keep intensities positive.
    """
    x = _ensure_tensor(x)
    # softplus(x) = max(x, 0) + log1p(exp(-|x|)); we build it from primitives
    # so gradients flow through the autograd graph.
    pos = x.relu()
    neg_abs = -(x.relu() + (-x).relu())
    return pos + (neg_abs.exp() + 1.0).log()


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight + bias`` with ``weight`` of shape (in, out)."""
    out = x @ weight
    if bias is not None:
        out = out + bias
    return out


def dropout(
    x: Tensor,
    p: float,
    training: bool,
    rng: Optional[np.random.Generator] = None,
) -> Tensor:
    """Inverted dropout: identity at eval time, rescaled mask when training."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    rng = rng if rng is not None else np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(np.float64) / (1.0 - p)
    return x * Tensor(mask)


def log_safe(x: Tensor) -> Tensor:
    """``log(max(x, eps))`` to keep BCE finite for saturated sigmoids."""
    return x.clip(_EPS, 1.0).log()


def binary_cross_entropy(
    prediction: Tensor,
    target: np.ndarray,
    weight: Optional[np.ndarray] = None,
    reduction: str = "mean",
) -> Tensor:
    """Elementwise BCE between probabilities and {0,1} targets.

    Parameters
    ----------
    prediction:
        Probabilities in [0, 1] (e.g. sigmoid outputs).
    target:
        Array of the same shape with values in {0, 1}.
    weight:
        Optional per-element weights (broadcastable).
    reduction:
        One of ``"mean"``, ``"sum"`` or ``"none"``.
    """
    target = np.asarray(target, dtype=np.float64)
    if target.shape != prediction.shape:
        raise ValueError(
            f"target shape {target.shape} != prediction shape {prediction.shape}"
        )
    if reduction not in ("mean", "sum", "none"):
        raise ValueError(f"unknown reduction {reduction!r}")
    if fused_enabled():
        return fused_binary_cross_entropy(
            _ensure_tensor(prediction), target, weight, reduction
        )
    pos = Tensor(target)
    neg = Tensor(1.0 - target)
    loss = -(pos * log_safe(prediction) + neg * log_safe(1.0 - prediction))
    if weight is not None:
        loss = loss * Tensor(np.asarray(weight, dtype=np.float64))
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    if reduction == "none":
        return loss
    raise ValueError(f"unknown reduction {reduction!r}")
