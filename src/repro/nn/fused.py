"""Fused fast path for the ``repro.nn`` training and inference hot loop.

The op-by-op LSTM in :mod:`repro.nn.lstm` records ~10 autograd nodes *per
timestep* (slice, two matmuls, four activations, two muls, one add), so a
40-frame collection window allocates hundreds of backward closures and
temporaries per sample per training step.  Continual Inference (Hedegaard &
Iosifidis, 2022) and Event Neural Networks (Dutson et al., 2022) both show
that restructuring recurrent computation to reuse state and skip redundant
per-step bookkeeping yields order-of-magnitude wins; this module applies the
same idea to the autograd graph itself:

* :func:`lstm_fused` — one custom autograd op for the whole
  ``(batch, time, features)`` sequence.  The forward pre-projects the input
  for all timesteps in a single GEMM, runs the recurrence with preallocated
  gate/activation workspaces, and registers **one** backward closure that
  performs hand-derived backpropagation-through-time (two batched GEMMs for
  the weight gradients instead of ``2·T`` graph nodes).
* :func:`lstm_forward_numpy` / :func:`gru_forward_numpy` — graph-free
  numpy forwards shared by the ``no_grad`` inference paths
  (``EventHit.predict``, ``Trainer.evaluate_loss``) and by
  :class:`repro.core.batched.BatchedInference` (which injects its
  row-stable matmul to keep batch-size invariance).
* :func:`fused_weighted_bce_sum` / :func:`fused_binary_cross_entropy` —
  the paper's L1/L2 cross-entropy kernels computed in raw numpy with a
  single backward closure, replacing the ~10-node ``log_safe``/mul/sum
  chains in :mod:`repro.nn.losses` and :mod:`repro.nn.functional`.

The fused path is the default.  ``REPRO_NN_FUSED=0`` (or the
:class:`use_fused` context manager) restores the op-by-op reference graph;
``tests/nn/test_fused.py`` pins that both paths agree to ≤1e-10 on outputs
and gradients across shapes and seeds, that the fused op passes
finite-difference gradcheck, and that a full ``train_eventhit`` run follows
the same loss trajectory either way.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

import numpy as np

from .tensor import Tensor, is_grad_enabled

__all__ = [
    "fused_enabled",
    "use_fused",
    "lstm_fused",
    "lstm_forward_numpy",
    "lstm_step_numpy",
    "gru_forward_numpy",
    "gru_step_numpy",
    "fused_weighted_bce_sum",
    "fused_binary_cross_entropy",
]

_EPS = 1e-12  # matches functional.log_safe's clip floor

#: Session override for the REPRO_NN_FUSED switch (None = read the env).
_OVERRIDE: Optional[bool] = None


def fused_enabled() -> bool:
    """Whether the fused fast path is active.

    Defaults to on; set ``REPRO_NN_FUSED=0`` to restore the op-by-op
    reference graph (the escape hatch used by the equivalence tests and
    available for debugging suspect gradients in the field).
    """
    if _OVERRIDE is not None:
        return _OVERRIDE
    return os.environ.get("REPRO_NN_FUSED", "1") != "0"


class use_fused:
    """Context manager pinning the fused switch regardless of the env."""

    def __init__(self, enabled: bool):
        self._enabled = bool(enabled)

    def __enter__(self) -> "use_fused":
        global _OVERRIDE
        self._prev = _OVERRIDE
        _OVERRIDE = self._enabled
        return self

    def __exit__(self, *exc) -> None:
        global _OVERRIDE
        _OVERRIDE = self._prev


# ----------------------------------------------------------------------
# Elementwise helpers (in-place, same formulas as Tensor.sigmoid/tanh)
# ----------------------------------------------------------------------
def _sigmoid_inplace(x: np.ndarray) -> np.ndarray:
    """``1 / (1 + exp(-x))`` computed in place, bitwise-matching
    ``Tensor.sigmoid``'s formula."""
    np.negative(x, out=x)
    np.exp(x, out=x)
    x += 1.0
    np.reciprocal(x, out=x)
    return x


def _activate_gates_inplace(gates: np.ndarray, hidden: int) -> np.ndarray:
    """Apply [σ, σ, σ, tanh] to ``[o, i, f]``+``[g]`` ordered pre-activations.

    The sigmoid runs over the full contiguous ``(B, 4H)`` row — a strided
    3H sub-block costs ~3× as much per element because the split rows
    defeat SIMD — and the candidate gate is recovered from the identity
    ``tanh(x) = 2σ(2x) − 1`` with two cheap fix-up passes on its block
    (equal to ``np.tanh`` within float rounding).  The caller pre-scales
    the candidate gate's weight columns by 2 (exact: a power-of-two scale
    only bumps exponents), so the block arrives holding ``2x`` already.
    """
    g = gates[:, 3 * hidden :]
    _sigmoid_inplace(gates)
    g *= 2.0
    g -= 1.0
    return gates


def _gate_permutation(hidden: int) -> np.ndarray:
    """Column permutation mapping ``[i, f, g, o]`` weights to ``[o, i, f, g]``.

    Putting the output gate first keeps the three σ gates contiguous for
    the forward activation *and* groups the three gate gradients that scale
    with ``dc`` (input, forget, candidate) into one contiguous block the
    backward pass can fill with a single broadcast multiply.
    """
    return np.concatenate(
        [
            np.arange(3 * hidden, 4 * hidden),
            np.arange(0, 2 * hidden),
            np.arange(2 * hidden, 3 * hidden),
        ]
    )


class _Workspaces:
    """Per-shape free-list of float64 scratch buffers for the fused kernels.

    A fused BPTT step needs several multi-megabyte workspaces (saved
    activations, cell states, gate gradients).  Fresh ``np.empty`` blocks
    of that size are mmap'd and returned to the OS on free, so allocating
    them anew every step pays first-touch page faults for the whole
    workspace — measured at ~30% of the fused step cost at paper scale.
    Checking buffers out by shape and returning them when the backward
    closure finishes keeps the same pages hot across training steps.

    Contents are never assumed zeroed.  The pool is not thread-safe (the
    training loop, like the rest of ``repro.nn``, is single-threaded);
    buffers that are never returned (e.g. a forward whose graph is
    discarded without backward) are simply garbage-collected.
    """

    def __init__(self, max_bytes: int = 64 << 20):
        self._pool: dict = {}
        self._bytes = 0
        self.max_bytes = max_bytes

    def take(self, *shape: int) -> np.ndarray:
        stack = self._pool.get(shape)
        if stack:
            arr = stack.pop()
            self._bytes -= arr.nbytes
            return arr
        return np.empty(shape)

    def give(self, *arrays: np.ndarray) -> None:
        for arr in arrays:
            if self._bytes + arr.nbytes > self.max_bytes:
                continue
            self._pool.setdefault(arr.shape, []).append(arr)
            self._bytes += arr.nbytes


_workspaces = _Workspaces()


def _check_lstm_shapes(
    x: np.ndarray, weight_x: np.ndarray, weight_h: np.ndarray, bias: np.ndarray
) -> Tuple[int, int, int, int]:
    if x.ndim != 3:
        raise ValueError(f"expected (batch, time, features) input, got shape {x.shape}")
    batch, steps, features = x.shape
    if steps == 0:
        raise ValueError("cannot encode an empty sequence")
    hidden = weight_h.shape[0]
    if weight_x.shape != (features, 4 * hidden):
        raise ValueError(
            f"weight_x shape {weight_x.shape} incompatible with input "
            f"features {features} and hidden size {hidden}"
        )
    if weight_h.shape != (hidden, 4 * hidden):
        raise ValueError(f"weight_h must be (H, 4H), got {weight_h.shape}")
    if bias.shape != (4 * hidden,):
        raise ValueError(f"bias must be (4H,), got {bias.shape}")
    return batch, steps, features, hidden


# ----------------------------------------------------------------------
# Graph-free numpy forwards (no_grad inference path)
# ----------------------------------------------------------------------
def lstm_forward_numpy(
    x: np.ndarray,
    weight_x: np.ndarray,
    weight_h: np.ndarray,
    bias: np.ndarray,
    h0: Optional[np.ndarray] = None,
    c0: Optional[np.ndarray] = None,
    matmul=None,
    return_state: bool = False,
) -> np.ndarray:
    """Run the whole LSTM sequence in raw numpy; returns ``h_T`` (B, H).

    The input projection for every timestep is hoisted into one matrix
    product; the recurrence reuses preallocated gate/state buffers, so the
    per-step cost is a single ``(B, H) @ (H, 4H)`` product plus elementwise
    work.  ``matmul`` lets :class:`~repro.core.batched.BatchedInference`
    inject its row-stable contraction (it must accept the 3-D input
    projection as well); the default uses BLAS.

    ``return_state`` returns the full ``(h_T, c_T)`` state instead of just
    ``h_T`` — the warm-up path of the continual engine, which must resume
    the recurrence from exactly where a windowed forward would have left
    it (:func:`lstm_step_numpy` continues bitwise from this state).
    """
    batch, steps, features, hidden = _check_lstm_shapes(x, weight_x, weight_h, bias)
    # Permute gate columns [i, f, g, o] → [o, i, f, g] once per call so the
    # three sigmoid gates activate in a single contiguous ufunc pass.  Each
    # output column only depends on its own weight column, so the permuted
    # computation is bitwise identical element-for-element (this also keeps
    # the injected row-stable matmul's per-element contraction order intact).
    perm = _gate_permutation(hidden)
    wx_p = weight_x[:, perm]
    wh_p = weight_h[:, perm]
    b_p = bias[perm]
    # Pre-double the candidate gate (tanh via 2σ(2x) − 1); ×2 is exact.
    wx_p[:, 3 * hidden :] *= 2.0
    wh_p[:, 3 * hidden :] *= 2.0
    b_p[3 * hidden :] *= 2.0
    pooled = None
    if matmul is None:
        # Time-major pooled projection: per-step slices are contiguous.
        pooled = _workspaces.take(steps, batch, features)
        np.copyto(pooled, x.transpose(1, 0, 2))
        xw = _workspaces.take(steps, batch, 4 * hidden)
        np.matmul(
            pooled.reshape(steps * batch, features),
            wx_p,
            out=xw.reshape(steps * batch, 4 * hidden),
        )
    else:
        xw = matmul(x, wx_p).transpose(1, 0, 2)
    xw += b_p

    h = np.array(h0, dtype=np.float64) if h0 is not None else np.zeros((batch, hidden))
    c = np.array(c0, dtype=np.float64) if c0 is not None else np.zeros((batch, hidden))
    gates = np.empty((batch, 4 * hidden))
    tanh_c = np.empty((batch, hidden))
    tmp = np.empty((batch, hidden))
    for t in range(steps):
        if matmul is None:
            np.matmul(h, wh_p, out=gates)
        else:
            gates = matmul(h, wh_p)
        gates += xw[t]
        _activate_gates_inplace(gates, hidden)
        c *= gates[:, 2 * hidden : 3 * hidden]  # f ⊙ c_prev
        np.multiply(
            gates[:, hidden : 2 * hidden], gates[:, 3 * hidden :], out=tmp
        )  # i ⊙ g
        c += tmp
        np.tanh(c, out=tanh_c)
        np.multiply(gates[:, :hidden], tanh_c, out=h)  # o ⊙ tanh(c)
    if pooled is not None:
        _workspaces.give(pooled, xw)
    if return_state:
        return h, c
    return h


def lstm_step_numpy(
    frame: np.ndarray,
    h: np.ndarray,
    c: np.ndarray,
    wx_p: np.ndarray,
    wh_p: np.ndarray,
    b_p: np.ndarray,
    matmul=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """One stateful LSTM step on *prepared* weights; updates ``h, c`` in place.

    ``wx_p`` / ``wh_p`` / ``b_p`` are the permuted (``[o, i, f, g]``) and
    candidate-pre-doubled copies that :func:`lstm_forward_numpy` builds
    once per call — callers that step every tick (the continual engine)
    cache them once per model bind instead.  The op sequence mirrors the
    sequence forward's inner loop exactly, so stepping frames one at a
    time is **bitwise identical** to running the whole window through
    :func:`lstm_forward_numpy` from the same initial state (with the same
    ``matmul``); ``tests/core/test_continual.py`` pins this.
    """
    mm = np.matmul if matmul is None else matmul
    xw = mm(frame, wx_p)
    xw += b_p
    gates = mm(h, wh_p)
    gates += xw
    hidden = h.shape[1]
    _activate_gates_inplace(gates, hidden)
    c *= gates[:, 2 * hidden : 3 * hidden]  # f ⊙ c_prev
    c += gates[:, hidden : 2 * hidden] * gates[:, 3 * hidden :]  # i ⊙ g
    tanh_c = np.tanh(c)
    np.multiply(gates[:, :hidden], tanh_c, out=h)  # o ⊙ tanh(c)
    return h, c


def gru_forward_numpy(
    x: np.ndarray,
    weight_x_gates: np.ndarray,
    weight_h_gates: np.ndarray,
    bias_gates: np.ndarray,
    weight_x_cand: np.ndarray,
    weight_h_cand: np.ndarray,
    bias_cand: np.ndarray,
    h0: Optional[np.ndarray] = None,
    matmul=None,
) -> np.ndarray:
    """Graph-free GRU sequence forward; returns ``h_T`` (B, H).

    Mirrors :class:`repro.nn.gru.GRUCell`'s math with the gate and
    candidate input projections hoisted out of the time loop.  Shared by
    the ``no_grad`` GRU path and the batched inference engine.
    """
    if x.ndim != 3:
        raise ValueError(f"expected (batch, time, features) input, got shape {x.shape}")
    batch, steps, features = x.shape
    if steps == 0:
        raise ValueError("cannot encode an empty sequence")
    hidden = weight_h_cand.shape[0]
    if matmul is None:
        flat = x.reshape(batch * steps, features)
        xg = (flat @ weight_x_gates).reshape(batch, steps, 2 * hidden)
        xc = (flat @ weight_x_cand).reshape(batch, steps, hidden)
        mm = np.matmul
    else:
        xg = matmul(x, weight_x_gates)
        xc = matmul(x, weight_x_cand)
        mm = matmul
    xg += bias_gates
    xc += bias_cand

    h = np.array(h0, dtype=np.float64) if h0 is not None else np.zeros((batch, hidden))
    for t in range(steps):
        gates = mm(h, weight_h_gates)
        gates += xg[:, t]
        _sigmoid_inplace(gates)
        r = gates[:, :hidden]
        z = gates[:, hidden:]
        candidate = mm(r * h, weight_h_cand)
        candidate += xc[:, t]
        np.tanh(candidate, out=candidate)
        h = (1.0 - z) * candidate + z * h
    return h


def gru_step_numpy(
    frame: np.ndarray,
    h: np.ndarray,
    weight_x_gates: np.ndarray,
    weight_h_gates: np.ndarray,
    bias_gates: np.ndarray,
    weight_x_cand: np.ndarray,
    weight_h_cand: np.ndarray,
    bias_cand: np.ndarray,
    matmul=None,
) -> np.ndarray:
    """One stateful GRU step; returns the new hidden state ``(B, H)``.

    Same op sequence as :func:`gru_forward_numpy`'s inner loop, so
    stepping frame by frame from a saved state is bitwise identical to the
    whole-window forward (the GRU's full recurrent state is ``h`` alone).
    """
    mm = np.matmul if matmul is None else matmul
    xg = mm(frame, weight_x_gates)
    xg += bias_gates
    xc = mm(frame, weight_x_cand)
    xc += bias_cand
    gates = mm(h, weight_h_gates)
    gates += xg
    _sigmoid_inplace(gates)
    hidden = h.shape[1]
    r = gates[:, :hidden]
    z = gates[:, hidden:]
    candidate = mm(r * h, weight_h_cand)
    candidate += xc
    np.tanh(candidate, out=candidate)
    return (1.0 - z) * candidate + z * h


# ----------------------------------------------------------------------
# The fused LSTM autograd op
# ----------------------------------------------------------------------
def lstm_fused(
    sequence: Tensor,
    weight_x: Tensor,
    weight_h: Tensor,
    bias: Tensor,
    h0: Optional[Tensor] = None,
    c0: Optional[Tensor] = None,
) -> Tensor:
    """Whole-sequence LSTM forward with a single hand-derived BPTT closure.

    Equivalent to running :class:`repro.nn.lstm.LSTMCell` over every
    timestep (gate layout ``[input, forget, cell, output]``) but recorded
    as **one** node in the autograd graph.  The backward pass walks the
    saved activations in reverse, propagating ``dh``/``dc`` with one GEMM
    per step, then recovers the weight gradients with two batched GEMMs
    over the stacked per-step gate gradients:

    .. math::
        \\partial W_x = X^\\top \\, \\partial A, \\qquad
        \\partial W_h = H_{prev}^\\top \\, \\partial A, \\qquad
        \\partial b = \\textstyle\\sum \\partial A

    When gradients are disabled (or nothing requires grad) the op takes the
    lean :func:`lstm_forward_numpy` route and saves no workspaces at all.
    """
    seq = sequence if isinstance(sequence, Tensor) else Tensor(sequence)
    x = seq.data
    wx, wh, b = weight_x.data, weight_h.data, bias.data
    batch, steps, features, hidden = _check_lstm_shapes(x, wx, wh, b)

    parents = [seq, weight_x, weight_h, bias]
    h_init = h0.data if h0 is not None else None
    c_init = c0.data if c0 is not None else None
    if h0 is not None:
        parents.append(h0)
    if c0 is not None:
        parents.append(c0)

    need_grad = is_grad_enabled() and any(p.requires_grad for p in parents)
    if not need_grad:
        return Tensor(lstm_forward_numpy(x, wx, wh, b, h_init, c_init))

    # Forward with saved workspaces.  Time-major layouts keep each
    # per-step slice contiguous so the recurrence can write in place.
    # Gate columns are permuted [i, f, g, o] → [o, i, f, g] (one copy per
    # call, not per step) so the sigmoid gates form one contiguous block
    # and the backward's dc-scaled gate gradients another; parameter
    # gradients are un-permuted on the way out.
    perm = _gate_permutation(hidden)
    wx_p = wx[:, perm]
    wh_p = wh[:, perm]
    b_p = b[perm]
    # Pre-double the candidate gate (tanh via 2σ(2x) − 1); ×2 is exact.
    # The backward uses unscaled weight copies, so gradients are w.r.t.
    # the canonical parameters.
    wx_p[:, 3 * hidden :] *= 2.0
    wh_p[:, 3 * hidden :] *= 2.0
    b_p[3 * hidden :] *= 2.0
    # Time-major input copy: per-step xw slices become contiguous, and the
    # same (T·B, F) view feeds the ∂W_x GEMM in the backward pass.  All
    # large workspaces come from (and return to) the buffer pool.
    x_tm3 = _workspaces.take(steps, batch, features)
    np.copyto(x_tm3, x.transpose(1, 0, 2))
    x_tm = x_tm3.reshape(steps * batch, features)
    xw = _workspaces.take(steps, batch, 4 * hidden)
    np.matmul(x_tm, wx_p, out=xw.reshape(steps * batch, 4 * hidden))
    xw += b_p
    acts = _workspaces.take(steps, batch, 4 * hidden)  # post-act [o, i, f, g]
    hs = _workspaces.take(steps + 1, batch, hidden)  # h_{-1} .. h_{T-1}
    cs = _workspaces.take(steps + 1, batch, hidden)  # c_{-1} .. c_{T-1}
    tanh_c = _workspaces.take(steps, batch, hidden)
    tmp = np.empty((batch, hidden))
    hs[0] = h_init if h_init is not None else 0.0
    cs[0] = c_init if c_init is not None else 0.0
    for t in range(steps):
        a = acts[t]
        np.matmul(hs[t], wh_p, out=a)
        a += xw[t]
        _activate_gates_inplace(a, hidden)
        c = cs[t + 1]
        np.multiply(a[:, 2 * hidden : 3 * hidden], cs[t], out=c)  # f ⊙ c_prev
        np.multiply(a[:, hidden : 2 * hidden], a[:, 3 * hidden :], out=tmp)  # i⊙g
        c += tmp
        np.tanh(c, out=tanh_c[t])
        np.multiply(a[:, :hidden], tanh_c[t], out=hs[t + 1])  # o ⊙ tanh(c)
    _workspaces.give(xw)
    h_out = hs[steps].copy()  # detach from the pooled buffer

    def backward(grad: np.ndarray) -> None:
        acts4 = acts.reshape(steps, batch, 4, hidden)
        o = acts4[:, :, 0]
        i = acts4[:, :, 1]
        f = acts4[:, :, 2]
        g = acts4[:, :, 3]
        # The gate-derivative factors depend only on saved activations, so
        # they vectorize across the whole (T, B, H) block up front (written
        # through out= chains to avoid expression temporaries).  ``gfac``
        # shares the activation layout: block 0 scales with dh, blocks 1–3
        # with dc, so the reverse recurrence fills all three dc gradients
        # with one broadcast multiply — three elementwise products, one
        # GEMM and one scale per step in total.
        prop = _workspaces.take(steps, batch, hidden)  # o⊙(1 − tanh²c): dh→dc
        np.multiply(tanh_c, tanh_c, out=prop)
        np.subtract(1.0, prop, out=prop)
        prop *= o
        gfac = _workspaces.take(steps, batch, 4, hidden)
        np.subtract(1.0, o, out=gfac[:, :, 0])  # o ⊙ (1 − o) ⊙ tanh c
        gfac[:, :, 0] *= o
        gfac[:, :, 0] *= tanh_c
        np.subtract(1.0, i, out=gfac[:, :, 1])  # i ⊙ (1 − i) ⊙ g
        gfac[:, :, 1] *= i
        gfac[:, :, 1] *= g
        np.subtract(1.0, f, out=gfac[:, :, 2])  # f ⊙ (1 − f) ⊙ c_prev
        gfac[:, :, 2] *= f
        gfac[:, :, 2] *= cs[:steps]
        np.multiply(g, g, out=gfac[:, :, 3])  # (1 − g²) ⊙ i
        np.subtract(1.0, gfac[:, :, 3], out=gfac[:, :, 3])
        gfac[:, :, 3] *= i
        # ``gfac`` doubles as the gate-gradient workspace: the per-step
        # multiplies scale it in place, so no separate d_acts buffer (or
        # its memory traffic) exists.  Gradients are w.r.t. the canonical
        # parameters, so the GEMMs here use unscaled weight copies.
        gfac_rows = gfac.reshape(steps, batch, 4 * hidden)
        dh = np.array(grad, dtype=np.float64)
        dc = np.zeros((batch, hidden))
        carry = np.empty((batch, hidden))
        wh_pt = np.ascontiguousarray(wh[:, perm].T)
        for t in range(steps - 1, -1, -1):
            np.multiply(dh, prop[t], out=carry)
            dc += carry
            gfac[t, :, 0] *= dh
            gfac[t, :, 1:] *= dc[:, None, :]
            np.matmul(gfac_rows[t], wh_pt, out=dh)
            dc *= f[t]
        d_flat = gfac_rows.reshape(steps * batch, 4 * hidden)
        if seq.requires_grad:
            dx = (d_flat @ wx[:, perm].T).reshape(steps, batch, features)
            seq._accumulate(dx.transpose(1, 0, 2), copy=False)
        if weight_x.requires_grad:
            dwx = np.empty_like(wx)
            dwx[:, perm] = x_tm.T @ d_flat
            weight_x._accumulate(dwx, copy=False)
        if weight_h.requires_grad:
            h_tm = hs[:steps].reshape(steps * batch, hidden)
            dwh = np.empty_like(wh)
            dwh[:, perm] = h_tm.T @ d_flat
            weight_h._accumulate(dwh, copy=False)
        if bias.requires_grad:
            db = np.empty_like(b)
            db[perm] = d_flat.sum(axis=0)
            bias._accumulate(db, copy=False)
        if h0 is not None and h0.requires_grad:
            h0._accumulate(dh, copy=False)
        if c0 is not None and c0.requires_grad:
            c0._accumulate(dc, copy=False)
        _workspaces.give(x_tm3, acts, hs, cs, tanh_c, prop, gfac)

    return Tensor._make(h_out, tuple(parents), backward)


# ----------------------------------------------------------------------
# Fused loss kernels
# ----------------------------------------------------------------------
def fused_weighted_bce_sum(
    prediction: Tensor,
    target: np.ndarray,
    weight: np.ndarray,
    scale: float = 1.0,
) -> Tensor:
    """``scale · Σ w ⊙ BCE(p, t)`` as one autograd node.

    The elementwise forward matches the reference
    ``-(t·log_safe(p) + (1-t)·log_safe(1-p))`` chain bit-for-bit (same
    clip-then-log formulas); the single backward closure applies the
    clip masks analytically instead of replaying ~10 recorded nodes.
    Both the paper's L1 (``weight = β_k / |P|``) and L2
    (``weight = γ_k · interval_weights / |P|``) reduce to this kernel.
    """
    p = prediction.data
    target = np.asarray(target, dtype=np.float64)
    weight = np.asarray(weight, dtype=np.float64)
    p_clip = np.clip(p, _EPS, 1.0)
    q = 1.0 - p
    q_clip = np.clip(q, _EPS, 1.0)
    per_element = -(target * np.log(p_clip) + (1.0 - target) * np.log(q_clip))
    value = (per_element * weight).sum() * scale

    def backward(grad: np.ndarray) -> None:
        if not prediction.requires_grad:
            return
        p_mask = (p >= _EPS) & (p <= 1.0)
        q_mask = (q >= _EPS) & (q <= 1.0)
        d = -(target * p_mask / p_clip - (1.0 - target) * q_mask / q_clip)
        d *= weight * (float(grad) * scale)
        prediction._accumulate(d, copy=False)

    return Tensor._make(np.asarray(value), (prediction,), backward)


def fused_binary_cross_entropy(
    prediction: Tensor,
    target: np.ndarray,
    weight: Optional[np.ndarray] = None,
    reduction: str = "mean",
) -> Tensor:
    """Elementwise BCE with one backward closure (fused ``F.binary_cross_entropy``).

    Shape/argument validation lives in the caller
    (:func:`repro.nn.functional.binary_cross_entropy`); this kernel only
    does the math.
    """
    p = prediction.data
    target = np.asarray(target, dtype=np.float64)
    p_clip = np.clip(p, _EPS, 1.0)
    q = 1.0 - p
    q_clip = np.clip(q, _EPS, 1.0)
    loss = -(target * np.log(p_clip) + (1.0 - target) * np.log(q_clip))
    if weight is not None:
        weight = np.asarray(weight, dtype=np.float64)
        loss = loss * weight
    if reduction == "mean":
        value = np.asarray(loss.sum() * (1.0 / loss.size))
    elif reduction == "sum":
        value = np.asarray(loss.sum())
    else:  # "none"
        value = loss

    def backward(grad: np.ndarray) -> None:
        if not prediction.requires_grad:
            return
        p_mask = (p >= _EPS) & (p <= 1.0)
        q_mask = (q >= _EPS) & (q <= 1.0)
        d = -(target * p_mask / p_clip - (1.0 - target) * q_mask / q_clip)
        if weight is not None:
            d *= weight
        if reduction == "mean":
            d *= float(grad) * (1.0 / loss.size)
        elif reduction == "sum":
            d *= float(grad)
        else:
            d *= grad
        prediction._accumulate(d, copy=False)

    return Tensor._make(value, (prediction,), backward)
