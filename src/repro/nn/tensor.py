"""Reverse-mode automatic differentiation on top of numpy arrays.

This module is the foundation of the :mod:`repro.nn` substrate.  The paper
trains EventHit (an LSTM encoder plus per-event MLP heads) end-to-end with
gradient descent; since no deep-learning framework is available offline, we
implement a small but complete autograd engine here.  Every differentiable
operation records a backward closure on the output tensor; calling
:meth:`Tensor.backward` performs a topological sort of the recorded graph and
accumulates gradients into ``Tensor.grad``.

Gradients are validated against central finite differences in
``tests/nn/test_gradcheck.py``.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables graph construction.

    Used during inference and calibration passes, where gradients are never
    needed, to avoid the memory cost of recording backward closures.
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    """Return whether new operations will be recorded for backprop."""
    return _GRAD_ENABLED


def _as_array(value: ArrayLike) -> np.ndarray:
    if isinstance(value, np.ndarray):
        if value.dtype != np.float64:
            return value.astype(np.float64)
        return value
    return np.asarray(value, dtype=np.float64)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after a broadcasted forward op.

    Numpy broadcasting may have (a) prepended axes and (b) stretched
    length-1 axes; both must be summed out so the gradient matches the
    original operand's shape.
    """
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed array with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Array contents (copied to float64 when necessary).
    requires_grad:
        Whether gradients should flow to this tensor.  Leaf tensors with
        ``requires_grad=True`` accumulate into :attr:`grad`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data: ArrayLike, requires_grad: bool = False):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    # ------------------------------------------------------------------
    # Graph machinery
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray, copy: bool = True) -> None:
        """Add ``grad`` into :attr:`grad`.

        ``copy=False`` transfers ownership of a freshly allocated array
        (the fused kernels in :mod:`repro.nn.fused` use it to avoid
        duplicating whole-sequence gradient buffers); callers passing a
        view of live data must keep the default.
        """
        grad = _unbroadcast(grad, self.data.shape)
        if self.grad is None:
            self.grad = grad.copy() if copy else grad
        else:
            self.grad += grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a "
                    f"scalar tensor, got shape {self.data.shape}"
                )
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"gradient shape {grad.shape} does not match tensor "
                    f"shape {self.data.shape}"
                )

        order: List[Tensor] = []
        seen = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, iter(node._parents))]
            seen.add(id(node))
            while stack:
                current, parents = stack[-1]
                advanced = False
                for parent in parents:
                    if id(parent) not in seen and parent.requires_grad:
                        seen.add(id(parent))
                        stack.append((parent, iter(parent._parents)))
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()

        visit(self)
        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                # Free intermediate buffers: non-leaf gradients are not
                # needed once their parents have been updated.
                if node._parents:
                    node.grad = None
                    node._backward = None
                    node._parents = ()

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = _ensure_tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other_t.requires_grad:
                other_t._accumulate(grad)

        return Tensor._make(self.data + other_t.data, (self, other_t), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-_ensure_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return _ensure_tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = _ensure_tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other_t.data)
            if other_t.requires_grad:
                other_t._accumulate(grad * self.data)

        return Tensor._make(self.data * other_t.data, (self, other_t), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = _ensure_tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other_t.data)
            if other_t.requires_grad:
                other_t._accumulate(-grad * self.data / (other_t.data**2))

        return Tensor._make(self.data / other_t.data, (self, other_t), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return _ensure_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(self.data**exponent, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other_t = _ensure_tensor(other)
        if self.data.ndim < 2 or other_t.data.ndim < 2:
            raise ValueError("matmul requires tensors with ndim >= 2")

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ np.swapaxes(other_t.data, -1, -2))
            if other_t.requires_grad:
                other_t._accumulate(np.swapaxes(self.data, -1, -2) @ grad)

        return Tensor._make(self.data @ other_t.data, (self, other_t), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._make(
            self.data.sum(axis=axis, keepdims=keepdims), (self,), backward
        )

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, int):
            count = self.data.shape[axis]
        else:
            count = int(np.prod([self.data.shape[a] for a in axis]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            o = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                o = np.expand_dims(o, axis)
            mask = (self.data == o).astype(np.float64)
            # Split gradient between ties, matching subgradient convention.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(g * mask / counts)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(np.log(self.data), (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = (self.data > 0).astype(np.float64)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(self.data * mask, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values; gradient is passed through inside the interval."""
        mask = ((self.data >= low) & (self.data <= high)).astype(np.float64)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(np.clip(self.data, low, high), (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(self.data.reshape(shape), (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes_t = axes if axes else tuple(reversed(range(self.data.ndim)))
        inverse = np.argsort(axes_t)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(self.data.transpose(axes_t), (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(self.data[index], (self,), backward)


def _ensure_tensor(value: ArrayLike) -> Tensor:
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [_ensure_tensor(t) for t in tensors]
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(slicer)])

    return Tensor._make(
        np.concatenate([t.data for t in tensors], axis=axis),
        tuple(tensors),
        backward,
    )


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient routing."""
    tensors = [_ensure_tensor(t) for t in tensors]

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, pieces):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(
        np.stack([t.data for t in tensors], axis=axis), tuple(tensors), backward
    )


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select ``a`` where ``condition`` else ``b``."""
    a_t, b_t = _ensure_tensor(a), _ensure_tensor(b)
    cond = np.asarray(condition, dtype=bool)

    def backward(grad: np.ndarray) -> None:
        if a_t.requires_grad:
            a_t._accumulate(grad * cond)
        if b_t.requires_grad:
            b_t._accumulate(grad * ~cond)

    return Tensor._make(np.where(cond, a_t.data, b_t.data), (a_t, b_t), backward)
