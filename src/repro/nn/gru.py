"""GRU encoder — the standard lighter alternative to the LSTM (§III).

The paper uses an LSTM; a GRU has ~25% fewer parameters at comparable
quality on short windows, so it is offered as an encoder ablation
(``EventHit(..., encoder="gru")``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from . import init
from .fused import fused_enabled, gru_forward_numpy
from .layers import Module, Parameter
from .tensor import Tensor, is_grad_enabled

__all__ = ["GRUCell", "GRU"]


class GRUCell(Module):
    """A single GRU step with fused gate weights.

    Gate layout along the fused projection is ``[reset, update]`` plus a
    separate candidate projection:

    .. math::
        r &= \\sigma(x W_{xr} + h W_{hr} + b_r) \\\\
        z &= \\sigma(x W_{xz} + h W_{hz} + b_z) \\\\
        n &= \\tanh(x W_{xn} + (r \\odot h) W_{hn} + b_n) \\\\
        h' &= (1 - z) \\odot n + z \\odot h
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("input_size and hidden_size must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_x_gates = Parameter(
            init.xavier_uniform(input_size, 2 * hidden_size, rng)
        )
        self.weight_h_gates = Parameter(
            np.concatenate(
                [init.orthogonal(hidden_size, hidden_size, rng) for _ in range(2)],
                axis=1,
            )
        )
        self.bias_gates = Parameter(init.zeros(2 * hidden_size))
        self.weight_x_cand = Parameter(
            init.xavier_uniform(input_size, hidden_size, rng)
        )
        self.weight_h_cand = Parameter(init.orthogonal(hidden_size, hidden_size, rng))
        self.bias_cand = Parameter(init.zeros(hidden_size))

    def forward(self, x: Tensor, h_prev: Tensor) -> Tensor:
        """Advance one step; returns the new hidden state (batch, hidden)."""
        gates = (
            x @ self.weight_x_gates + h_prev @ self.weight_h_gates + self.bias_gates
        )
        hs = self.hidden_size
        r = gates[:, 0:hs].sigmoid()
        z = gates[:, hs : 2 * hs].sigmoid()
        candidate = (
            x @ self.weight_x_cand
            + (r * h_prev) @ self.weight_h_cand
            + self.bias_cand
        ).tanh()
        return (1.0 - z) * candidate + z * h_prev

    def initial_state(self, batch_size: int) -> Tensor:
        return Tensor(np.zeros((batch_size, self.hidden_size)))

    def step_numpy(self, x: np.ndarray, h: np.ndarray) -> np.ndarray:
        """Graph-free single step (plain formulas, no autograd).

        Stateful reference for the continual engine's cached-weight fast
        step; mirrors :meth:`forward` on raw arrays.
        """
        gates = (
            x @ self.weight_x_gates.data
            + h @ self.weight_h_gates.data
            + self.bias_gates.data
        )
        gates = 1.0 / (1.0 + np.exp(-gates))
        hs = self.hidden_size
        r = gates[:, :hs]
        z = gates[:, hs : 2 * hs]
        candidate = np.tanh(
            x @ self.weight_x_cand.data
            + (r * h) @ self.weight_h_cand.data
            + self.bias_cand.data
        )
        return (1.0 - z) * candidate + z * h


class GRU(Module):
    """Run a :class:`GRUCell` over a (batch, time, feature) sequence."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        self.cell = GRUCell(input_size, hidden_size, rng=rng)
        self.input_size = input_size
        self.hidden_size = hidden_size

    def forward(
        self,
        sequence: Tensor,
        state: Optional[Tensor] = None,
        return_sequence: bool = False,
    ):
        """Encode a batched sequence; mirrors :class:`repro.nn.LSTM`.

        Under ``no_grad`` the fused graph-free numpy forward
        (:func:`repro.nn.fused.gru_forward_numpy`) is used; the op-by-op
        loop below remains the training path (the GRU is an ablation
        encoder, so only its inference side is on the fused fast path) and
        the reference for the fused-equivalence tests.
        """
        if sequence.ndim != 3:
            raise ValueError(
                f"expected (batch, time, features) input, got shape {sequence.shape}"
            )
        batch, steps, features = sequence.shape
        if features != self.input_size:
            raise ValueError(f"expected feature dim {self.input_size}, got {features}")
        if steps == 0:
            raise ValueError("cannot encode an empty sequence")
        if fused_enabled() and not return_sequence and not is_grad_enabled():
            cell = self.cell
            return Tensor(
                gru_forward_numpy(
                    sequence.data,
                    cell.weight_x_gates.data,
                    cell.weight_h_gates.data,
                    cell.bias_gates.data,
                    cell.weight_x_cand.data,
                    cell.weight_h_cand.data,
                    cell.bias_cand.data,
                    state.data if state is not None else None,
                )
            )
        h = state if state is not None else self.cell.initial_state(batch)
        outputs: List[Tensor] = []
        for t in range(steps):  # reference-loop: op-by-op autograd ground truth
            h = self.cell(sequence[:, t, :], h)
            if return_sequence:
                outputs.append(h)
        if return_sequence:
            return h, outputs
        return h
