"""Metrics registry: counters, gauges, and streaming histograms.

The registry is the numeric half of the observability substrate (spans are
the temporal half).  Three metric kinds cover what the marshalling pipeline
needs to account for itself the way the paper's §VI.H does:

* :class:`Counter` — monotonically accumulating totals (frames relayed,
  dollars charged, conformal widenings applied);
* :class:`Gauge` — last-written values (current training loss, learning
  rate);
* :class:`Histogram` — streaming distributions with p50/p95/p99 estimates
  via reservoir sampling (CI call latency, gradient norms).

Everything is numpy-only and thread-safe: later PRs parallelise the
harness, and a counter shared across worker threads must not lose
increments.  Module-level helpers (:func:`inc`, :func:`set_gauge`,
:func:`observe`) write to the process-wide default registry and no-op in
well under a microsecond while instrumentation is disabled.
"""

from __future__ import annotations

import random
import threading
import zlib
from typing import Dict, List, Optional

import numpy as np

from . import _state

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "inc",
    "set_gauge",
    "observe",
]


class Counter:
    """A monotonically increasing total (float increments allowed)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge instead")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> float:
        return self._value


class Gauge:
    """A last-value metric with min/max tracking."""

    __slots__ = ("name", "_value", "_min", "_max", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value: Optional[float] = None
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._value = value
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    @property
    def value(self) -> Optional[float]:
        return self._value

    def snapshot(self) -> Dict[str, float]:
        if self._value is None:
            return {"value": float("nan"), "min": float("nan"), "max": float("nan")}
        return {"value": self._value, "min": self._min, "max": self._max}


class Histogram:
    """Streaming distribution summary via reservoir sampling (Algorithm R).

    Keeps exact ``count``/``sum``/``min``/``max`` plus a bounded uniform
    sample of the observations; percentiles are computed with
    ``numpy.percentile`` over the reservoir.  While fewer than ``capacity``
    values have been observed the reservoir holds *every* value and the
    percentile estimates are exact.  The RNG is seeded from the metric name
    so runs are reproducible.
    """

    __slots__ = (
        "name",
        "capacity",
        "_reservoir",
        "_count",
        "_sum",
        "_min",
        "_max",
        "_rng",
        "_lock",
    )

    def __init__(self, name: str, capacity: int = 2048):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.name = name
        self.capacity = capacity
        self._reservoir: List[float] = []
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)
            if len(self._reservoir) < self.capacity:
                self._reservoir.append(value)
            else:
                j = self._rng.randrange(self._count)
                if j < self.capacity:
                    self._reservoir[j] = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else float("nan")

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (``q`` in [0, 100])."""
        with self._lock:
            if not self._reservoir:
                return float("nan")
            return float(np.percentile(self._reservoir, q))

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            if not self._count:
                keys = ("count", "sum", "mean", "min", "max", "p50", "p95", "p99")
                return {k: (0 if k == "count" else float("nan")) for k in keys}
            p50, p95, p99 = np.percentile(self._reservoir, [50, 95, 99])
        return {
            "count": self._count,
            "sum": self._sum,
            "mean": self._sum / self._count,
            "min": self._min,
            "max": self._max,
            "p50": float(p50),
            "p95": float(p95),
            "p99": float(p99),
        }


class MetricsRegistry:
    """Name-keyed store of metrics with get-or-create accessors.

    Accessors are idempotent — ``registry.counter("x")`` returns the same
    object every call — and raise ``ValueError`` when a name is reused for
    a different metric kind (silent kind changes hide bugs in exporters).
    """

    def __init__(self):
        self._metrics: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, kind, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind(name, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise ValueError(
                    f"metric {name!r} is a {type(metric).__name__}, "
                    f"not a {kind.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str, capacity: int = 2048) -> Histogram:
        return self._get_or_create(name, Histogram, capacity=capacity)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str):
        return self._metrics.get(name)

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()

    def snapshot(self) -> Dict[str, Dict]:
        """Serializable view: ``{"counters": ..., "gauges": ..., "histograms": ...}``."""
        with self._lock:
            metrics = dict(self._metrics)
        out: Dict[str, Dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(metrics):
            metric = metrics[name]
            if isinstance(metric, Counter):
                out["counters"][name] = metric.snapshot()
            elif isinstance(metric, Gauge):
                out["gauges"][name] = metric.snapshot()
            elif isinstance(metric, Histogram):
                out["histograms"][name] = metric.snapshot()
        return out


_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry all helpers write to."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry (tests install a fresh one); returns the old."""
    global _default_registry
    old = _default_registry
    _default_registry = registry
    return old


def inc(name: str, amount: float = 1.0) -> None:
    """Increment counter ``name`` in the default registry (no-op when disabled)."""
    if not _state.enabled:
        return
    _default_registry.counter(name).inc(amount)


def set_gauge(name: str, value: float) -> None:
    """Set gauge ``name`` in the default registry (no-op when disabled)."""
    if not _state.enabled:
        return
    _default_registry.gauge(name).set(value)


def observe(name: str, value: float) -> None:
    """Observe ``value`` into histogram ``name`` (no-op when disabled)."""
    if not _state.enabled:
        return
    _default_registry.histogram(name).observe(value)
