"""Metrics registry: counters, gauges, and streaming histograms.

The registry is the numeric half of the observability substrate (spans are
the temporal half).  Three metric kinds cover what the marshalling pipeline
needs to account for itself the way the paper's §VI.H does:

* :class:`Counter` — monotonically accumulating totals (frames relayed,
  dollars charged, conformal widenings applied);
* :class:`Gauge` — last-written values (current training loss, learning
  rate);
* :class:`Histogram` — streaming distributions with p50/p95/p99 estimates
  via reservoir sampling (CI call latency, gradient norms).

Everything is numpy-only and thread-safe: later PRs parallelise the
harness, and a counter shared across worker threads must not lose
increments.  Module-level helpers (:func:`inc`, :func:`set_gauge`,
:func:`observe`) write to the process-wide default registry and no-op in
well under a microsecond while instrumentation is disabled.
"""

from __future__ import annotations

import random
import threading
import zlib
from typing import Dict, List, Optional, Tuple

import numpy as np

from . import _state

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "inc",
    "set_gauge",
    "observe",
]


class Counter:
    """A monotonically increasing total (float increments allowed)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge instead")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A last-value metric with min/max tracking."""

    __slots__ = ("name", "_value", "_min", "_max", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value: Optional[float] = None
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._value = value
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    @property
    def value(self) -> Optional[float]:
        return self._value

    def read(self) -> float:
        """Current value as a plain float (NaN before the first set) —
        the allocation-free read the time-series sampler uses."""
        with self._lock:
            return self._value if self._value is not None else float("nan")

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            if self._value is None:
                return {"value": float("nan"), "min": float("nan"),
                        "max": float("nan")}
            return {"value": self._value, "min": self._min, "max": self._max}

    def merge_state(self, state: Dict[str, float]) -> None:
        """Fold another gauge's :meth:`snapshot` into this one.

        The min/max envelopes union; the last value is taken from the
        merged state (never-set gauges — all-NaN snapshots — are a
        no-op).  The caller fixes the merge order, so folding shards in
        index order is deterministic.
        """
        value = state.get("value")
        if value is None or value != value:
            return
        with self._lock:
            self._value = float(value)
            low = state.get("min", value)
            high = state.get("max", value)
            if low == low:
                self._min = min(self._min, float(low))
            if high == high:
                self._max = max(self._max, float(high))


class Histogram:
    """Streaming distribution summary via reservoir sampling (Algorithm R).

    Keeps exact ``count``/``sum``/``min``/``max`` plus a bounded uniform
    sample of the observations; percentiles are computed with
    ``numpy.percentile`` over the reservoir.  While fewer than ``capacity``
    values have been observed the reservoir holds *every* value and the
    percentile estimates are exact.  The RNG is seeded from the metric name
    so runs are reproducible.
    """

    __slots__ = (
        "name",
        "capacity",
        "_reservoir",
        "_count",
        "_sum",
        "_min",
        "_max",
        "_rng",
        "_lock",
        "_pcts",
        "_pcts_count",
    )

    #: Below this reservoir size a sorted-list scan beats numpy's fixed
    #: per-call overhead (~70µs) by an order of magnitude.  The fleet
    #: samples every histogram once per tick, so this is a hot path.
    _SMALL_RESERVOIR = 512

    def __init__(self, name: str, capacity: int = 2048):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.name = name
        self.capacity = capacity
        self._reservoir: List[float] = []
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))
        self._lock = threading.Lock()
        self._pcts: Tuple[float, float, float] = (
            float("nan"), float("nan"), float("nan")
        )
        self._pcts_count = -1

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)
            if len(self._reservoir) < self.capacity:
                self._reservoir.append(value)
            else:
                j = self._rng.randrange(self._count)
                if j < self.capacity:
                    self._reservoir[j] = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else float("nan")

    @staticmethod
    def _interpolate(ordered: List[float], q: float) -> float:
        """Linear-interpolated quantile over pre-sorted values — bit-equal
        to ``numpy.percentile(..., method="linear")``, including numpy's
        stability-corrected lerp (interpolate from the upper point once
        past the midpoint so the result never leaves ``[lo, hi]``)."""
        idx = q / 100.0 * (len(ordered) - 1)
        lo = int(idx)
        hi = min(lo + 1, len(ordered) - 1)
        t = idx - lo
        diff = ordered[hi] - ordered[lo]
        if t >= 0.5:
            return ordered[hi] - diff * (1.0 - t)
        return ordered[lo] + diff * t

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (``q`` in [0, 100])."""
        with self._lock:
            if not self._reservoir:
                return float("nan")
            if len(self._reservoir) <= self._SMALL_RESERVOIR:
                return float(self._interpolate(sorted(self._reservoir), q))
            return float(np.percentile(self._reservoir, q))

    def _percentiles_locked(self) -> Tuple[float, float, float]:
        """(p50, p95, p99), cached until the next observe (lock held).

        ``_count`` keys the cache: every mutation goes through
        :meth:`observe`, which bumps it, so a matching count means the
        reservoir is untouched since the last scan.  Quiescent histograms
        (e.g. training metrics during a fleet run) then cost one integer
        compare per tick instead of a percentile scan.
        """
        if self._count != self._pcts_count:
            if len(self._reservoir) <= self._SMALL_RESERVOIR:
                ordered = sorted(self._reservoir)
                self._pcts = (
                    self._interpolate(ordered, 50),
                    self._interpolate(ordered, 95),
                    self._interpolate(ordered, 99),
                )
            else:
                p50, p95, p99 = np.percentile(self._reservoir, [50, 95, 99])
                self._pcts = (float(p50), float(p95), float(p99))
            self._pcts_count = self._count
        return self._pcts

    def sample_stats(self) -> Tuple[float, float, float, float, float]:
        """``(count, sum, p50, p95, p99)`` as one tuple — what the
        per-tick time-series sampler needs, without a dict allocation."""
        with self._lock:
            if not self._count:
                nan = float("nan")
                return (0, nan, nan, nan, nan)
            p50, p95, p99 = self._percentiles_locked()
            return (self._count, self._sum, p50, p95, p99)

    def dump_state(self) -> Dict[str, object]:
        """Mergeable deep state: exact moments plus the reservoir sample.

        Unlike :meth:`snapshot` (a percentile *summary* for exporters),
        the state dump carries everything :meth:`merge_state` needs to
        fold this histogram into another one — the coordinator-side half
        of cross-process registry aggregation.
        """
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "capacity": self.capacity,
                "reservoir": list(self._reservoir),
            }

    def merge_state(self, state: Dict[str, object]) -> None:
        """Fold another histogram's :meth:`dump_state` into this one.

        ``count``/``sum`` add exactly and the min/max envelopes union.
        The reservoirs concatenate; past capacity the combined sample is
        decimated to evenly spaced elements — a deterministic reduction
        (no RNG draw), so coordinator merges are reproducible, at the
        price of the tail sample no longer being an exact uniform draw.
        Percentile estimates stay within reservoir-sampling error.
        """
        count = int(state["count"])
        if count == 0:
            return
        with self._lock:
            self._count += count
            self._sum += float(state["sum"])
            self._min = min(self._min, float(state["min"]))
            self._max = max(self._max, float(state["max"]))
            combined = self._reservoir + [float(v) for v in state["reservoir"]]
            if len(combined) > self.capacity:
                step = len(combined) / self.capacity
                combined = [
                    combined[int(i * step)] for i in range(self.capacity)
                ]
            self._reservoir = combined
            self._pcts_count = -1  # invalidate the cached percentile scan

    def snapshot(self) -> Dict[str, float]:
        # count/sum/min/max are read under the same lock as the percentile
        # scan so a concurrent observe() cannot produce a torn view (e.g.
        # count from before an update paired with sum from after it).
        with self._lock:
            if not self._count:
                keys = ("count", "sum", "mean", "min", "max", "p50", "p95", "p99")
                return {k: (0 if k == "count" else float("nan")) for k in keys}
            p50, p95, p99 = self._percentiles_locked()
            return {
                "count": self._count,
                "sum": self._sum,
                "mean": self._sum / self._count,
                "min": self._min,
                "max": self._max,
                "p50": p50,
                "p95": p95,
                "p99": p99,
            }


class MetricsRegistry:
    """Name-keyed store of metrics with get-or-create accessors.

    Accessors are idempotent — ``registry.counter("x")`` returns the same
    object every call — and raise ``ValueError`` when a name is reused for
    a different metric kind (silent kind changes hide bugs in exporters).
    """

    def __init__(self):
        self._metrics: Dict[str, object] = {}
        self._lock = threading.Lock()
        # Bumped whenever the *set* of metrics changes (creation, reset).
        # The time-series sampler keys its cached sampling plan on this,
        # so a steady-state sample never takes the registry lock.
        self._version = 0

    def _get_or_create(self, name: str, kind, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind(name, **kwargs)
                self._metrics[name] = metric
                self._version += 1
            elif not isinstance(metric, kind):
                raise ValueError(
                    f"metric {name!r} is a {type(metric).__name__}, "
                    f"not a {kind.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str, capacity: int = 2048) -> Histogram:
        return self._get_or_create(name, Histogram, capacity=capacity)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str):
        return self._metrics.get(name)

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()
            self._version += 1

    def snapshot(self) -> Dict[str, Dict]:
        """Serializable view: ``{"counters": ..., "gauges": ..., "histograms": ...}``.

        The result is a deep copy — every per-metric snapshot is taken
        under that metric's lock and materialised into fresh dicts of
        plain floats — so exporters may hold or mutate it freely while
        instrumented threads keep writing.
        """
        with self._lock:
            metrics = dict(self._metrics)
        out: Dict[str, Dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(metrics):
            metric = metrics[name]
            if isinstance(metric, Counter):
                out["counters"][name] = metric.snapshot()
            elif isinstance(metric, Gauge):
                out["gauges"][name] = metric.snapshot()
            elif isinstance(metric, Histogram):
                out["histograms"][name] = metric.snapshot()
        return out

    def dump_state(self) -> Dict[str, Dict]:
        """Mergeable deep copy of the whole registry.

        Shaped like :meth:`snapshot` — ``{"counters", "gauges",
        "histograms"}`` keyed by metric name — but histograms carry
        their full :meth:`Histogram.dump_state` (including the
        reservoir) instead of the percentile summary, so the payload
        round-trips through :meth:`merge_from` without information
        loss.  Plain dicts/lists of floats: picklable and
        JSON-serializable, which is what shard workers ship back to the
        coordinator.
        """
        with self._lock:
            metrics = dict(self._metrics)
        out: Dict[str, Dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(metrics):
            metric = metrics[name]
            if isinstance(metric, Counter):
                out["counters"][name] = metric.snapshot()
            elif isinstance(metric, Gauge):
                out["gauges"][name] = metric.snapshot()
            elif isinstance(metric, Histogram):
                out["histograms"][name] = metric.dump_state()
        return out

    def merge_from(self, state: Dict[str, Dict]) -> None:
        """Deterministically fold a :meth:`dump_state` payload into this
        registry (the coordinator-side aggregation of shard-local
        registries).

        Merge semantics per kind:

        * **counters** add — merged totals equal what one shared counter
          would have accumulated;
        * **gauges** union their min/max envelopes and take the merged
          state's last value (so folding shards in index order is
          deterministic; never-set gauges are no-ops);
        * **histograms** add ``count``/``sum`` exactly, union min/max,
          and concatenate reservoirs with deterministic even-spaced
          decimation past capacity (see :meth:`Histogram.merge_state`).

        Metrics missing from this registry are created; names are
        processed in sorted order, so repeated merges of the same states
        in the same order produce bit-identical registries.
        """
        for name in sorted(state.get("counters", ())):
            self.counter(name).inc(float(state["counters"][name]))
        for name in sorted(state.get("gauges", ())):
            self.gauge(name).merge_state(state["gauges"][name])
        for name in sorted(state.get("histograms", ())):
            payload = state["histograms"][name]
            histogram = self.histogram(
                name, capacity=int(payload.get("capacity", 2048))
            )
            histogram.merge_state(payload)


_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry all helpers write to."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry (tests install a fresh one); returns the old."""
    global _default_registry
    old = _default_registry
    _default_registry = registry
    return old


# The helpers below sit in per-tick and per-request hot paths, so after
# the enabled check they look the metric up with a bare dict read (atomic
# under the GIL) and only fall back to the locked get-or-create accessor
# on a miss or a kind mismatch (which the accessor then reports).

def inc(name: str, amount: float = 1.0) -> None:
    """Increment counter ``name`` in the default registry (no-op when disabled)."""
    if not _state.enabled:
        return
    metric = _default_registry._metrics.get(name)
    if type(metric) is not Counter:
        metric = _default_registry.counter(name)
    metric.inc(amount)


def set_gauge(name: str, value: float) -> None:
    """Set gauge ``name`` in the default registry (no-op when disabled)."""
    if not _state.enabled:
        return
    metric = _default_registry._metrics.get(name)
    if type(metric) is not Gauge:
        metric = _default_registry.gauge(name)
    metric.set(value)


def observe(name: str, value: float) -> None:
    """Observe ``value`` into histogram ``name`` (no-op when disabled)."""
    if not _state.enabled:
        return
    metric = _default_registry._metrics.get(name)
    if type(metric) is not Histogram:
        metric = _default_registry.histogram(name)
    metric.observe(value)
