"""Nested wall-clock spans with a per-thread stack.

``with span("train.epoch", epoch=3): ...`` times a pipeline stage.  Spans
nest: each thread keeps its own stack, so a span opened inside another
records its parent and depth, and concurrent harness workers never see each
other's frames.  Finished spans land in the process-wide :class:`Tracer`,
which aggregates per-stage totals and can stream JSON-lines records to a
file (the CLI's ``--trace-out``).

Cost discipline: when instrumentation is disabled, :func:`span` returns a
minimal timer that touches neither the stack nor the tracer — two
``perf_counter`` calls and one tiny allocation, well under a microsecond
(enforced by ``tests/obs/test_noop_overhead.py``).  It still measures
``.seconds`` so callers like the trainer get real durations either way.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, List, Optional, TextIO

from . import _state

__all__ = ["SpanRecord", "Tracer", "span", "get_tracer"]


class SpanRecord:
    """One finished span.

    A plain ``__slots__`` class rather than a dataclass: one record is
    built on every live-span exit, and a frozen dataclass pays an
    ``object.__setattr__`` per field — measurably the biggest share of
    the enabled ``span()`` cost.
    """

    __slots__ = ("name", "start_ts", "seconds", "depth", "parent",
                 "thread", "status", "error", "attrs")

    def __init__(self, name: str, start_ts: float, seconds: float,
                 depth: int, parent: Optional[str], thread: str,
                 status: str = "ok", error: Optional[str] = None,
                 attrs: Optional[Dict[str, object]] = None):
        self.name = name
        self.start_ts = start_ts  # unix epoch seconds (wall clock)
        self.seconds = seconds
        self.depth = depth
        self.parent = parent
        self.thread = thread
        self.status = status
        self.error = error
        self.attrs = {} if attrs is None else attrs

    def __repr__(self) -> str:
        return (f"SpanRecord(name={self.name!r}, seconds={self.seconds!r}, "
                f"depth={self.depth!r}, status={self.status!r})")

    def to_dict(self) -> Dict[str, object]:
        out = {
            "name": self.name,
            "start_ts": self.start_ts,
            "seconds": self.seconds,
            "depth": self.depth,
            "parent": self.parent,
            "thread": self.thread,
            "status": self.status,
        }
        if self.error is not None:
            out["error"] = self.error
        if self.attrs:
            out["attrs"] = self.attrs
        return out


class Tracer:
    """Collects finished spans; optionally streams them as JSON lines."""

    def __init__(self, max_records: int = 100_000):
        self.max_records = max_records
        self._records: List[SpanRecord] = []
        self._dropped = 0
        self._sink: Optional[TextIO] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def set_sink(self, sink: Optional[TextIO]) -> None:
        """Stream future spans to ``sink`` as JSON lines (None detaches)."""
        with self._lock:
            self._sink = sink

    def add(self, record: SpanRecord) -> None:
        with self._lock:
            if len(self._records) < self.max_records:
                self._records.append(record)
            else:
                self._dropped += 1
            sink = self._sink
        if sink is not None:
            sink.write(json.dumps(record.to_dict(), default=str) + "\n")

    # ------------------------------------------------------------------
    @property
    def records(self) -> List[SpanRecord]:
        with self._lock:
            return list(self._records)

    @property
    def dropped(self) -> int:
        return self._dropped

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._dropped = 0

    def stage_totals(self) -> Dict[str, float]:
        """Total seconds per span name (every depth; a nested stage's time
        is also inside its ancestors' totals, like a flame-graph column)."""
        totals: Dict[str, float] = {}
        for record in self.records:
            totals[record.name] = totals.get(record.name, 0.0) + record.seconds
        return totals

    def to_jsonl(self) -> str:
        return "".join(json.dumps(r.to_dict(), default=str) + "\n" for r in self.records)


_tracer = Tracer()
_stack_local = threading.local()


def get_tracer() -> Tracer:
    """The process-wide tracer finished spans are appended to."""
    return _tracer


def _stack() -> list:
    stack = getattr(_stack_local, "stack", None)
    if stack is None:
        stack = []
        _stack_local.stack = stack
        # The thread name is cached next to the stack: span exits read it
        # on every record and ``threading.current_thread()`` is a dict
        # lookup plus an attribute walk per call.
        _stack_local.thread_name = threading.current_thread().name
    return stack


# Bound once: the disabled path is hot, and the live path builds one
# record per exit.
_perf_counter = time.perf_counter
_wall_clock = time.time


class _DisabledSpan:
    """Timer-only span used while instrumentation is off."""

    __slots__ = ("_t0", "seconds")

    def __enter__(self) -> "_DisabledSpan":
        self._t0 = _perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.seconds = _perf_counter() - self._t0
        return False


class _LiveSpan:
    """Recording span: maintains the thread stack and feeds the tracer."""

    __slots__ = ("name", "attrs", "seconds", "_t0", "_start_ts")

    def __init__(self, name: str, attrs: Dict[str, object]):
        self.name = name
        self.attrs = attrs
        self.seconds = 0.0

    def __enter__(self) -> "_LiveSpan":
        _stack().append(self.name)
        self._start_ts = _wall_clock()
        self._t0 = _perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.seconds = _perf_counter() - self._t0
        stack = _stack()
        stack.pop()
        _tracer.add(
            SpanRecord(
                name=self.name,
                start_ts=self._start_ts,
                seconds=self.seconds,
                depth=len(stack),
                parent=stack[-1] if stack else None,
                thread=_stack_local.thread_name,
                status="ok" if exc_type is None else "error",
                error=None if exc is None else repr(exc),
                attrs=self.attrs,
            )
        )
        return False  # never swallow exceptions


def span(name: str, **attrs):
    """Context manager timing one named stage.

    Always yields an object whose ``.seconds`` holds the wall-clock
    duration after exit.  Only when observability is enabled does the span
    join the per-thread stack and get recorded by the tracer (with
    ``status="error"`` and the exception ``repr`` if the body raised — the
    exception itself always propagates).
    """
    if not _state.enabled:
        return _DisabledSpan()
    return _LiveSpan(name, attrs)
