"""``repro.obs`` — observability substrate for the marshalling pipeline.

The paper's contribution is an accounting argument (which stage eats the
time and money — §VI.H, Figs. 8–10), so the reproduction carries its own
runtime accounting: a metrics registry (counters / gauges / streaming
histograms), nested wall-clock spans, and a structured JSON-lines logger.
Instrumented hot paths: the trainer, the stream marshaller, the simulated
cloud service, conformal calibration, and the experiment harness.

Design rules every instrumented module relies on:

* **zero third-party dependencies** — numpy and the standard library only;
* **default-off-cheap** — with instrumentation disabled every helper here
  is a sub-microsecond no-op (benchmarked in ``tests/obs``), so the tier-1
  suite and library users pay nothing;
* **thread-safe** — per-thread span stacks, locked metrics — because later
  PRs parallelise the harness.

Typical use::

    from repro import obs

    obs.configure(enabled=True, log_level="info", trace_out="trace.jsonl")
    ...  # run experiments; spans/counters/logs collect themselves
    text = obs.render_registry()          # human-readable tables
    obs.write_metrics_json("metrics.json")
    obs.shutdown()                        # flush + close the trace file

or from the shell: ``python -m repro.cli metrics --task TA10`` and the
``--trace-out`` / ``--log-level`` flags on every experiment command.
"""

from __future__ import annotations

import atexit
from typing import Optional, TextIO, Union

from . import _state
from .dashboard import render_dashboard, sparkline
from .export import (
    STAGE_COUNTERS,
    read_metrics_json,
    render_prometheus,
    render_registry,
    render_stage_shares,
    render_table,
    render_trace_totals,
    stage_timing_from_counters,
    write_metrics_json,
)
from .flight import (
    FlightRecorder,
    flight_record,
    get_flight_recorder,
    postmortem,
    set_flight_recorder,
    write_flight_json,
)
from .logger import (
    LEVELS,
    StructuredLogger,
    get_logger,
    log_debug,
    log_error,
    log_event,
    log_info,
    log_warning,
)
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    inc,
    observe,
    set_gauge,
    set_registry,
)
from .slo import (
    ALERT_STATES,
    AlertEvent,
    SLOBoard,
    SLOSpec,
    SLOTracker,
    default_fleet_slos,
    evaluate_slos,
    get_slo_board,
    load_slo_specs,
    set_slo_specs,
    update_slos,
)
from .spans import SpanRecord, Tracer, get_tracer, span
from .timeseries import (
    TimeSeriesStore,
    get_timeseries,
    read_timeseries_json,
    record_tick,
    set_timeseries,
    write_timeseries_json,
)

__all__ = [
    "configure",
    "shutdown",
    "reset",
    "is_enabled",
    # registry
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "inc",
    "set_gauge",
    "observe",
    # spans
    "SpanRecord",
    "Tracer",
    "span",
    "get_tracer",
    # logging
    "LEVELS",
    "StructuredLogger",
    "get_logger",
    "log_event",
    "log_debug",
    "log_info",
    "log_warning",
    "log_error",
    # exporters
    "STAGE_COUNTERS",
    "render_table",
    "render_registry",
    "render_prometheus",
    "render_trace_totals",
    "render_stage_shares",
    "stage_timing_from_counters",
    "write_metrics_json",
    "read_metrics_json",
    # time series
    "TimeSeriesStore",
    "get_timeseries",
    "set_timeseries",
    "record_tick",
    "write_timeseries_json",
    "read_timeseries_json",
    # SLOs
    "ALERT_STATES",
    "SLOSpec",
    "AlertEvent",
    "SLOTracker",
    "SLOBoard",
    "default_fleet_slos",
    "evaluate_slos",
    "load_slo_specs",
    "get_slo_board",
    "set_slo_specs",
    "update_slos",
    # flight recorder
    "FlightRecorder",
    "get_flight_recorder",
    "set_flight_recorder",
    "flight_record",
    "postmortem",
    "write_flight_json",
    # dashboard
    "render_dashboard",
    "sparkline",
]

#: File handle configure() opened for --trace-out (closed by shutdown()).
_owned_trace_file: Optional[TextIO] = None

#: Path configure() was told to flush the registry to on shutdown().
_metrics_out_path: Optional[str] = None

#: Whether shutdown() is already registered with atexit.  Registration is
#: lazy — only once configure() takes ownership of an output — so merely
#: importing repro.obs leaves the interpreter's exit path untouched.
_atexit_registered = False


def _register_atexit() -> None:
    global _atexit_registered
    if not _atexit_registered:
        atexit.register(shutdown)
        _atexit_registered = True


def is_enabled() -> bool:
    """Whether metrics/span collection is currently on."""
    return _state.enabled


def configure(
    enabled: Optional[bool] = None,
    log_level: Optional[Union[int, str]] = None,
    log_sink: Optional[TextIO] = None,
    trace_out: Optional[str] = None,
    trace_sink: Optional[TextIO] = None,
    metrics_out: Optional[str] = None,
) -> None:
    """Global observability entry point.

    Parameters
    ----------
    enabled:
        Turn metrics + span collection on/off.  Defaults to leaving the
        switch alone, except that requesting a trace destination implies
        ``enabled=True`` (a trace file nobody writes to helps no one).
    log_level:
        Threshold for the structured logger (``"debug"``/``"info"``/
        ``"warning"``/``"error"`` or a numeric level).
    log_sink:
        Text stream for log lines (default ``sys.stderr``).
    trace_out:
        Path to open (truncating) for streaming span JSON lines;
        :func:`shutdown` closes it.
    trace_sink:
        Already-open text stream for spans (caller keeps ownership);
        mutually exclusive with ``trace_out``.
    metrics_out:
        Path to dump the registry to (JSON) when :func:`shutdown` runs;
        implies ``enabled=True`` unless overridden.

    Taking ownership of an output (``trace_out`` or ``metrics_out``)
    registers :func:`shutdown` with :mod:`atexit`, so the files are
    flushed even when a CLI experiment dies mid-run.
    """
    global _owned_trace_file, _metrics_out_path
    if trace_out is not None and trace_sink is not None:
        raise ValueError("pass trace_out or trace_sink, not both")
    if log_level is not None:
        get_logger().set_level(log_level)
    if log_sink is not None:
        get_logger().set_sink(log_sink)
    if trace_out is not None:
        if _owned_trace_file is not None:
            _owned_trace_file.close()
        _owned_trace_file = open(trace_out, "w", encoding="utf-8")
        get_tracer().set_sink(_owned_trace_file)
        _register_atexit()
        if enabled is None:
            enabled = True
    elif trace_sink is not None:
        get_tracer().set_sink(trace_sink)
        if enabled is None:
            enabled = True
    if metrics_out is not None:
        _metrics_out_path = metrics_out
        _register_atexit()
        if enabled is None:
            enabled = True
    if enabled is not None:
        _state.enabled = bool(enabled)


def shutdown() -> None:
    """Flush owned outputs: write the registry to ``metrics_out`` (if
    configured) and close any trace file configure() opened.  Idempotent,
    and registered with atexit once configure() owns an output."""
    global _owned_trace_file, _metrics_out_path
    if _metrics_out_path is not None:
        path, _metrics_out_path = _metrics_out_path, None
        write_metrics_json(path)
    get_tracer().set_sink(None)
    if _owned_trace_file is not None:
        _owned_trace_file.close()
        _owned_trace_file = None


def reset() -> None:
    """Return observability to its import-time state (used by tests):
    disabled, empty registry/tracer/time-series/flight state, no SLO
    board, logger back to WARNING/stderr."""
    shutdown()
    _state.enabled = False
    get_registry().reset()
    get_timeseries().clear()
    get_flight_recorder().clear()
    set_slo_specs(())
    tracer = get_tracer()
    tracer.clear()
    logger = get_logger()
    logger.set_level("warning")
    logger.set_sink(None)
