"""``repro.obs`` — observability substrate for the marshalling pipeline.

The paper's contribution is an accounting argument (which stage eats the
time and money — §VI.H, Figs. 8–10), so the reproduction carries its own
runtime accounting: a metrics registry (counters / gauges / streaming
histograms), nested wall-clock spans, and a structured JSON-lines logger.
Instrumented hot paths: the trainer, the stream marshaller, the simulated
cloud service, conformal calibration, and the experiment harness.

Design rules every instrumented module relies on:

* **zero third-party dependencies** — numpy and the standard library only;
* **default-off-cheap** — with instrumentation disabled every helper here
  is a sub-microsecond no-op (benchmarked in ``tests/obs``), so the tier-1
  suite and library users pay nothing;
* **thread-safe** — per-thread span stacks, locked metrics — because later
  PRs parallelise the harness.

Typical use::

    from repro import obs

    obs.configure(enabled=True, log_level="info", trace_out="trace.jsonl")
    ...  # run experiments; spans/counters/logs collect themselves
    text = obs.render_registry()          # human-readable tables
    obs.write_metrics_json("metrics.json")
    obs.shutdown()                        # flush + close the trace file

or from the shell: ``python -m repro.cli metrics --task TA10`` and the
``--trace-out`` / ``--log-level`` flags on every experiment command.
"""

from __future__ import annotations

from typing import Optional, TextIO, Union

from . import _state
from .export import (
    STAGE_COUNTERS,
    read_metrics_json,
    render_registry,
    render_stage_shares,
    render_table,
    render_trace_totals,
    stage_timing_from_counters,
    write_metrics_json,
)
from .logger import (
    LEVELS,
    StructuredLogger,
    get_logger,
    log_debug,
    log_error,
    log_event,
    log_info,
    log_warning,
)
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    inc,
    observe,
    set_gauge,
    set_registry,
)
from .spans import SpanRecord, Tracer, get_tracer, span

__all__ = [
    "configure",
    "shutdown",
    "reset",
    "is_enabled",
    # registry
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "inc",
    "set_gauge",
    "observe",
    # spans
    "SpanRecord",
    "Tracer",
    "span",
    "get_tracer",
    # logging
    "LEVELS",
    "StructuredLogger",
    "get_logger",
    "log_event",
    "log_debug",
    "log_info",
    "log_warning",
    "log_error",
    # exporters
    "STAGE_COUNTERS",
    "render_table",
    "render_registry",
    "render_trace_totals",
    "render_stage_shares",
    "stage_timing_from_counters",
    "write_metrics_json",
    "read_metrics_json",
]

#: File handle configure() opened for --trace-out (closed by shutdown()).
_owned_trace_file: Optional[TextIO] = None


def is_enabled() -> bool:
    """Whether metrics/span collection is currently on."""
    return _state.enabled


def configure(
    enabled: Optional[bool] = None,
    log_level: Optional[Union[int, str]] = None,
    log_sink: Optional[TextIO] = None,
    trace_out: Optional[str] = None,
    trace_sink: Optional[TextIO] = None,
) -> None:
    """Global observability entry point.

    Parameters
    ----------
    enabled:
        Turn metrics + span collection on/off.  Defaults to leaving the
        switch alone, except that requesting a trace destination implies
        ``enabled=True`` (a trace file nobody writes to helps no one).
    log_level:
        Threshold for the structured logger (``"debug"``/``"info"``/
        ``"warning"``/``"error"`` or a numeric level).
    log_sink:
        Text stream for log lines (default ``sys.stderr``).
    trace_out:
        Path to open (truncating) for streaming span JSON lines;
        :func:`shutdown` closes it.
    trace_sink:
        Already-open text stream for spans (caller keeps ownership);
        mutually exclusive with ``trace_out``.
    """
    global _owned_trace_file
    if trace_out is not None and trace_sink is not None:
        raise ValueError("pass trace_out or trace_sink, not both")
    if log_level is not None:
        get_logger().set_level(log_level)
    if log_sink is not None:
        get_logger().set_sink(log_sink)
    if trace_out is not None:
        if _owned_trace_file is not None:
            _owned_trace_file.close()
        _owned_trace_file = open(trace_out, "w", encoding="utf-8")
        get_tracer().set_sink(_owned_trace_file)
        if enabled is None:
            enabled = True
    elif trace_sink is not None:
        get_tracer().set_sink(trace_sink)
        if enabled is None:
            enabled = True
    if enabled is not None:
        _state.enabled = bool(enabled)


def shutdown() -> None:
    """Detach and close any trace file configure() opened (idempotent)."""
    global _owned_trace_file
    get_tracer().set_sink(None)
    if _owned_trace_file is not None:
        _owned_trace_file.close()
        _owned_trace_file = None


def reset() -> None:
    """Return observability to its import-time state (used by tests):
    disabled, empty registry and tracer, logger back to WARNING/stderr."""
    shutdown()
    _state.enabled = False
    get_registry().reset()
    tracer = get_tracer()
    tracer.clear()
    logger = get_logger()
    logger.set_level("warning")
    logger.set_sink(None)
