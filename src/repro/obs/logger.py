"""Structured JSON-lines event logger.

One event per line: ``{"ts": ..., "level": "info", "event": "train.epoch",
...fields}``.  Machine-parseable by design — the lint test in
``tests/obs/test_lint_clean_instrumentation.py`` forbids bare ``print(``
in ``src/repro/`` precisely so diagnostic output flows through here and
stays greppable/aggregatable.

The logger is independent of the metrics/span master switch: it is gated
only by its level threshold (default WARNING, so routine instrumentation
is silent).  The threshold check is a single integer comparison, keeping
disabled ``debug``/``info`` calls effectively free.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Dict, Optional, TextIO, Union

__all__ = [
    "LEVELS",
    "StructuredLogger",
    "get_logger",
    "log_event",
    "log_debug",
    "log_info",
    "log_warning",
    "log_error",
]

LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warning": 30, "error": 40}
_LEVEL_NAMES = {v: k for k, v in LEVELS.items()}


def _level_value(level: Union[int, str]) -> int:
    if isinstance(level, str):
        try:
            return LEVELS[level.lower()]
        except KeyError:
            raise ValueError(
                f"unknown log level {level!r}; choose from {sorted(LEVELS)}"
            ) from None
    return int(level)


class StructuredLogger:
    """Leveled JSON-lines logger writing to a text sink (default stderr)."""

    def __init__(
        self,
        level: Union[int, str] = "warning",
        sink: Optional[TextIO] = None,
    ):
        self._threshold = _level_value(level)
        self._sink = sink

    # ------------------------------------------------------------------
    @property
    def threshold(self) -> int:
        return self._threshold

    def set_level(self, level: Union[int, str]) -> None:
        self._threshold = _level_value(level)

    def set_sink(self, sink: Optional[TextIO]) -> None:
        self._sink = sink

    def is_enabled_for(self, level: Union[int, str]) -> bool:
        return _level_value(level) >= self._threshold

    # ------------------------------------------------------------------
    def log(
        self, level: Union[int, str], event: str, _force: bool = False, **fields
    ) -> None:
        """Emit one structured event if ``level`` passes the threshold.

        ``_force=True`` bypasses the threshold — for output the caller
        explicitly asked for (e.g. ``Trainer(verbose=True)``).
        """
        value = _level_value(level)
        if not _force and value < self._threshold:
            return
        record = {
            "ts": time.time_ns() / 1e9,
            "level": _LEVEL_NAMES.get(value, str(value)),
            "event": event,
        }
        record.update(fields)
        sink = self._sink if self._sink is not None else sys.stderr
        sink.write(json.dumps(record, default=str) + "\n")

    def debug(self, event: str, **fields) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields) -> None:
        self.log("error", event, **fields)


_logger = StructuredLogger()


def get_logger() -> StructuredLogger:
    """The process-wide logger used by all instrumented modules."""
    return _logger


def log_event(level: Union[int, str], event: str, _force: bool = False, **fields) -> None:
    _logger.log(level, event, _force=_force, **fields)


# The suppressed paths below pre-check the threshold before entering
# ``log()`` — debug/info calls sit in hot loops and must stay sub-µs when
# filtered (``_logger`` is a mutated singleton, never rebound, so reading
# its threshold here is safe).
_DEBUG = LEVELS["debug"]
_INFO = LEVELS["info"]


def log_debug(event: str, **fields) -> None:
    if _DEBUG < _logger._threshold:
        return
    _logger.log(_DEBUG, event, **fields)


def log_info(event: str, _force: bool = False, **fields) -> None:
    if not _force and _INFO < _logger._threshold:
        return
    _logger.log(_INFO, event, _force=_force, **fields)


def log_warning(event: str, **fields) -> None:
    _logger.log("warning", event, **fields)


def log_error(event: str, **fields) -> None:
    _logger.log("error", event, **fields)
