"""Per-lane flight recorder: a bounded black box for fleet post-mortems.

When a lane quarantines, a circuit opens, or a ``failure_policy`` trips,
the run-level report tells you *that* it happened; the flight recorder
tells you *what the marshaller was doing* in the ticks leading up to it.
Each lane keeps the last N per-tick records (decisions, scheduler picks,
guard FSM state, breaker state, queue depths) in a ``deque`` ring —
fixed memory regardless of run length — and the fleet tick loop calls
:meth:`FlightRecorder.auto_dump` at the moment of the trip, freezing a
copy of every lane's ring plus the trigger.

Records hold only simulated-clock / tick-indexed fields, so dumps from a
seeded run are byte-for-byte reproducible (pinned in ``tests/fleet``).
The module-level helper :func:`flight_record` is gated on the master
switch and stays sub-microsecond while observability is disabled.
"""

from __future__ import annotations

import json
from collections import OrderedDict, deque
from threading import Lock
from typing import Deque, Dict, List, Optional

from . import _state
from .export import render_table
from .logger import log_warning
from .registry import inc

__all__ = [
    "FlightRecorder",
    "get_flight_recorder",
    "set_flight_recorder",
    "flight_record",
    "postmortem",
    "write_flight_json",
]

#: Pseudo-lane used for fleet-wide per-tick records (queue depths, budget).
FLEET_LANE = "_fleet"


class FlightRecorder:
    """Bounded per-lane ring of tick records with freeze-on-trip dumps."""

    def __init__(self, capacity: int = 64, max_dumps: int = 32):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if max_dumps < 1:
            raise ValueError("max_dumps must be positive")
        self.capacity = int(capacity)
        self.max_dumps = int(max_dumps)
        self._lanes: "OrderedDict[str, Deque[Dict]]" = OrderedDict()
        self._dumps: Deque[Dict] = deque(maxlen=self.max_dumps)
        self._dumps_total = 0
        self._lock = Lock()

    def record(self, lane: str, tick: int, **fields) -> None:
        """Append one tick record for ``lane`` (oldest evicted at capacity)."""
        entry = {"tick": int(tick), **fields}
        with self._lock:
            ring = self._lanes.get(lane)
            if ring is None:
                ring = deque(maxlen=self.capacity)
                self._lanes[lane] = ring
            ring.append(entry)

    def record_many(self, tick: int, entries) -> None:
        """Append one record per ``(lane, fields)`` pair under a single
        lock acquisition — the fleet writes one record per lane per tick,
        and 17 separate lock round-trips add up in the tick path."""
        tick = int(tick)
        with self._lock:
            for lane, fields in entries:
                ring = self._lanes.get(lane)
                if ring is None:
                    ring = deque(maxlen=self.capacity)
                    self._lanes[lane] = ring
                ring.append({"tick": tick, **fields})

    def record_rows(self, tick: int, keys, rows) -> None:
        """Append one record per ``(lane, values)`` pair, all sharing the
        field schema ``keys`` (a tuple, parallel to each values tuple).

        The hottest write path: rows land in the ring as raw
        ``(tick, keys, values)`` triplets — building a dict per lane per
        tick is a third of the recorder's cost on the fleet tick budget —
        and :meth:`snapshot` materialises dicts only when a dump or an
        export actually wants them.
        """
        tick = int(tick)
        with self._lock:
            for lane, values in rows:
                ring = self._lanes.get(lane)
                if ring is None:
                    ring = deque(maxlen=self.capacity)
                    self._lanes[lane] = ring
                ring.append((tick, keys, values))

    def merge_from(self, snapshot: Dict[str, List[Dict]],
                   dumps=()) -> None:
        """Fold another recorder's :meth:`snapshot` (and archived dumps)
        into this one — the coordinator-side aggregation of shard-local
        recorders.

        Records append per lane in snapshot order (rings still evict
        oldest-first at capacity) and merged dumps count toward
        ``dumps_total``.  The caller is responsible for lane-name
        uniqueness across sources (shard workers' fleet pseudo-lanes are
        renamed before merging).
        """
        with self._lock:
            for lane, entries in snapshot.items():
                ring = self._lanes.get(lane)
                if ring is None:
                    ring = deque(maxlen=self.capacity)
                    self._lanes[lane] = ring
                for entry in entries:
                    ring.append(dict(entry))
            for dump in dumps:
                self._dumps.append(dump)
                self._dumps_total += 1

    def lanes(self) -> List[str]:
        with self._lock:
            return list(self._lanes)

    @staticmethod
    def _as_dict(entry) -> Dict:
        if type(entry) is dict:
            return dict(entry)
        tick, keys, values = entry
        out = {"tick": tick}
        out.update(zip(keys, values))
        return out

    def snapshot(self) -> Dict[str, List[Dict]]:
        """Copy of every lane's retained records, oldest first (ring
        triplets from :meth:`record_rows` materialise as dicts here)."""
        with self._lock:
            return {lane: [self._as_dict(e) for e in ring]
                    for lane, ring in self._lanes.items()}

    def auto_dump(self, reason: str, tick: int,
                  lane: Optional[str] = None) -> Dict:
        """Freeze the black box at a trip point and archive the dump."""
        dump = {
            "reason": reason,
            "tick": int(tick),
            "lane": lane,
            "lanes": self.snapshot(),
        }
        with self._lock:
            self._dumps.append(dump)
            self._dumps_total += 1
        inc("flight.dumps")
        log_warning("flight.dump", reason=reason, tick=tick, lane=lane)
        return dump

    @property
    def dumps(self) -> List[Dict]:
        with self._lock:
            return list(self._dumps)

    @property
    def dumps_total(self) -> int:
        return self._dumps_total

    def clear(self) -> None:
        with self._lock:
            self._lanes.clear()
            self._dumps.clear()
            self._dumps_total = 0

    def to_dict(self) -> Dict:
        return {
            "capacity": self.capacity,
            "dumps_total": self._dumps_total,
            "dumps": self.dumps,
            "lanes": self.snapshot(),
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def postmortem(dump: Dict) -> str:
    """Render one :meth:`FlightRecorder.auto_dump` payload as text.

    Header line with the trigger, then one table per lane (the tripping
    lane first) with a column per recorded field.
    """
    lane = dump.get("lane")
    header = (f"flight recorder dump — reason: {dump['reason']} "
              f"· tick {dump['tick']}"
              + (f" · lane {lane}" if lane else ""))
    sections = [header, "=" * len(header)]
    lanes = dump.get("lanes", {})
    ordering = sorted(lanes, key=lambda l: (l != lane, l == FLEET_LANE, l))
    for name in ordering:
        entries = lanes[name]
        if not entries:
            continue
        title = "fleet" if name == FLEET_LANE else f"lane {name}"
        sections.append(f"\n== {title} ==")
        sections.append(render_table(entries))
    return "\n".join(sections)


_default_recorder = FlightRecorder()


def get_flight_recorder() -> FlightRecorder:
    """The process-wide recorder :func:`flight_record` writes to."""
    return _default_recorder


def set_flight_recorder(recorder: FlightRecorder) -> FlightRecorder:
    """Swap the default recorder (e.g. to resize rings); returns the old."""
    global _default_recorder
    old = _default_recorder
    _default_recorder = recorder
    return old


def flight_record(lane: str, tick: int, **fields) -> None:
    """Record into the default recorder (no-op when observability is
    disabled)."""
    if not _state.enabled:
        return
    _default_recorder.record(lane, tick, **fields)


def write_flight_json(path: str,
                      recorder: Optional[FlightRecorder] = None) -> None:
    """Dump ``recorder`` (default recorder if omitted) as indented JSON."""
    recorder = recorder or _default_recorder
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(recorder.to_json(indent=2))
        fh.write("\n")
