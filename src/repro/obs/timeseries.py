"""Fixed-memory time-series sampling over the metrics registry.

Run-level counters answer the paper's §VI.H accounting question *after*
the fact; overload in a fleet forms *during* the run (NoScope-style live
budgets, bursty video workloads).  :class:`TimeSeriesStore` closes that
gap: once per fleet tick it snapshots the default registry and appends a
row to a ring of preallocated numpy arrays — fixed memory no matter how
long the run is.

Per sampled metric kind:

* **counters** are stored as per-tick *deltas* (the rate signal overload
  detection needs), with registry resets tolerated;
* **gauges** are stored as their point-in-time value;
* **histograms** expand into sub-series — ``name.count`` / ``name.sum``
  deltas plus ``name.p50`` / ``name.p95`` / ``name.p99`` point-in-time
  estimates.

Windowed aggregation (:meth:`~TimeSeriesStore.rate`,
:meth:`~TimeSeriesStore.percentile`, :meth:`~TimeSeriesStore.window_stats`)
feeds the SLO burn-rate tracker (:mod:`repro.obs.slo`) and the ``watch``
dashboard; :meth:`~TimeSeriesStore.to_dict` round-trips through strict
JSON (NaN gaps encoded as ``null``) for the ``slo`` CLI.

The module-level helper :func:`record_tick` is gated on the master
switch and stays sub-microsecond while observability is disabled
(benchmarked in ``tests/obs``).
"""

from __future__ import annotations

import json
import math
import threading
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from . import _state
from .registry import Counter, Gauge, Histogram, MetricsRegistry, get_registry

__all__ = [
    "TimeSeriesStore",
    "get_timeseries",
    "set_timeseries",
    "record_tick",
    "write_timeseries_json",
    "read_timeseries_json",
]

class TimeSeriesStore:
    """Ring buffer of per-tick registry samples with windowed aggregation.

    ``capacity`` bounds memory: each series is one preallocated float64
    array of that length, and once more than ``capacity`` samples have
    been taken the oldest rows are overwritten.  Series appear lazily the
    first time their metric shows up in a sample; earlier positions stay
    NaN, and NaN is ignored by every aggregate (it means "no data", not
    zero).
    """

    def __init__(self, capacity: int = 720):
        if capacity < 2:
            raise ValueError("capacity must be at least 2")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._ticks = np.full(self.capacity, -1, dtype=np.int64)
        self._series: Dict[str, np.ndarray] = {}
        self._count = 0  # samples taken ever (monotonic)
        self._auto_tick = 0
        self._last_counter: Dict[str, float] = {}
        self._last_hist: Dict[str, Tuple[float, float]] = {}
        # Cached sampling plan: (registry, registry version, metric items,
        # ring arrays in emitted order).  Valid until the registry's metric
        # set changes; lets the steady-state sample skip the registry lock,
        # the row dict, and the per-name array lookups.
        self._plan: Optional[Tuple] = None

    # ------------------------------------------------------------------
    # sampling

    def sample(self, registry: Optional[MetricsRegistry] = None,
               tick: Optional[int] = None) -> int:
        """Append one row sampled from ``registry`` (default registry if
        omitted); returns the tick id recorded for the row.

        Reads each metric through its allocation-lean accessor rather
        than ``registry.snapshot()``: this runs once per fleet tick, and
        the snapshot's dict-per-metric deep copy both costs time and
        churns enough containers to drag GC sweeps into the tick path
        (see ``benchmarks/test_fleet_telemetry_overhead.py``).  While the
        registry's metric *set* is unchanged (keyed on its version
        counter) a cached plan maps metrics straight onto their ring
        arrays, skipping the registry lock and all per-name lookups.
        """
        reg = registry or get_registry()
        version = reg._version
        with self._lock:
            plan = self._plan
            if (plan is not None and plan[0] is reg and plan[1] == version):
                return self._sample_planned(plan, tick)
            with reg._lock:
                metrics = list(reg._metrics.items())
            row: Dict[str, float] = {}
            plan_metrics = []
            for name, metric in metrics:
                # Counter/gauge values are single floats, so the bare
                # attribute reads are atomic under the GIL — no need for
                # the metric locks on this per-tick path.
                if isinstance(metric, Counter):
                    row[name] = self._delta(
                        self._last_counter, name, metric._value
                    )
                elif isinstance(metric, Gauge):
                    value = metric._value
                    row[name] = value if value is not None else float("nan")
                elif isinstance(metric, Histogram):
                    count, total, p50, p95, p99 = metric.sample_stats()
                    last_count, last_sum = self._last_hist.get(
                        name, (0.0, 0.0)
                    )
                    dcount = count - last_count
                    dsum = total - last_sum
                    if dcount < 0:  # registry reset under us: fresh books
                        dcount, dsum = count, total
                    row[name + ".count"] = dcount
                    row[name + ".sum"] = dsum
                    self._last_hist[name] = (count, total)
                    row[name + ".p50"] = p50
                    row[name + ".p95"] = p95
                    row[name + ".p99"] = p99
                else:
                    continue
                plan_metrics.append((name, metric))
            if tick is None:
                tick = self._auto_tick
            self._auto_tick = tick + 1
            pos = self._count % self.capacity
            self._ticks[pos] = tick
            for name, value in row.items():
                arr = self._series.get(name)
                if arr is None:
                    arr = np.full(self.capacity, np.nan)
                    self._series[name] = arr
                arr[pos] = value
            vanished = []
            if len(self._series) != len(row):
                # Every row name was just written into _series, so equal
                # sizes mean equal key sets; a mismatch means some metric
                # vanished (registry reset) and its row must gap to NaN.
                vanished = [arr for name, arr in self._series.items()
                            if name not in row]
                for arr in vanished:
                    arr[pos] = np.nan
            self._count += 1
            # Row insertion order is the emitted order, so the arrays can
            # be replayed positionally on the next (planned) sample;
            # vanished series ride along so their NaN gap keeps advancing
            # once the ring laps old data.
            self._plan = (reg, version, plan_metrics,
                          [self._series[n] for n in row], vanished)
        return tick

    def _sample_planned(self, plan: Tuple, tick: Optional[int]) -> int:
        """Steady-state sample along a cached plan (lock held): same
        metrics, same emitted order, arrays written positionally."""
        vals: List[float] = []
        append = vals.append
        for name, metric in plan[2]:
            if isinstance(metric, Counter):
                append(self._delta(self._last_counter, name, metric._value))
            elif isinstance(metric, Gauge):
                value = metric._value
                append(value if value is not None else float("nan"))
            else:
                count, total, p50, p95, p99 = metric.sample_stats()
                last_count, last_sum = self._last_hist.get(name, (0.0, 0.0))
                dcount = count - last_count
                dsum = total - last_sum
                if dcount < 0:  # registry reset under us: fresh books
                    dcount, dsum = count, total
                self._last_hist[name] = (count, total)
                append(dcount)
                append(dsum)
                append(p50)
                append(p95)
                append(p99)
        if tick is None:
            tick = self._auto_tick
        self._auto_tick = tick + 1
        pos = self._count % self.capacity
        self._ticks[pos] = tick
        for arr, value in zip(plan[3], vals):
            arr[pos] = value
        for arr in plan[4]:
            arr[pos] = np.nan
        self._count += 1
        return tick

    @staticmethod
    def _delta(book: Dict[str, float], name: str, total: float) -> float:
        prev = book.get(name, 0.0)
        book[name] = total
        delta = total - prev
        return total if delta < 0 else delta

    # ------------------------------------------------------------------
    # reading

    @property
    def num_samples(self) -> int:
        return min(self._count, self.capacity)

    def _order(self) -> np.ndarray:
        """Ring positions oldest → newest (call with the lock held)."""
        if self._count <= self.capacity:
            return np.arange(self._count)
        pos = self._count % self.capacity
        return np.concatenate([np.arange(pos, self.capacity),
                               np.arange(pos)])

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._series)

    def ticks(self) -> np.ndarray:
        """Tick ids of the retained samples, oldest first."""
        with self._lock:
            return self._ticks[self._order()].copy()

    def values(self, name: str, window: Optional[int] = None) -> np.ndarray:
        """Values of series ``name`` oldest first (last ``window`` samples
        if given).  Unknown series yield an all-NaN window."""
        with self._lock:
            order = self._order()
            arr = self._series.get(name)
            out = (np.full(len(order), np.nan) if arr is None
                   else arr[order].copy())
        if window is not None:
            out = out[-int(window):]
        return out

    def latest(self, name: str) -> float:
        # O(1) read of the newest row — the SLO board calls this once per
        # spec per tick, so it must not materialise the ring ordering.
        with self._lock:
            if not self._count:
                return float("nan")
            arr = self._series.get(name)
            if arr is None:
                return float("nan")
            return float(arr[(self._count - 1) % self.capacity])

    def latest_many(self, names: Sequence[str]) -> List[float]:
        """Newest value of each series under one lock acquisition."""
        with self._lock:
            if not self._count:
                return [float("nan")] * len(names)
            pos = (self._count - 1) % self.capacity
            out = []
            for name in names:
                arr = self._series.get(name)
                out.append(
                    float(arr[pos]) if arr is not None else float("nan")
                )
            return out

    def rate(self, name: str, window: Optional[int] = None) -> float:
        """Mean per-tick value over the window (NaN rows ignored)."""
        values = self.values(name, window)
        valid = values[~np.isnan(values)]
        return float(valid.mean()) if len(valid) else float("nan")

    def total(self, name: str, window: Optional[int] = None) -> float:
        values = self.values(name, window)
        valid = values[~np.isnan(values)]
        return float(valid.sum()) if len(valid) else float("nan")

    def percentile(self, name: str, q: float,
                   window: Optional[int] = None) -> float:
        values = self.values(name, window)
        valid = values[~np.isnan(values)]
        return float(np.percentile(valid, q)) if len(valid) else float("nan")

    def window_stats(self, name: str,
                     window: Optional[int] = None) -> Dict[str, float]:
        """Summary of the last ``window`` samples: n/mean/min/max/last and
        p50/p95/p99."""
        values = self.values(name, window)
        valid = values[~np.isnan(values)]
        if not len(valid):
            return {k: float("nan") for k in
                    ("n", "mean", "min", "max", "last", "p50", "p95", "p99")}
        p50, p95, p99 = np.percentile(valid, [50, 95, 99])
        return {
            "n": float(len(valid)),
            "mean": float(valid.mean()),
            "min": float(valid.min()),
            "max": float(valid.max()),
            "last": float(valid[-1]),
            "p50": float(p50),
            "p95": float(p95),
            "p99": float(p99),
        }

    # ------------------------------------------------------------------
    # lifecycle / serialisation

    def clear(self) -> None:
        with self._lock:
            self._ticks.fill(-1)
            self._series.clear()
            self._count = 0
            self._auto_tick = 0
            self._last_counter.clear()
            self._last_hist.clear()
            self._plan = None

    def to_dict(self) -> Dict:
        """Strict-JSON-safe dict (NaN encoded as ``None``), oldest first."""
        with self._lock:
            order = self._order()
            return {
                "capacity": self.capacity,
                "ticks": [int(t) for t in self._ticks[order]],
                "series": {
                    name: [None if math.isnan(v) else float(v)
                           for v in arr[order]]
                    for name, arr in sorted(self._series.items())
                },
            }

    @classmethod
    def from_dict(cls, data: Dict) -> "TimeSeriesStore":
        ticks = data.get("ticks", [])
        capacity = max(int(data.get("capacity", 720)), len(ticks), 2)
        store = cls(capacity=capacity)
        n = len(ticks)
        store._count = n
        store._ticks[:n] = np.asarray(ticks, dtype=np.int64)
        store._auto_tick = (int(ticks[-1]) + 1) if n else 0
        for name, values in data.get("series", {}).items():
            arr = np.full(capacity, np.nan)
            arr[:n] = [np.nan if v is None else float(v) for v in values]
            store._series[name] = arr
        return store

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "TimeSeriesStore":
        return cls.from_dict(json.loads(text))


_default_store = TimeSeriesStore()


def get_timeseries() -> TimeSeriesStore:
    """The process-wide store :func:`record_tick` samples into."""
    return _default_store


def set_timeseries(store: TimeSeriesStore) -> TimeSeriesStore:
    """Swap the default store (e.g. to resize the ring); returns the old."""
    global _default_store
    old = _default_store
    _default_store = store
    return old


def record_tick(tick: Optional[int] = None) -> Optional[int]:
    """Sample the default registry into the default store (no-op when
    observability is disabled); returns the recorded tick id."""
    if not _state.enabled:
        return None
    return _default_store.sample(tick=tick)


def write_timeseries_json(path: str,
                          store: Optional[TimeSeriesStore] = None) -> None:
    """Dump ``store`` (default store if omitted) as indented JSON."""
    store = store or _default_store
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(store.to_json(indent=2))
        fh.write("\n")


def read_timeseries_json(path: str) -> TimeSeriesStore:
    with open(path, "r", encoding="utf-8") as fh:
        return TimeSeriesStore.from_json(fh.read())
