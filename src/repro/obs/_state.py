"""Shared observability switch.

A single module-level flag keeps the hot-path check for "is any
instrumentation active?" to one attribute load.  The flag is flipped only
through :func:`repro.obs.configure`; instrumented call sites must treat it
as read-only.  Keeping it in a leaf module avoids import cycles: every
other ``repro.obs`` module (and every instrumented subsystem) may import
this one, and this one imports nothing from the package.
"""

from __future__ import annotations

#: Master switch for metrics + span collection.  Structured logging has its
#: own level threshold and is not gated by this flag.
enabled: bool = False
