"""Terminal dashboard renderer for the ``watch`` CLI subcommand.

Pure functions from telemetry state (a :class:`TimeSeriesStore`, an
:class:`SLOBoard`, a :class:`FlightRecorder`) to a text frame — the CLI
owns the clear-screen/redraw loop, so every section here is unit-testable
on synthetic stores without a TTY.  Colour is plain SGR escapes gated on
a flag (``--plain`` turns them off for logs and tests).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from .export import _fmt, render_table
from .flight import FlightRecorder
from .slo import SLOBoard
from .timeseries import TimeSeriesStore

__all__ = ["sparkline", "render_dashboard"]

_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"
_SGR = {"green": "32", "yellow": "33", "red": "31", "bold": "1", "dim": "2"}
_STATE_COLOR = {"ok": "green", "warning": "yellow", "page": "red"}

#: Series surfaced in the gauge/rate panes, in display order.  Missing
#: ones are skipped, so the dashboard degrades gracefully on runs that
#: exercise only part of the pipeline.
GAUGE_SERIES = (
    "fleet.backlog.frames",
    "fleet.backlog.segments",
    "fleet.budget.utilization",
    "fleet.lanes_quarantined",
    "fleet.recall_cum",
    "fleet.frames_lost_ratio",
    "fleet.tick_cost",
    "ci.resilient.budget_remaining",
    "ci.breaker.state_code",
)
RATE_SERIES = (
    "stage.frames_relayed",
    "marshal.segments_relayed",
    "marshal.segments_deferred",
    "fleet.sched.flushed",
    "fleet.sched.postponed",
    "ci.retries",
)


def _paint(text: str, color: Optional[str], enabled: bool) -> str:
    if not enabled or color is None:
        return text
    return f"\x1b[{_SGR[color]}m{text}\x1b[0m"


def sparkline(values: Sequence[float], width: int = 24) -> str:
    """Unicode block-glyph trend of the last ``width`` values (NaN-safe)."""
    tail = list(values)[-width:]
    finite = [v for v in tail if not math.isnan(v) and not math.isinf(v)]
    if not finite:
        return ""
    lo, hi = min(finite), max(finite)
    span = hi - lo
    chars = []
    for value in tail:
        if math.isnan(value) or math.isinf(value):
            chars.append(" ")
            continue
        if span <= 0:
            chars.append(_SPARK_GLYPHS[0])
            continue
        idx = int((value - lo) / span * (len(_SPARK_GLYPHS) - 1))
        chars.append(_SPARK_GLYPHS[idx])
    return "".join(chars)


def _series_rows(store: TimeSeriesStore, names: Sequence[str],
                 window: int) -> List[Dict]:
    rows = []
    for name in names:
        values = store.values(name, window=window)
        finite = values[~(values != values)]
        if not len(finite):
            continue
        stats = store.window_stats(name, window=window)
        rows.append({
            "series": name,
            "last": stats["last"],
            "mean": stats["mean"],
            "max": stats["max"],
            "trend": sparkline(values),
        })
    return rows


def render_dashboard(
    store: TimeSeriesStore,
    board: Optional[SLOBoard] = None,
    flight: Optional[FlightRecorder] = None,
    tick: Optional[int] = None,
    title: str = "repro watch",
    window: int = 24,
    color: bool = True,
) -> str:
    """One full ``top``-style frame of the live fleet telemetry."""
    sections: List[str] = []

    badge = ""
    if board is not None and board.trackers:
        worst = board.worst_state
        badge = "  [" + _paint(f"SLO: {worst}",
                               _STATE_COLOR[worst], color) + "]"
    tick_part = f" — tick {tick}" if tick is not None else ""
    header = _paint(f"{title}{tick_part}", "bold", color) + badge
    sections.append(header)

    gauge_rows = _series_rows(store, GAUGE_SERIES, window)
    if gauge_rows:
        sections.append(_paint("== backpressure & health ==", "dim", color))
        sections.append(render_table(gauge_rows))

    rate_rows = _series_rows(store, RATE_SERIES, window)
    if rate_rows:
        sections.append(_paint("== rates (per tick) ==", "dim", color))
        sections.append(render_table(rate_rows))

    if board is not None and board.trackers:
        sections.append(_paint("== SLOs ==", "dim", color))
        slo_rows = []
        for summary in board.summaries():
            state = summary["state"]
            slo_rows.append({
                "slo": summary["slo"],
                "state": _paint(state, _STATE_COLOR[state], color),
                "value": _fmt(summary["value"]),
                "target": f"{summary['objective']} {_fmt(summary['target'])}",
                "burn_s": _fmt(summary["burn_short"]),
                "burn_l": _fmt(summary["burn_long"]),
            })
        sections.append(render_table(slo_rows))
        events = board.timeline()[-5:]
        if events:
            sections.append(_paint("== recent alerts ==", "dim", color))
            sections.append(render_table(events))

    if flight is not None and flight.dumps_total:
        dumps = flight.dumps
        line = (f"flight dumps: {flight.dumps_total} "
                f"(last: {dumps[-1]['reason']} @ tick {dumps[-1]['tick']}"
                + (f", lane {dumps[-1]['lane']}" if dumps[-1]["lane"] else "")
                + ")")
        sections.append(_paint(line, "red", color))

    return "\n".join(sections) + "\n"
