"""Declarative SLOs with rolling error budgets and burn-rate alerting.

An :class:`SLOSpec` names a time-series (a :mod:`repro.obs.timeseries`
series such as a gauge, a counter delta, or a histogram percentile
sub-series), an objective direction (``floor``: values must stay at or
above the target; ``ceiling``: at or below), and an error budget — the
fraction of ticks allowed to violate the target.

Alerting follows the multi-window burn-rate scheme from SRE practice:
per tick the tracker computes the violating-tick fraction over a short
and a long window, divides each by the budget to get a *burn rate*
(burn 1.0 = spending the budget exactly as fast as allowed), and drives
an ok → warning → page FSM off the *smaller* of the two burns — paging
needs both windows hot (the long window filters blips, the short window
makes recovery immediate), which is the standard guard against both
flappy and stale alerts.

Everything runs on tick indices from the simulated clock, so a seeded
chaos run produces a byte-for-byte reproducible alert timeline (pinned
in ``tests/fleet``).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import asdict, dataclass
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

from . import _state
from .logger import log_warning
from .registry import inc
from .timeseries import TimeSeriesStore, get_timeseries

__all__ = [
    "SLOSpec",
    "AlertEvent",
    "SLOTracker",
    "SLOBoard",
    "ALERT_STATES",
    "default_fleet_slos",
    "evaluate_slos",
    "load_slo_specs",
    "get_slo_board",
    "set_slo_specs",
    "update_slos",
]

ALERT_STATES = ("ok", "warning", "page")
OBJECTIVES = ("floor", "ceiling")


@dataclass(frozen=True)
class SLOSpec:
    """One service-level objective over a telemetry series.

    ``budget`` is the rolling error budget: the fraction of ticks in the
    long window allowed to violate ``target`` before burn rate 1.0 is
    reached.  ``warn_burn``/``page_burn`` are the burn-rate thresholds
    for the alert FSM.
    """

    name: str
    series: str
    objective: str          # "floor" | "ceiling"
    target: float
    budget: float = 0.05
    long_window: int = 36
    short_window: int = 6
    warn_burn: float = 1.0
    page_burn: float = 3.0
    description: str = ""

    def __post_init__(self):
        if self.objective not in OBJECTIVES:
            raise ValueError(
                f"objective must be one of {OBJECTIVES}, got {self.objective!r}")
        if not 0 < self.budget <= 1:
            raise ValueError("budget must be in (0, 1]")
        if self.short_window < 1 or self.long_window < self.short_window:
            raise ValueError("need 1 <= short_window <= long_window")
        if self.page_burn < self.warn_burn:
            raise ValueError("page_burn must be >= warn_burn")

    def violated(self, value: float) -> bool:
        """Whether ``value`` breaks the target (NaN = no data = no
        violation; absence of signal is not an SLO breach)."""
        if value != value:  # NaN
            return False
        if self.objective == "floor":
            return value < self.target
        return value > self.target

    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "SLOSpec":
        return cls(**data)


@dataclass(frozen=True)
class AlertEvent:
    """One FSM transition in an SLO's alert timeline."""

    tick: int
    slo: str
    from_state: str
    to_state: str
    value: float
    burn_short: float
    burn_long: float

    def to_dict(self) -> Dict:
        return asdict(self)


class SLOTracker:
    """Rolling burn-rate evaluation and alert FSM for one spec."""

    def __init__(self, spec: SLOSpec):
        self.spec = spec
        self.state = "ok"
        self.events: List[AlertEvent] = []
        self.ticks_evaluated = 0
        self.violations_total = 0
        self.last_value = float("nan")
        self.burn_short = 0.0
        self.burn_long = 0.0
        self._window: Deque[bool] = deque(maxlen=spec.long_window)
        self._window_sum = 0
        self._short: Deque[bool] = deque(maxlen=spec.short_window)
        self._short_sum = 0

    def observe(self, value: float, tick: int) -> str:
        """Feed the tick's value; returns the (possibly new) alert state."""
        spec = self.spec
        violated = spec.violated(value)
        # Maintain both rolling violation counts incrementally (this runs
        # once per spec per fleet tick): subtract the sample the bounded
        # deque is about to evict, then add the new one.
        if len(self._window) == spec.long_window:
            self._window_sum -= self._window[0]
        self._window.append(violated)
        self._window_sum += violated
        if len(self._short) == spec.short_window:
            self._short_sum -= self._short[0]
        self._short.append(violated)
        self._short_sum += violated
        self.ticks_evaluated += 1
        self.violations_total += int(violated)
        self.last_value = value
        self.burn_long = (self._window_sum / len(self._window)) / spec.budget
        self.burn_short = (self._short_sum / len(self._short)) / spec.budget
        burn = min(self.burn_short, self.burn_long)
        if burn >= spec.page_burn:
            new_state = "page"
        elif burn >= spec.warn_burn:
            new_state = "warning"
        else:
            new_state = "ok"
        if new_state != self.state:
            event = AlertEvent(
                tick=tick, slo=spec.name,
                from_state=self.state, to_state=new_state,
                value=float(value),
                burn_short=self.burn_short, burn_long=self.burn_long,
            )
            self.events.append(event)
            inc(f"slo.transitions.{new_state}")
            if new_state != "ok":
                log_warning("slo.alert", slo=spec.name, state=new_state,
                            tick=tick, value=float(value),
                            burn_short=self.burn_short,
                            burn_long=self.burn_long)
            self.state = new_state
        return self.state

    def summary(self) -> Dict:
        frac = (self.violations_total / self.ticks_evaluated
                if self.ticks_evaluated else 0.0)
        return {
            "slo": self.spec.name,
            "series": self.spec.series,
            "objective": self.spec.objective,
            "target": self.spec.target,
            "state": self.state,
            "value": self.last_value,
            "burn_short": self.burn_short,
            "burn_long": self.burn_long,
            "violating_frac": frac,
            "ticks": self.ticks_evaluated,
        }


class SLOBoard:
    """A set of trackers updated together from a time-series store."""

    def __init__(self, specs: Iterable[SLOSpec] = ()):
        self.trackers = [SLOTracker(spec) for spec in specs]
        # Series names in tracker order, built once: update() runs every
        # fleet tick and must not re-derive this list per call.
        self._series_names = [t.spec.series for t in self.trackers]

    @property
    def specs(self) -> List[SLOSpec]:
        return [t.spec for t in self.trackers]

    def update(self, store: Optional[TimeSeriesStore] = None,
               tick: int = 0) -> None:
        """Evaluate every spec against the latest sample in ``store``."""
        store = store or get_timeseries()
        values = store.latest_many(self._series_names)
        for tracker, value in zip(self.trackers, values):
            tracker.observe(value, tick)

    def replay(self, store: TimeSeriesStore) -> None:
        """Reset all trackers and re-evaluate them over every retained
        sample in ``store``, oldest first (offline ``slo`` evaluation)."""
        self.trackers = [SLOTracker(spec) for spec in self.specs]
        ticks = store.ticks()
        columns = {t.spec.series: store.values(t.spec.series)
                   for t in self.trackers}
        for i, tick in enumerate(ticks):
            for tracker in self.trackers:
                tracker.observe(float(columns[tracker.spec.series][i]),
                                int(tick))

    def states(self) -> Dict[str, str]:
        return {t.spec.name: t.state for t in self.trackers}

    @property
    def worst_state(self) -> str:
        worst = 0
        for tracker in self.trackers:
            worst = max(worst, ALERT_STATES.index(tracker.state))
        return ALERT_STATES[worst]

    def timeline(self) -> List[Dict]:
        """All alert events across trackers, ordered by (tick, slo)."""
        events = [e.to_dict() for t in self.trackers for e in t.events]
        return sorted(events, key=lambda e: (e["tick"], e["slo"]))

    def summaries(self) -> List[Dict]:
        return [t.summary() for t in self.trackers]

    def to_dict(self) -> Dict:
        return {
            "specs": [s.to_dict() for s in self.specs],
            "states": self.states(),
            "timeline": self.timeline(),
            "summaries": self.summaries(),
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def default_fleet_slos(
    recall_floor: float = 0.85,
    latency_p99_seconds: float = 2.0,
    cost_per_tick: float = 25.0,
    frames_lost_ratio: float = 0.05,
    model_staleness_ticks: float = 500.0,
    shard_availability: float = 0.75,
) -> Tuple[SLOSpec, ...]:
    """The standing objectives the fleet runs track by default.

    The model-staleness entry only produces samples when a
    :class:`~repro.lifecycle.LifecycleController` is attached (its gauge
    is otherwise never set, and a series with no samples never violates);
    likewise the shard-availability entry samples only when a
    :class:`~repro.fleet.supervisor.ShardSupervisor` drives a sharded
    run (the supervisor records its live-shard ratio on every liveness
    transition).
    """
    return (
        SLOSpec(
            name="recall-floor", series="fleet.recall_cum",
            objective="floor", target=recall_floor, budget=0.25,
            description="cumulative event-frame recall across the fleet",
        ),
        SLOSpec(
            name="tick-latency-p99", series="fleet.tick_seconds.p99",
            objective="ceiling", target=latency_p99_seconds, budget=0.05,
            description="wall-clock p99 of one fleet tick",
        ),
        SLOSpec(
            name="cloud-cost-budget", series="fleet.tick_cost",
            objective="ceiling", target=cost_per_tick, budget=0.10,
            description="simulated cloud spend per tick",
        ),
        SLOSpec(
            name="frames-lost-ratio", series="fleet.frames_lost_ratio",
            objective="ceiling", target=frames_lost_ratio, budget=0.10,
            description="cumulative frames lost / frames covered",
        ),
        SLOSpec(
            name="model-staleness", series="lifecycle.model_staleness",
            objective="ceiling", target=model_staleness_ticks, budget=0.10,
            description="ticks since the serving model was last refreshed",
        ),
        SLOSpec(
            name="shard-availability", series="fleet.supervisor.live_ratio",
            objective="floor", target=shard_availability, budget=0.25,
            description="live shard workers / total shards (supervised runs)",
        ),
    )


def evaluate_slos(specs: Sequence[SLOSpec],
                  store: TimeSeriesStore) -> SLOBoard:
    """Replay ``specs`` over every sample retained in ``store``."""
    board = SLOBoard(specs)
    board.replay(store)
    return board


def load_slo_specs(path: str) -> List[SLOSpec]:
    """Read a JSON list of spec dicts (the ``--slo-spec`` file format)."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, list):
        raise ValueError("SLO spec file must be a JSON list of spec objects")
    return [SLOSpec.from_dict(item) for item in data]


_default_board = SLOBoard()


def get_slo_board() -> SLOBoard:
    """The process-wide board :func:`update_slos` drives."""
    return _default_board


def set_slo_specs(specs: Iterable[SLOSpec]) -> SLOBoard:
    """Install a fresh default board tracking ``specs``; returns it."""
    global _default_board
    _default_board = SLOBoard(specs)
    return _default_board


def update_slos(tick: int) -> None:
    """Evaluate the default board against the default time-series store
    (no-op when observability is disabled or no specs are installed)."""
    if not _state.enabled:
        return
    if not _default_board.trackers:
        return
    _default_board.update(get_timeseries(), tick)
