"""Exporters: render a registry/trace for humans or dump them to JSON.

Two render targets:

* aligned plain-text tables (``render_registry``, ``render_stage_shares``)
  for the CLI's ``metrics`` subcommand;
* JSON files (``write_metrics_json`` / ``read_metrics_json``) so a run's
  metrics can be archived next to its figures and re-rendered later.

``stage_timing_from_counters`` is the bridge to the paper's §VI.H
accounting: the pipeline records *work* counters (frames featurized,
predictions made, frames relayed) and the analytic
:class:`~repro.metrics.timing.TimingModel` converts them into per-stage
time shares — the same derivation as Figs. 9–10, now driven by live
instrumentation instead of hand-threaded totals.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Sequence

from .registry import MetricsRegistry, get_registry
from .spans import Tracer, get_tracer

__all__ = [
    "STAGE_COUNTERS",
    "render_table",
    "render_registry",
    "render_prometheus",
    "render_trace_totals",
    "render_stage_shares",
    "stage_timing_from_counters",
    "write_metrics_json",
    "read_metrics_json",
]

#: Counter names the pipeline increments for §VI.H stage accounting.
STAGE_COUNTERS = {
    "frames_covered": "stage.frames_covered",
    "frames_featurized": "stage.frames_featurized",
    "predictions": "stage.predictions",
    "frames_relayed": "stage.frames_relayed",
}


def _fmt(value) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:
            return "nan"
        if value in (float("inf"), float("-inf")):
            return str(value)
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        if abs(value) >= 1000 or (abs(value) < 0.001 and value != 0):
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def render_table(rows: Sequence[Mapping], columns: Optional[Sequence[str]] = None) -> str:
    """Aligned text table over row dicts (standalone: ``repro.obs`` stays a
    leaf package and must not import the harness's reporting module)."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    cells = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(line[i]) for line in cells))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(str(col).ljust(w) for col, w in zip(columns, widths))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(cell.ljust(w) for cell, w in zip(line, widths)) for line in cells
    )
    return f"{header}\n{rule}\n{body}"


# ----------------------------------------------------------------------
# Registry rendering
# ----------------------------------------------------------------------
def render_registry(
    registry: Optional[MetricsRegistry] = None,
    snapshot: Optional[Mapping] = None,
) -> str:
    """Human-readable dump of a registry (or a previously saved snapshot)."""
    if snapshot is None:
        snapshot = (registry or get_registry()).snapshot()
    sections: List[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        rows = [{"counter": name, "value": value} for name, value in counters.items()]
        sections.append("== counters ==\n" + render_table(rows))
    gauges = snapshot.get("gauges", {})
    if gauges:
        rows = [{"gauge": name, **stats} for name, stats in gauges.items()]
        sections.append("== gauges ==\n" + render_table(rows))
    histograms = snapshot.get("histograms", {})
    if histograms:
        rows = [{"histogram": name, **stats} for name, stats in histograms.items()]
        sections.append("== histograms ==\n" + render_table(rows))
    if not sections:
        return "(no metrics recorded)"
    return "\n\n".join(sections)


def render_trace_totals(tracer: Optional[Tracer] = None) -> str:
    """Per-stage wall-clock totals of the recorded spans."""
    tracer = tracer or get_tracer()
    totals = tracer.stage_totals()
    if not totals:
        return "(no spans recorded)"
    rows = [
        {"span": name, "seconds": totals[name]}
        for name in sorted(totals, key=totals.get, reverse=True)
    ]
    return render_table(rows)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _prom_name(name: str) -> str:
    """Map a dotted metric name onto the Prometheus name grammar
    (``[a-zA-Z_:][a-zA-Z0-9_:]*``)."""
    sanitized = "".join(
        ch if ch.isalnum() or ch in "_:" else "_" for ch in name
    )
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_value(value: float) -> str:
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def render_prometheus(
    snapshot: Optional[Mapping] = None,
    registry: Optional[MetricsRegistry] = None,
    prefix: str = "repro_",
) -> str:
    """Prometheus text-exposition (version 0.0.4) view of a registry.

    Counters become ``<prefix><name>_total``, gauges map 1:1, and
    histograms are exposed as summaries (``{quantile=...}`` series plus
    ``_sum``/``_count``) — the reservoir keeps quantiles, not cumulative
    buckets, and a summary is the exposition type for precomputed
    quantiles.
    """
    if snapshot is None:
        snapshot = (registry or get_registry()).snapshot()
    lines: List[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = f"{prefix}{_prom_name(name)}_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_prom_value(value)}")
    for name, stats in sorted(snapshot.get("gauges", {}).items()):
        metric = f"{prefix}{_prom_name(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_value(stats['value'])}")
    for name, stats in sorted(snapshot.get("histograms", {}).items()):
        metric = f"{prefix}{_prom_name(name)}"
        lines.append(f"# TYPE {metric} summary")
        for label, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
            lines.append(
                f'{metric}{{quantile="{label}"}} {_prom_value(stats[key])}'
            )
        lines.append(f"{metric}_sum {_prom_value(stats['sum'])}")
        lines.append(f"{metric}_count {_prom_value(stats['count'])}")
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# §VI.H stage accounting
# ----------------------------------------------------------------------
def stage_timing_from_counters(
    snapshot: Optional[Mapping] = None,
    registry: Optional[MetricsRegistry] = None,
    timing_model=None,
):
    """Derive a :class:`~repro.metrics.timing.PipelineTiming` from the
    recorded ``stage.*`` work counters.

    Returns ``None`` when no work has been recorded.
    """
    # Imported lazily: repro.metrics pulls in instrumented modules, and a
    # top-level import here would cycle back into repro.obs.
    from ..metrics.timing import TimingModel

    if snapshot is None:
        snapshot = (registry or get_registry()).snapshot()
    counters = snapshot.get("counters", {})
    values = {
        key: int(counters.get(name, 0)) for key, name in STAGE_COUNTERS.items()
    }
    if not any(values.values()):
        return None
    timing_model = timing_model or TimingModel()
    return timing_model.pipeline(
        frames_covered=values["frames_covered"],
        frames_featurized=values["frames_featurized"],
        predictions_made=values["predictions"],
        frames_relayed=values["frames_relayed"],
    )


def render_stage_shares(
    snapshot: Optional[Mapping] = None,
    registry: Optional[MetricsRegistry] = None,
    timing_model=None,
) -> str:
    """Fig.-10-style per-stage time shares derived from the work counters."""
    timing = stage_timing_from_counters(
        snapshot=snapshot, registry=registry, timing_model=timing_model
    )
    if timing is None:
        return "(no stage counters recorded)"
    proportions = timing.breakdown.proportions()
    rows = [
        {
            "stage": name,
            "seconds": getattr(timing.breakdown, name),
            "share": proportions[name],
        }
        for name in ("feature_extraction", "predictor", "cloud_inference")
    ]
    table = render_table(rows)
    return f"{table}\npipeline FPS: {_fmt(timing.fps)}"


# ----------------------------------------------------------------------
# JSON persistence
# ----------------------------------------------------------------------
def write_metrics_json(path: str, registry: Optional[MetricsRegistry] = None) -> Dict:
    """Save a registry snapshot as a JSON file; returns the snapshot."""
    snapshot = (registry or get_registry()).snapshot()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    return snapshot


def read_metrics_json(path: str) -> Dict:
    """Load a snapshot previously written by :func:`write_metrics_json`."""
    with open(path, "r", encoding="utf-8") as handle:
        snapshot = json.load(handle)
    if not isinstance(snapshot, dict):
        raise ValueError(f"{path!r} does not contain a metrics snapshot object")
    return snapshot
