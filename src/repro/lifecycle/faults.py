"""Deterministic fault injection for the model lifecycle path.

The lifecycle layer promises that *nothing it does can leave the fleet
serving a bad model*: a crash mid-checkpoint-write, a corrupted manifest,
a retrain that blows up, or a flaky canary must all end with the last
good version still in service and a flight-recorder postmortem on the
books.  This module makes those failures reproducible, mirroring
:mod:`repro.cloud.faults` / :mod:`repro.ingest.faults`: a declarative
:class:`LifecycleFaultPlan` plus a seeded :class:`LifecycleFaultInjector`
whose hooks the registry and controller consult at each hazard point.

Each hook performs one RNG draw, in call order, so the same seed + plan +
call sequence reproduces the same faults (pinned in ``tests/lifecycle``).
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field, fields
from typing import Dict

import numpy as np

from ..obs import inc, log_debug

__all__ = [
    "LIFECYCLE_FAULT_KINDS",
    "LifecycleError",
    "RetrainError",
    "LifecycleFaultPlan",
    "LifecycleFaultStats",
    "LifecycleFaultInjector",
]

#: Fault kinds in hook order: torn checkpoint write, manifest corruption
#: after a manifest write, retrain blow-up, canary flake (a spuriously
#: failing canary verdict).
LIFECYCLE_FAULT_KINDS = (
    "torn_write",
    "manifest_corruption",
    "retrain_failure",
    "canary_flake",
)


class LifecycleError(RuntimeError):
    """Base class of every injected lifecycle failure."""


class RetrainError(LifecycleError):
    """Background retraining died (OOM, NaN loss, preempted worker...)."""


@dataclass(frozen=True)
class LifecycleFaultPlan:
    """Declarative description of the lifecycle faults one injector fires.

    Unlike the CI plan, each rate guards its *own* hook (a publish either
    tears or it doesn't; a retrain either dies or it doesn't), so the
    rates are independent probabilities rather than shares of one draw.
    """

    torn_write_rate: float = 0.0
    manifest_corruption_rate: float = 0.0
    retrain_failure_rate: float = 0.0
    canary_flake_rate: float = 0.0
    #: Fraction of the checkpoint file kept by a torn write (the crash
    #: point as a fraction of bytes flushed).
    torn_fraction: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        for kind in LIFECYCLE_FAULT_KINDS:
            rate = getattr(self, f"{kind}_rate")
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{kind}_rate must be in [0, 1], got {rate}")
        if not 0.0 < self.torn_fraction < 1.0:
            raise ValueError("torn_fraction must be in (0, 1)")

    # ------------------------------------------------------------------
    @property
    def total_rate(self) -> float:
        """Sum of all hook rates (the sweep axis of the chaos harness)."""
        return (
            self.torn_write_rate
            + self.manifest_corruption_rate
            + self.retrain_failure_rate
            + self.canary_flake_rate
        )

    @property
    def is_empty(self) -> bool:
        return self.total_rate == 0.0

    @classmethod
    def uniform(
        cls, total_rate: float, seed: int = 0, **overrides
    ) -> "LifecycleFaultPlan":
        """A plan spreading ``total_rate`` evenly over the four hooks."""
        if not 0.0 <= total_rate <= 4.0:
            raise ValueError("total_rate must be in [0, 4]")
        share = total_rate / len(LIFECYCLE_FAULT_KINDS)
        return cls(
            torn_write_rate=share,
            manifest_corruption_rate=share,
            retrain_failure_rate=share,
            canary_flake_rate=share,
            seed=seed,
            **overrides,
        )

    def with_total_rate(self, total_rate: float) -> "LifecycleFaultPlan":
        """This plan rescaled so its hook rates sum to ``total_rate``."""
        current = self.total_rate
        if current <= 0.0:
            return LifecycleFaultPlan.uniform(
                total_rate, seed=self.seed, torn_fraction=self.torn_fraction
            )
        scale = total_rate / current
        out = {
            f"{kind}_rate": getattr(self, f"{kind}_rate") * scale
            for kind in LIFECYCLE_FAULT_KINDS
        }
        return LifecycleFaultPlan(
            torn_fraction=self.torn_fraction, seed=self.seed, **out
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LifecycleFaultPlan":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown LifecycleFaultPlan fields: {sorted(unknown)}"
            )
        return cls(**data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "LifecycleFaultPlan":
        return cls.from_dict(json.loads(text))


@dataclass
class LifecycleFaultStats:
    """Exact books of what one injector did."""

    draws: int = 0
    faults: Dict[str, int] = field(default_factory=dict)
    torn_writes: int = 0
    manifests_corrupted: int = 0
    retrain_failures: int = 0
    canary_flakes: int = 0

    def record_fault(self, kind: str) -> None:
        self.faults[kind] = self.faults.get(kind, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.faults.values())

    def as_dict(self) -> Dict[str, object]:
        out = asdict(self)
        out["total"] = self.total
        return out


class LifecycleFaultInjector:
    """Seeded hooks the registry and controller consult at hazard points.

    Each ``should_*`` / ``tear`` / ``corrupt`` method consumes exactly one
    RNG draw, so a fixed call sequence is exactly reproducible from the
    plan's seed; :meth:`reset` replays the sequence from the start.
    """

    def __init__(self, plan: LifecycleFaultPlan):
        self.plan = plan
        self.stats = LifecycleFaultStats()
        self._rng = np.random.default_rng(plan.seed)

    def reset(self) -> None:
        self.stats = LifecycleFaultStats()
        self._rng = np.random.default_rng(self.plan.seed)

    # ------------------------------------------------------------------
    def _fires(self, kind: str) -> bool:
        self.stats.draws += 1
        fired = bool(self._rng.random() < getattr(self.plan, f"{kind}_rate"))
        if fired:
            self.stats.record_fault(kind)
            inc("lifecycle.faults.injected")
            inc(f"lifecycle.faults.{kind}")
            log_debug("lifecycle.fault", kind=kind, draw=self.stats.draws)
        return fired

    def tear_write(self, path: str) -> bool:
        """Maybe truncate a just-written checkpoint — the torn file a
        crash mid-write (or a non-atomic legacy writer) leaves behind."""
        if not self._fires("torn_write"):
            return False
        size = os.path.getsize(path)
        keep = max(1, int(size * self.plan.torn_fraction))
        with open(path, "r+b") as fh:
            fh.truncate(keep)
        self.stats.torn_writes += 1
        return True

    def corrupt_manifest(self, path: str) -> bool:
        """Maybe garble the manifest file after a write (bit rot, torn
        metadata update on a non-atomic filesystem)."""
        if not self._fires("manifest_corruption"):
            return False
        with open(path, "r+b") as fh:
            data = fh.read()
            fh.seek(0)
            fh.truncate(0)
            # Keep a prefix and flip its bytes: both the JSON parse and
            # the self-checksum must catch this.
            keep = max(1, len(data) // 2)
            fh.write(bytes(b ^ 0x5A for b in data[:keep]))
        self.stats.manifests_corrupted += 1
        return True

    def fail_retrain(self) -> None:
        """Maybe raise a :class:`RetrainError` before training starts."""
        if self._fires("retrain_failure"):
            self.stats.retrain_failures += 1
            raise RetrainError("injected retrain failure")

    def flake_canary(self) -> bool:
        """Maybe force the canary verdict to a spurious regression."""
        if self._fires("canary_flake"):
            self.stats.canary_flakes += 1
            return True
        return False
