"""Drift-triggered retraining, canary gating, and crash-safe hot-swap.

:class:`LifecycleController` closes the loop the paper leaves open in its
conclusions ("detect and adapt to changes in the occurrence distribution
over time"): it watches a live marshalling run through the
:mod:`repro.drift` detectors, retrains EventHit in the background when
the world shifts, gates every candidate behind a canary evaluation on
held-back recent audits, and — only if the candidate clears the gate —
hot-swaps it into the serving marshaller at a horizon boundary.

Contracts the tests pin:

* **observation is free** — :meth:`~LifecycleController.observe` /
  :meth:`~LifecycleController.observe_batch` never touch the marshaller,
  the CI service, or the report.  Audit ground truth is read from the
  stream's schedule (the simulator stand-in for a full-relay audit) and
  the audit coin-flips come from a controller-private RNG, so a run that
  never swaps is **byte-identical** to a run without the lifecycle layer.
* **swaps are atomic and honest** — :meth:`~LifecycleController.maybe_swap`
  applies a staged candidate between horizons: model, batched-inference
  engine, and both conformal components are rebound and recalibrated on
  the audit buffer in one step, the drift detectors are rebased onto the
  new regime, and the first post-swap horizon per lane is declared
  guarantee-voided (``swap_voided_frames``) — frames are delayed by at
  most the swap pause, never dropped, and the conformal guarantee is
  never silently carried across versions.
* **failures fall back** — a retrain blow-up, torn checkpoint write,
  corrupt manifest, or failed/flaky canary all leave the incumbent
  serving, mark the registry accordingly, and file a
  :class:`~repro.obs.flight.FlightRecorder` postmortem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cloud.marshaller import MarshallingReport
from ..core.model import EventHit
from ..core.trainer import train_eventhit
from ..data.records import RecordSet
from ..drift.adapter import AuditBuffer
from ..drift.detector import MissRateCusum, PValueDriftDetector
from ..obs import inc, log_info, log_warning, set_gauge, span
from ..obs.flight import get_flight_recorder
from .faults import LifecycleFaultInjector, RetrainError
from .registry import ModelRegistry, ModelVersion, RegistryError

__all__ = ["CanaryVerdict", "LifecycleController"]


@dataclass(frozen=True)
class CanaryVerdict:
    """Outcome of scoring a candidate against the incumbent on the
    held-back newest slice of the audit buffer."""

    passed: bool
    candidate_recall: float
    incumbent_recall: float
    candidate_brier: float
    incumbent_brier: float
    flaked: bool
    records: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "passed": self.passed,
            "candidate_recall": self.candidate_recall,
            "incumbent_recall": self.incumbent_recall,
            "candidate_brier": self.candidate_brier,
            "incumbent_brier": self.incumbent_brier,
            "flaked": self.flaked,
            "records": self.records,
        }


class LifecycleController:
    """Live model lifecycle around one serving marshaller.

    Parameters
    ----------
    marshaller:
        The serving :class:`~repro.cloud.StreamMarshaller` (also the one
        inside a :class:`~repro.fleet.FleetMarshaller`).  Must carry
        calibrated conformal components — lifecycle control is about
        keeping their guarantees honest across model versions.
    registry:
        The :class:`~repro.lifecycle.ModelRegistry` versions are published
        to and served from.
    audit_rate:
        Probability each observed horizon is audited (ground-truthed and
        buffered).
    buffer_size / min_positives / min_records:
        Audit-buffer capacity and the evidence floor before a retrain is
        attempted (every event needs ``min_positives`` audited positives
        and the buffer at least ``min_records`` rows).
    canary_fraction:
        Fraction of the audit buffer (its *newest* rows) held back from
        retraining and used to score the candidate against the incumbent.
    recall_margin / brier_margin:
        Canary gate: the candidate must reach the incumbent's recall
        minus ``recall_margin`` and its Brier score plus ``brier_margin``.
    retrain_config:
        Optional :class:`~repro.core.EventHitConfig` override for
        retraining (e.g. fewer epochs); defaults to the incumbent's.
    retrain_every_audits:
        Optional scheduled-retraining knob: attempt a retrain every N
        audits even without a drift signal (chaos runs and tests use this
        for deterministic triggering).
    seed:
        Seed of the controller-private audit RNG.
    cusum / pvalue_detector:
        Optional pre-built drift detectors (defaults match
        :class:`~repro.drift.AdaptiveMarshaller`).
    injector:
        Optional :class:`~repro.lifecycle.LifecycleFaultInjector` for the
        retrain/canary hazard hooks (the registry holds its own handle
        for the write hooks).
    """

    def __init__(
        self,
        marshaller,
        registry: ModelRegistry,
        audit_rate: float = 0.25,
        buffer_size: int = 200,
        min_positives: int = 3,
        min_records: int = 8,
        canary_fraction: float = 0.25,
        recall_margin: float = 0.05,
        brier_margin: float = 0.02,
        retrain_config=None,
        retrain_every_audits: Optional[int] = None,
        seed: int = 0,
        cusum: Optional[MissRateCusum] = None,
        pvalue_detector: Optional[PValueDriftDetector] = None,
        injector: Optional[LifecycleFaultInjector] = None,
    ):
        if marshaller.classifier is None or marshaller.regressor is None:
            raise ValueError(
                "lifecycle control needs calibrated conformal components "
                "on the marshaller"
            )
        if not 0.0 <= audit_rate <= 1.0:
            raise ValueError("audit_rate must be in [0, 1]")
        if not 0.0 < canary_fraction < 1.0:
            raise ValueError("canary_fraction must be in (0, 1)")
        if min_positives < 1:
            raise ValueError("min_positives must be >= 1")
        if min_records < 4:
            raise ValueError("min_records must be >= 4")
        if recall_margin < 0.0 or brier_margin < 0.0:
            raise ValueError("canary margins must be non-negative")
        if retrain_every_audits is not None and retrain_every_audits < 1:
            raise ValueError("retrain_every_audits must be >= 1")
        self.marshaller = marshaller
        self.registry = registry
        self.audit_rate = audit_rate
        self.min_positives = min_positives
        self.min_records = min_records
        self.canary_fraction = canary_fraction
        self.recall_margin = recall_margin
        self.brier_margin = brier_margin
        self.retrain_config = retrain_config
        self.retrain_every_audits = retrain_every_audits
        self.injector = injector
        self.buffer = AuditBuffer(
            marshaller.event_types, marshaller.horizon, maxlen=buffer_size
        )
        self.cusum = cusum or MissRateCusum(budget=1.0 - marshaller.confidence)
        self.pvalue_detector = pvalue_detector or PValueDriftDetector()
        self._rng = np.random.default_rng(seed)
        self._pending: Optional[Tuple[ModelVersion, EventHit]] = None
        self._audits_since_retrain = 0
        self._last_swap_tick = 0
        # Books the chaos harness reports on.
        self.audits = 0
        self.drift_signals = 0
        self.retrains = 0
        self.retrain_failures = 0
        self.publish_failures = 0
        self.rollbacks = 0
        self.swaps = 0
        self.serving_version: Optional[int] = None
        self.canary_verdicts: List[CanaryVerdict] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def has_pending_swap(self) -> bool:
        return self._pending is not None

    def stats(self) -> Dict[str, object]:
        return {
            "audits": self.audits,
            "drift_signals": self.drift_signals,
            "retrains": self.retrains,
            "retrain_failures": self.retrain_failures,
            "publish_failures": self.publish_failures,
            "rollbacks": self.rollbacks,
            "swaps": self.swaps,
            "serving_version": self.serving_version,
            "pending_swap": self.has_pending_swap,
        }

    # ------------------------------------------------------------------
    # Bootstrap
    # ------------------------------------------------------------------
    def register_incumbent(self, tick: int = 0, note: str = "seed model") -> ModelVersion:
        """Publish the currently serving model as the first ``good``
        version, so fault recovery always has a floor to fall back to.

        The chaos hooks are suspended for this one publish — the seed
        model predates the chaos window by construction.
        """
        saved = self.registry.injector
        self.registry.injector = None
        try:
            entry = self.registry.publish(
                self.marshaller.model,
                source="seed",
                tick=tick,
                status="good",
                note=note,
            )
        finally:
            self.registry.injector = saved
        self.serving_version = entry.version
        set_gauge("lifecycle.serving_version", float(entry.version))
        return entry

    # ------------------------------------------------------------------
    # Observation hooks (free: never touch marshaller, service, report)
    # ------------------------------------------------------------------
    def observe(self, stream, frame: int, window, output, exists, tick: int = 0) -> None:
        """Single-stream hook: one decided horizon (window ``(W, F)``,
        batch-of-one ``output`` / ``exists``)."""
        self.observe_batch(
            [(stream, frame)], np.asarray(window)[None], output, exists, tick
        )

    def observe_batch(self, rows, windows, output, exists, tick: int = 0) -> None:
        """Fleet hook: one decided tick.

        ``rows`` is ``[(stream, frame), ...]`` in lane order, ``windows``
        the stacked ``(B, W, F)`` covariates, ``output`` / ``exists`` the
        batch the marshaller decided from.  One audit coin-flip per row,
        in lane order, from the controller-private RNG.
        """
        set_gauge(
            "lifecycle.model_staleness", float(max(0, tick - self._last_swap_tick))
        )
        exists = np.asarray(exists, dtype=bool)
        p_values = None
        for i, (stream, frame) in enumerate(rows):
            if not bool(self._rng.random() < self.audit_rate):
                continue
            self.audits += 1
            inc("lifecycle.audits")
            labels, starts, ends, censored = self._ground_truth(stream, frame)
            self.buffer.add(frame, windows[i], labels, starts, ends, censored)
            missed = bool(np.any((labels > 0) & ~exists[i]))
            cusum_verdict = self.cusum.observe(missed)
            if p_values is None:
                p_values = self.marshaller.classifier.p_values(output)
            for j in range(len(self.marshaller.event_types)):
                if labels[j] > 0:
                    self.pvalue_detector.observe(float(p_values[i, j]))
            ks_verdict = self.pvalue_detector.check()
            self._audits_since_retrain += 1
            drifted = bool(cusum_verdict.drifted or ks_verdict.drifted)
            if drifted:
                self.drift_signals += 1
                inc("lifecycle.drift_signals")
            scheduled = (
                self.retrain_every_audits is not None
                and self._audits_since_retrain >= self.retrain_every_audits
            )
            if (drifted or scheduled) and self._ready_to_retrain():
                self._retrain(tick, reason="drift" if drifted else "schedule")

    def _ground_truth(self, stream, frame: int):
        """Per-event (label, start, end, censored) in this horizon."""
        k = len(self.marshaller.event_types)
        horizon = self.marshaller.horizon
        labels = np.zeros(k)
        starts = np.zeros(k, dtype=int)
        ends = np.zeros(k, dtype=int)
        censored = np.zeros(k)
        for j, event_type in enumerate(self.marshaller.event_types):
            event = stream.schedule.first_event_in_horizon(
                event_type, frame, horizon
            )
            if event is None:
                continue
            labels[j] = 1.0
            starts[j] = event.start_offset
            ends[j] = event.end_offset
            censored[j] = float(event.censored)
        return labels, starts, ends, censored

    def _ready_to_retrain(self) -> bool:
        return len(self.buffer) >= self.min_records and (
            self.buffer.ready_for_calibration(self.min_positives)
        )

    # ------------------------------------------------------------------
    # Retrain → publish → canary
    # ------------------------------------------------------------------
    def _retrain(self, tick: int, reason: str) -> None:
        self._audits_since_retrain = 0
        self.retrains += 1
        inc("lifecycle.retrains")
        records = self.buffer.to_records()
        canary_n = max(1, int(round(self.canary_fraction * len(records))))
        canary_n = min(canary_n, len(records) - 2)
        train_records = records.subset(np.arange(len(records) - canary_n))
        canary_records = records.subset(
            np.arange(len(records) - canary_n, len(records))
        )
        with span("lifecycle.retrain", reason=reason, tick=tick):
            try:
                if self.injector is not None:
                    self.injector.fail_retrain()
                candidate, _ = train_eventhit(
                    train_records,
                    config=self.retrain_config or self.marshaller.model.config,
                    encoder=self.marshaller.model.encoder_kind,
                )
            except RetrainError as exc:
                self.retrain_failures += 1
                inc("lifecycle.retrain_failures")
                self._postmortem("lifecycle-retrain-failure", tick, exc)
                self._rearm_detectors()
                return
            try:
                entry = self.registry.publish(candidate, source=reason, tick=tick)
                # Serve what was persisted, not what is in memory: load()
                # re-hashes the artifact, so a torn write is caught here
                # and the incumbent keeps serving.
                candidate = self.registry.load(entry.version)
            except RegistryError as exc:
                self.publish_failures += 1
                inc("lifecycle.publish_failures")
                self._postmortem("lifecycle-publish-failure", tick, exc)
                self._rearm_detectors()
                return
        verdict = self._canary(candidate, canary_records)
        self.canary_verdicts.append(verdict)
        if verdict.passed:
            self.registry.mark(entry.version, "good")
            inc("lifecycle.canary_pass")
            self._pending = (entry, candidate)
            log_info(
                "lifecycle.canary_passed",
                version=entry.version,
                candidate_recall=verdict.candidate_recall,
                incumbent_recall=verdict.incumbent_recall,
            )
        else:
            self.registry.mark(entry.version, "rolled-back")
            self.rollbacks += 1
            inc("lifecycle.rollbacks")
            self._postmortem(
                "lifecycle-rollback",
                tick,
                f"canary regression on v{entry.version} "
                f"(flaked={verdict.flaked})",
            )
        self._rearm_detectors()

    def _rearm_detectors(self) -> None:
        """One drift episode triggers one retrain attempt, not a hot loop."""
        self.cusum.reset()
        self.pvalue_detector.reset(keep_recent_as_reference=True)

    def _postmortem(self, reason: str, tick: int, detail) -> None:
        log_warning("lifecycle.failure", reason=reason, tick=tick, detail=str(detail))
        get_flight_recorder().auto_dump(reason, tick)

    def _canary(self, candidate: EventHit, canary: RecordSet) -> CanaryVerdict:
        """Score candidate vs incumbent on the held-back newest audits."""
        with span("lifecycle.canary", records=len(canary)):
            tau1 = self.marshaller.tau1
            labels = canary.labels > 0
            inc_scores = self.marshaller.model.predict(canary.covariates).scores
            cand_scores = candidate.predict(canary.covariates).scores

            def recall(scores: np.ndarray) -> float:
                if not labels.any():
                    return 1.0
                return float(np.mean(scores[labels] >= tau1))

            def brier(scores: np.ndarray) -> float:
                return float(np.mean((scores - labels.astype(float)) ** 2))

            verdict = CanaryVerdict(
                passed=False,
                candidate_recall=recall(cand_scores),
                incumbent_recall=recall(inc_scores),
                candidate_brier=brier(cand_scores),
                incumbent_brier=brier(inc_scores),
                flaked=bool(
                    self.injector is not None and self.injector.flake_canary()
                ),
                records=len(canary),
            )
            passed = (
                not verdict.flaked
                and verdict.candidate_recall
                >= verdict.incumbent_recall - self.recall_margin
                and verdict.candidate_brier
                <= verdict.incumbent_brier + self.brier_margin
            )
            return CanaryVerdict(**{**verdict.to_dict(), "passed": passed})

    # ------------------------------------------------------------------
    # The swap itself
    # ------------------------------------------------------------------
    def maybe_swap(self, reports, tick: int = 0) -> bool:
        """Apply a staged candidate at a horizon/tick boundary.

        ``reports`` is the active lane report (or the sequence of them,
        for a fleet tick): each gets one horizon of ``swap_voided_frames``
        — the declared price of not carrying the conformal guarantee
        across versions.  No-op (and no state touched) when nothing is
        staged, which is what keeps the zero-swap run byte-identical.
        """
        if self._pending is None:
            return False
        if isinstance(reports, MarshallingReport):
            reports = [reports]
        entry, model = self._pending
        self._pending = None
        m = self.marshaller
        with span("lifecycle.swap", version=entry.version, tick=tick):
            records = self.buffer.to_records()
            m.model = model
            # rebind preserves the engine kind and its config (windowed,
            # continual, gated); stateful engines drop all carried lane
            # state here — the post-swap warm-up is the state rebase.
            m.inference = m.inference.rebind(model)
            m.classifier.model = model
            m.classifier.calibrate(records)
            m.regressor.model = model
            m.regressor.calibrate(records)
            # Hand the detectors to the new regime: p-values recomputed
            # under the fresh calibration seed the KS reference window.
            self.cusum.reset()
            p_values = m.classifier.p_values(model.predict(records.covariates))
            self.pvalue_detector.rebase(p_values[records.labels > 0])
            for report in reports:
                report.model_swaps += 1
                report.swap_voided_frames += m.horizon
                report.guarantee_voided_frames += m.horizon
        self.swaps += 1
        inc("lifecycle.swaps")
        self.serving_version = entry.version
        self._last_swap_tick = tick
        set_gauge("lifecycle.serving_version", float(entry.version))
        set_gauge("lifecycle.model_staleness", 0.0)
        log_info(
            "lifecycle.swapped",
            version=entry.version,
            tick=tick,
            lanes=len(reports),
        )
        return True
