"""Live model lifecycle: versioned registry, drift-triggered retraining,
canary gating, and crash-safe atomic hot-swap.

The layer sits beside the serving path, never in it: observation hooks
are free (a run that never swaps is byte-identical to one without the
lifecycle layer), swaps happen atomically at horizon boundaries with the
conformal state recalibrated on the spot, and every failure mode — torn
checkpoint write, corrupt manifest, retrain blow-up, flaky canary —
falls back to the last good version with a flight-recorder postmortem.
"""

from .controller import CanaryVerdict, LifecycleController
from .faults import (
    LIFECYCLE_FAULT_KINDS,
    LifecycleError,
    LifecycleFaultInjector,
    LifecycleFaultPlan,
    LifecycleFaultStats,
    RetrainError,
)
from .registry import ModelRegistry, ModelVersion, RegistryError, VERSION_STATUSES

__all__ = [
    "CanaryVerdict",
    "LifecycleController",
    "LIFECYCLE_FAULT_KINDS",
    "LifecycleError",
    "LifecycleFaultInjector",
    "LifecycleFaultPlan",
    "LifecycleFaultStats",
    "RetrainError",
    "ModelRegistry",
    "ModelVersion",
    "RegistryError",
    "VERSION_STATUSES",
]
