"""Versioned model registry with crash-safe persistence.

The registry is the durable half of the lifecycle story: every trained
EventHit the controller wants to serve is *published* as an immutable,
content-hashed version, and a JSON manifest records what each version is
and whether it ever proved itself (``candidate`` → ``good``) or failed
(``rolled-back``, ``corrupt``).

Durability discipline, at every layer:

* **checkpoints** — written via :func:`repro.core.save_checkpoint`
  (temp + fsync + atomic rename), then recorded in the manifest with a
  sha256 content hash computed from the bytes on disk at publish time;
* **manifest** — written with the same temp + fsync + rename discipline,
  carries a self-checksum over its entries, and keeps the previous valid
  manifest as ``manifest.json.bak``.  A garbled manifest is detected on
  read (bad JSON *or* bad checksum) and recovery falls back to the
  backup, losing at most the final mutation;
* **loads** — :meth:`ModelRegistry.load` re-hashes the artifact before
  deserializing it, so a torn or bit-rotted file is caught *before*
  :func:`~repro.core.load_checkpoint` ever parses it, the version is
  marked ``corrupt`` in the manifest, and
  :meth:`ModelRegistry.load_last_good` walks back to the newest version
  that still verifies.

Nothing here ever deletes a checkpoint: rollback is a status change, so
postmortems can always reload the exact artifact that misbehaved.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, fields, replace
from typing import Dict, List, Optional, Tuple

from ..core.checkpoint import _fsync_directory, load_checkpoint, save_checkpoint
from ..core.model import EventHit
from ..obs import inc, log_info, log_warning, span
from .faults import LifecycleFaultInjector

__all__ = ["RegistryError", "ModelVersion", "ModelRegistry", "VERSION_STATUSES"]

#: Lifecycle states of one published version.
VERSION_STATUSES = ("candidate", "good", "rolled-back", "corrupt")

_MANIFEST_FORMAT_VERSION = 1


class RegistryError(RuntimeError):
    """The registry cannot satisfy a request (corrupt artifact, unknown
    version, unrecoverable manifest)."""


@dataclass(frozen=True)
class ModelVersion:
    """One immutable manifest entry."""

    version: int
    filename: str
    sha256: str
    status: str = "candidate"
    source: str = "retrain"
    tick: int = 0
    note: str = ""

    def __post_init__(self) -> None:
        if self.version < 1:
            raise ValueError("version numbers start at 1")
        if self.status not in VERSION_STATUSES:
            raise ValueError(
                f"status must be one of {VERSION_STATUSES}, got {self.status!r}"
            )

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ModelVersion":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown ModelVersion fields: {sorted(unknown)}")
        return cls(**data)


def _sha256_file(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _entries_checksum(entries: List[Dict[str, object]]) -> str:
    canonical = json.dumps(
        {"format_version": _MANIFEST_FORMAT_VERSION, "entries": entries},
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ModelRegistry:
    """Filesystem-backed store of versioned EventHit checkpoints.

    Layout::

        root/
          manifest.json        # entries + self-checksum
          manifest.json.bak    # previous valid manifest
          versions/
            v0001.npz
            v0002.npz

    ``injector`` (a :class:`~repro.lifecycle.faults.LifecycleFaultInjector`)
    wires the seeded chaos hooks into the hazard points: a torn checkpoint
    write after publish, a garbled manifest after a manifest write.
    """

    MANIFEST = "manifest.json"
    BACKUP = "manifest.json.bak"

    def __init__(
        self,
        root: "str | os.PathLike",
        injector: Optional[LifecycleFaultInjector] = None,
    ):
        self.root = os.fspath(root)
        self.versions_dir = os.path.join(self.root, "versions")
        os.makedirs(self.versions_dir, exist_ok=True)
        self.injector = injector
        self.manifest_path = os.path.join(self.root, self.MANIFEST)
        self.backup_path = os.path.join(self.root, self.BACKUP)
        #: Times a corrupt manifest was recovered from the backup.
        self.manifest_recoveries = 0
        self._entries: List[ModelVersion] = self._load_entries()

    # ------------------------------------------------------------------
    # Manifest persistence
    # ------------------------------------------------------------------
    def _parse_manifest(self, path: str) -> Optional[List[ModelVersion]]:
        """Entries from ``path``, or ``None`` when missing/corrupt."""
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, UnicodeDecodeError, json.JSONDecodeError):
            return None
        try:
            if data.get("format_version") != _MANIFEST_FORMAT_VERSION:
                return None
            raw_entries = data["entries"]
            if data.get("checksum") != _entries_checksum(raw_entries):
                return None
            return [ModelVersion.from_dict(item) for item in raw_entries]
        except (AttributeError, KeyError, TypeError, ValueError):
            return None

    def _load_entries(self) -> List[ModelVersion]:
        entries = self._parse_manifest(self.manifest_path)
        if entries is not None:
            return entries
        recovered = self._parse_manifest(self.backup_path)
        if recovered is not None:
            self.manifest_recoveries += 1
            inc("lifecycle.manifest_recovered")
            log_warning(
                "lifecycle.manifest_recovered",
                root=self.root,
                entries=len(recovered),
            )
            # Heal the primary so the next reader doesn't pay again.
            self._write_manifest_file(recovered)
            return recovered
        if os.path.exists(self.manifest_path):
            raise RegistryError(
                f"manifest at {self.manifest_path!r} is corrupt and no "
                "valid backup exists"
            )
        return []

    def _write_manifest_file(self, entries: List[ModelVersion]) -> None:
        raw_entries = [entry.to_dict() for entry in entries]
        payload = {
            "format_version": _MANIFEST_FORMAT_VERSION,
            "entries": raw_entries,
            "checksum": _entries_checksum(raw_entries),
        }
        tmp = self.manifest_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.manifest_path)
        _fsync_directory(self.root)

    def _commit(self) -> None:
        """Back up the current valid manifest, write the new one, then
        let the chaos hook garble it (recovery is the next reader's
        problem — exactly as with real bit rot)."""
        if self._parse_manifest(self.manifest_path) is not None:
            # The backup must only ever hold a *valid* manifest; backing
            # up garbage would defeat recovery.
            tmp = self.backup_path + ".tmp"
            with open(self.manifest_path, "rb") as src, open(tmp, "wb") as dst:
                dst.write(src.read())
                dst.flush()
                os.fsync(dst.fileno())
            os.replace(tmp, self.backup_path)
        self._write_manifest_file(self._entries)
        if self.injector is not None:
            self.injector.corrupt_manifest(self.manifest_path)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def entries(self) -> List[ModelVersion]:
        return list(self._entries)

    def get(self, version: int) -> ModelVersion:
        for entry in self._entries:
            if entry.version == version:
                return entry
        raise RegistryError(f"no version {version} in registry {self.root!r}")

    @property
    def latest_version(self) -> Optional[int]:
        if not self._entries:
            return None
        return max(entry.version for entry in self._entries)

    @property
    def latest_good(self) -> Optional[ModelVersion]:
        good = [entry for entry in self._entries if entry.status == "good"]
        if not good:
            return None
        return max(good, key=lambda entry: entry.version)

    def path_of(self, entry: ModelVersion) -> str:
        return os.path.join(self.versions_dir, entry.filename)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def publish(
        self,
        model: EventHit,
        source: str = "retrain",
        tick: int = 0,
        status: str = "candidate",
        note: str = "",
    ) -> ModelVersion:
        """Persist ``model`` as the next version and record it.

        The content hash is computed from the bytes the atomic writer
        committed; an injected torn write then damages the file *after*
        the hash is on the books, which is precisely how
        :meth:`load`'s verification catches it.
        """
        version = (self.latest_version or 0) + 1
        filename = f"v{version:04d}.npz"
        with span("lifecycle.publish", version=version, source=source):
            final = save_checkpoint(
                model, os.path.join(self.versions_dir, filename)
            )
            digest = _sha256_file(final)
            if self.injector is not None:
                self.injector.tear_write(final)
            entry = ModelVersion(
                version=version,
                filename=filename,
                sha256=digest,
                status=status,
                source=source,
                tick=int(tick),
                note=note,
            )
            self._entries.append(entry)
            self._commit()
        inc("lifecycle.publishes")
        log_info(
            "lifecycle.published",
            version=version,
            status=status,
            source=source,
            tick=int(tick),
        )
        return entry

    def mark(self, version: int, status: str) -> ModelVersion:
        """Transition ``version`` to ``status`` and persist the manifest."""
        if status not in VERSION_STATUSES:
            raise ValueError(
                f"status must be one of {VERSION_STATUSES}, got {status!r}"
            )
        for i, entry in enumerate(self._entries):
            if entry.version == version:
                updated = replace(entry, status=status)
                self._entries[i] = updated
                self._commit()
                inc(f"lifecycle.marked.{status}")
                log_info("lifecycle.marked", version=version, status=status)
                return updated
        raise RegistryError(f"no version {version} in registry {self.root!r}")

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load(self, version: Optional[int] = None) -> EventHit:
        """Verify and deserialize one version (default: the latest good).

        Verification order: content hash first (catches torn/bit-rotted
        bytes without parsing them), then the checkpoint loader's own
        structural checks.  Any failure marks the version ``corrupt`` in
        the manifest and raises :class:`RegistryError`.
        """
        if version is None:
            entry = self.latest_good
            if entry is None:
                raise RegistryError(f"registry {self.root!r} has no good version")
        else:
            entry = self.get(version)
        path = self.path_of(entry)
        with span("lifecycle.load", version=entry.version):
            try:
                actual = _sha256_file(path)
            except OSError as exc:
                self._quarantine(entry)
                raise RegistryError(
                    f"version {entry.version} is unreadable: {exc}"
                ) from exc
            if actual != entry.sha256:
                self._quarantine(entry)
                raise RegistryError(
                    f"version {entry.version} failed content verification "
                    f"(expected sha256 {entry.sha256[:12]}…, got {actual[:12]}…)"
                )
            try:
                return load_checkpoint(path)
            # np.load raises zipfile/OS errors on torn archives, the
            # loader raises CheckpointError on structural damage — either
            # way the artifact is unservable.
            except Exception as exc:
                self._quarantine(entry)
                raise RegistryError(
                    f"version {entry.version} failed to deserialize: {exc}"
                ) from exc

    def _quarantine(self, entry: ModelVersion) -> None:
        if entry.status != "corrupt":
            self.mark(entry.version, "corrupt")
        inc("lifecycle.corrupt_detected")
        log_warning(
            "lifecycle.corrupt_version", version=entry.version, file=entry.filename
        )

    def load_last_good(self) -> Tuple[ModelVersion, EventHit]:
        """The newest ``good`` version that still verifies on disk.

        Versions that fail verification are marked ``corrupt`` along the
        way; raises :class:`RegistryError` only when *no* good version
        survives — the one situation the lifecycle cannot hide.
        """
        while True:
            entry = self.latest_good
            if entry is None:
                raise RegistryError(
                    f"registry {self.root!r} has no loadable good version"
                )
            try:
                return self.get(entry.version), self.load(entry.version)
            except RegistryError:
                # load() already marked it corrupt; walk further back.
                continue
