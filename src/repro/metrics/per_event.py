"""Per-event metric breakdowns and interval-overlap (IoU) measures.

§VI.D's multi-event analysis ("the overall performance is bound by the
event with the worst performance") needs the §VI.C measures *per event
type*; and the temporal-action-localisation community's IoU view of
interval quality complements the paper's η (which normalises by the true
interval only, ignoring prediction width).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..core.inference import PredictionBatch
from ..data.records import RecordSet
from .accuracy import EvaluationSummary, evaluate

__all__ = ["per_event_summaries", "interval_iou_matrix", "mean_interval_iou"]


def _event_slice(records: RecordSet, k: int) -> RecordSet:
    """A single-event view of column ``k``."""
    return RecordSet(
        event_types=[records.event_types[k]],
        horizon=records.horizon,
        frames=records.frames,
        covariates=records.covariates,
        labels=records.labels[:, [k]],
        starts=records.starts[:, [k]],
        ends=records.ends[:, [k]],
        censored=records.censored[:, [k]],
        occupancy=(
            records.occupancy[:, [k]] if records.occupancy is not None else None
        ),
    )


def per_event_summaries(
    predictions: PredictionBatch, records: RecordSet
) -> Dict[str, EvaluationSummary]:
    """All §VI.C measures restricted to each event type.

    Returns a mapping event-name → :class:`EvaluationSummary`; useful for
    the §VI.D "bound by the worst event" analysis of multi-event tasks.
    """
    if predictions.exists.shape != records.labels.shape:
        raise ValueError("predictions and records disagree on (B, K)")
    out: Dict[str, EvaluationSummary] = {}
    for k, event_type in enumerate(records.event_types):
        single = PredictionBatch(
            exists=predictions.exists[:, [k]],
            starts=predictions.starts[:, [k]],
            ends=predictions.ends[:, [k]],
            horizon=predictions.horizon,
        )
        out[event_type.name] = evaluate(single, _event_slice(records, k))
    return out


def interval_iou_matrix(
    predictions: PredictionBatch, records: RecordSet
) -> np.ndarray:
    """(B, K) temporal IoU between predicted and true intervals.

    IoU = |pred ∩ true| / |pred ∪ true| over inclusive offset ranges;
    zero where either side is absent.  Unlike η, IoU penalises
    over-wide predictions, so it exposes the recall/width trade the
    C-REGRESS knob makes.
    """
    if predictions.exists.shape != records.labels.shape:
        raise ValueError("predictions and records disagree on (B, K)")
    if predictions.horizon != records.horizon:
        raise ValueError("horizon mismatch")
    present = records.labels > 0
    both = predictions.exists & present
    lo = np.maximum(predictions.starts, records.starts)
    hi = np.minimum(predictions.ends, records.ends)
    intersection = np.maximum(0, hi - lo + 1)
    pred_len = predictions.ends - predictions.starts + 1
    true_len = records.ends - records.starts + 1
    union = pred_len + true_len - intersection
    with np.errstate(divide="ignore", invalid="ignore"):
        iou = np.where(both & (union > 0), intersection / np.maximum(union, 1), 0.0)
    return iou


def mean_interval_iou(
    predictions: PredictionBatch, records: RecordSet
) -> float:
    """Mean IoU over (record, event) pairs with the event present."""
    present = records.labels > 0
    if present.sum() == 0:
        return float("nan")
    return float(interval_iou_matrix(predictions, records)[present].mean())
