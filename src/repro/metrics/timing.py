"""Analytic stage-cost timing model (paper §VI.H, Figs. 9 & 10).

The paper measures end-to-end FPS of each pipeline: feature extraction
(e.g. YOLOv3), the lightweight predictor (EventHit / Cox / VQS filter), and
the CI's heavy event-detection model (e.g. I3D) applied to the relayed
frames.  Without the authors' hardware we model each stage with a
deterministic per-unit cost and derive the same quantities:

* pipeline FPS = frames covered / total seconds;
* per-stage share of the total time (Fig. 10's pie).

Defaults are calibrated so the paper's qualitative facts hold: EHCR reaches
triple-digit FPS at high REC while COX/VQS stall below ~50, and the CI stage
dominates total time (with feature extraction a small share and the
predictor negligible — the paper reports ≈95.9% / 4.0% / 0.1% on TA10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

__all__ = ["TimingModel", "StageBreakdown", "PipelineTiming"]


@dataclass(frozen=True)
class StageBreakdown:
    """Seconds spent per pipeline stage over a workload."""

    feature_extraction: float
    predictor: float
    cloud_inference: float

    @property
    def total(self) -> float:
        return self.feature_extraction + self.predictor + self.cloud_inference

    def proportions(self) -> Dict[str, float]:
        """Share of total time per stage (Fig. 10)."""
        total = self.total
        if total <= 0:
            raise ValueError("no time recorded")
        return {
            "feature_extraction": self.feature_extraction / total,
            "predictor": self.predictor / total,
            "cloud_inference": self.cloud_inference / total,
        }


@dataclass(frozen=True)
class PipelineTiming:
    """FPS and stage breakdown of one pipeline over one workload."""

    frames_covered: int
    breakdown: StageBreakdown

    @property
    def fps(self) -> float:
        if self.breakdown.total <= 0:
            return float("inf")
        return self.frames_covered / self.breakdown.total


@dataclass(frozen=True)
class TimingModel:
    """Per-stage unit costs.

    Attributes
    ----------
    feature_fps:
        Frames/second of the feature-extraction stage.  The default models
        a difference-detector-accelerated YOLOv3 (the paper notes frame
        sampling / difference detectors "can be readily applied").
    predictor_latency:
        Seconds per prediction call (per record) of the lightweight model.
    ci_fps:
        Frames/second the CI effectively sustains per relayed frame,
        including the cloud round-trip.
    """

    feature_fps: float = 1000.0
    predictor_latency: float = 1e-4
    ci_fps: float = 20.0

    def __post_init__(self) -> None:
        if self.feature_fps <= 0 or self.ci_fps <= 0:
            raise ValueError("stage rates must be positive")
        if self.predictor_latency < 0:
            raise ValueError("predictor_latency must be non-negative")

    def pipeline(
        self,
        frames_covered: int,
        frames_featurized: int,
        predictions_made: int,
        frames_relayed: int,
    ) -> PipelineTiming:
        """Timing of a pipeline run.

        Parameters
        ----------
        frames_covered:
            Stream frames the run is responsible for (FPS denominator).
        frames_featurized:
            Frames pushed through feature extraction.
        predictions_made:
            Number of predictor invocations (records).
        frames_relayed:
            Frames sent to the CI.
        """
        for name, value in (
            ("frames_covered", frames_covered),
            ("frames_featurized", frames_featurized),
            ("predictions_made", predictions_made),
            ("frames_relayed", frames_relayed),
        ):
            if value < 0:
                raise ValueError(f"{name} must be non-negative")
        breakdown = StageBreakdown(
            feature_extraction=frames_featurized / self.feature_fps,
            predictor=predictions_made * self.predictor_latency,
            cloud_inference=frames_relayed / self.ci_fps,
        )
        return PipelineTiming(frames_covered=frames_covered, breakdown=breakdown)
