"""Monetary-cost accounting (paper §VI.G case study).

The CI prices usage per frame (Amazon Rekognition: US $0.001/frame); the
expense of an algorithm over a test set is simply the number of frames it
relays times the per-frame price.  OPT relays exactly the true event frames;
BF relays every frame of every record's horizon.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.inference import PredictionBatch
from ..data.records import RecordSet

__all__ = ["REKOGNITION_PRICE_PER_FRAME", "expense", "optimal_expense", "brute_force_expense"]

#: Amazon Rekognition image-analysis price used in the paper's case study.
REKOGNITION_PRICE_PER_FRAME = 0.001


def expense(
    predictions: PredictionBatch,
    price_per_frame: float = REKOGNITION_PRICE_PER_FRAME,
) -> float:
    """Dollar cost of relaying the predicted intervals to the CI."""
    if price_per_frame < 0:
        raise ValueError("price_per_frame must be non-negative")
    return float(predictions.predicted_frames().sum() * price_per_frame)


def optimal_expense(
    records: RecordSet,
    price_per_frame: float = REKOGNITION_PRICE_PER_FRAME,
) -> float:
    """OPT's cost: only the frames of true occurrence intervals."""
    if price_per_frame < 0:
        raise ValueError("price_per_frame must be non-negative")
    present = records.labels > 0
    true_len = np.where(present, records.ends - records.starts + 1, 0)
    return float(true_len.sum() * price_per_frame)


def brute_force_expense(
    records: RecordSet,
    price_per_frame: float = REKOGNITION_PRICE_PER_FRAME,
) -> float:
    """BF's cost: every frame of every record's horizon, for every event."""
    if price_per_frame < 0:
        raise ValueError("price_per_frame must be non-negative")
    return float(len(records) * records.num_events * records.horizon * price_per_frame)
