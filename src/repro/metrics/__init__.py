"""Evaluation measures of §VI.C: accuracy (REC/SPL/REC_c/REC_r), monetary
cost, and the analytic FPS/stage-time model."""

from .accuracy import (
    EvaluationSummary,
    eta_matrix,
    evaluate,
    existence_precision,
    existence_recall,
    interval_recall,
    recall,
    recall_from_masks,
    spillage,
    spillage_from_masks,
)
from .cost import (
    REKOGNITION_PRICE_PER_FRAME,
    brute_force_expense,
    expense,
    optimal_expense,
)
from .timing import PipelineTiming, StageBreakdown, TimingModel
from .per_event import interval_iou_matrix, mean_interval_iou, per_event_summaries

__all__ = [
    "eta_matrix",
    "recall",
    "spillage",
    "existence_recall",
    "existence_precision",
    "interval_recall",
    "evaluate",
    "EvaluationSummary",
    "recall_from_masks",
    "spillage_from_masks",
    "REKOGNITION_PRICE_PER_FRAME",
    "expense",
    "optimal_expense",
    "brute_force_expense",
    "TimingModel",
    "StageBreakdown",
    "PipelineTiming",
    "per_event_summaries",
    "interval_iou_matrix",
    "mean_interval_iou",
]
