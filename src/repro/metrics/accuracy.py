"""End-to-end and per-component accuracy measures (paper §VI.C).

* η_n^k — frame-level recall of one prediction against the true occurrence
  interval;
* REC (Eq. 12) — mean η over all (record, event) pairs with the event
  present;
* SPL (Eq. 13) — spillage: the frame-level false-positive rate, i.e. the
  fraction of non-event frames relayed to the CI;
* REC_c — recall of the existence-prediction stage;
* REC_r — mean η over the records where the event was correctly predicted
  present (the occurrence-interval stage);
* PREC_c — existence precision (reported alongside for completeness).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..core.inference import PredictionBatch
from ..data.records import RecordSet

__all__ = [
    "eta_matrix",
    "recall",
    "spillage",
    "existence_recall",
    "existence_precision",
    "interval_recall",
    "EvaluationSummary",
    "evaluate",
    "recall_from_masks",
    "spillage_from_masks",
]


def _check(predictions: PredictionBatch, records: RecordSet) -> None:
    if predictions.exists.shape != records.labels.shape:
        raise ValueError(
            f"predictions (B,K)={predictions.exists.shape} does not match "
            f"records (B,K)={records.labels.shape}"
        )
    if predictions.horizon != records.horizon:
        raise ValueError(
            f"prediction horizon {predictions.horizon} != records horizon "
            f"{records.horizon}"
        )


def _overlap(
    pred_start: np.ndarray,
    pred_end: np.ndarray,
    true_start: np.ndarray,
    true_end: np.ndarray,
) -> np.ndarray:
    """Inclusive intersection length of two offset ranges (elementwise)."""
    lo = np.maximum(pred_start, true_start)
    hi = np.minimum(pred_end, true_end)
    return np.maximum(0, hi - lo + 1)


def eta_matrix(predictions: PredictionBatch, records: RecordSet) -> np.ndarray:
    """(B, K) matrix of η_n^k — zero where the event is absent or the
    prediction says absent."""
    _check(predictions, records)
    present = records.labels > 0
    relayed = predictions.exists & present
    inter = _overlap(
        predictions.starts, predictions.ends, records.starts, records.ends
    )
    true_len = np.where(present, records.ends - records.starts + 1, 1)
    eta = np.where(relayed, inter / true_len, 0.0)
    return eta


def recall(predictions: PredictionBatch, records: RecordSet) -> float:
    """REC (Eq. 12): mean η over (record, event) pairs with the event present."""
    _check(predictions, records)
    present = records.labels > 0
    denominator = present.sum()
    if denominator == 0:
        return float("nan")
    return float(eta_matrix(predictions, records)[present].sum() / denominator)


def spillage(predictions: PredictionBatch, records: RecordSet) -> float:
    """SPL (Eq. 13): fraction of non-event frames relayed to the CI.

    True-positive-existence records contribute |pred \\ true| / (H − |true|);
    false-positive-existence records contribute |pred| / H.  Records whose
    true interval covers the whole horizon have no non-event frames and
    contribute zero.
    """
    _check(predictions, records)
    horizon = records.horizon
    present = records.labels > 0
    predicted = predictions.exists

    pred_len = np.where(predicted, predictions.ends - predictions.starts + 1, 0)
    true_len = np.where(present, records.ends - records.starts + 1, 0)
    inter = np.where(
        predicted & present,
        _overlap(predictions.starts, predictions.ends, records.starts, records.ends),
        0,
    )

    both = predicted & present
    non_event = horizon - true_len
    tp_term = np.zeros(pred_len.shape, dtype=float)
    valid = both & (non_event > 0)
    tp_term[valid] = (pred_len[valid] - inter[valid]) / non_event[valid]

    fp_only = predicted & ~present
    fp_term = np.zeros(pred_len.shape, dtype=float)
    fp_term[fp_only] = pred_len[fp_only] / horizon

    total = tp_term + fp_term
    return float(total.sum() / total.size)


def existence_recall(predictions: PredictionBatch, records: RecordSet) -> float:
    """REC_c: fraction of present events that were predicted present."""
    _check(predictions, records)
    present = records.labels > 0
    denominator = present.sum()
    if denominator == 0:
        return float("nan")
    return float((predictions.exists & present).sum() / denominator)


def existence_precision(predictions: PredictionBatch, records: RecordSet) -> float:
    """Fraction of predicted-present events that are actually present."""
    _check(predictions, records)
    predicted = predictions.exists
    denominator = predicted.sum()
    if denominator == 0:
        return float("nan")
    return float((predicted & (records.labels > 0)).sum() / denominator)


def interval_recall(predictions: PredictionBatch, records: RecordSet) -> float:
    """REC_r: mean η over records where the event is present *and*
    predicted present (the interval-stage recall)."""
    _check(predictions, records)
    relayed = predictions.exists & (records.labels > 0)
    denominator = relayed.sum()
    if denominator == 0:
        return float("nan")
    return float(eta_matrix(predictions, records)[relayed].sum() / denominator)


@dataclass(frozen=True)
class EvaluationSummary:
    """All §VI.C accuracy measures of one prediction batch."""

    rec: float
    spl: float
    rec_c: float
    rec_r: float
    prec_c: float
    frames_relayed: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "REC": self.rec,
            "SPL": self.spl,
            "REC_c": self.rec_c,
            "REC_r": self.rec_r,
            "PREC_c": self.prec_c,
            "frames_relayed": self.frames_relayed,
        }


def evaluate(predictions: PredictionBatch, records: RecordSet) -> EvaluationSummary:
    """Compute every accuracy measure in one pass."""
    return EvaluationSummary(
        rec=recall(predictions, records),
        spl=spillage(predictions, records),
        rec_c=existence_recall(predictions, records),
        rec_r=interval_recall(predictions, records),
        prec_c=existence_precision(predictions, records),
        frames_relayed=int(predictions.predicted_frames().sum()),
    )


def _check_masks(relay_mask: np.ndarray, truth_mask: np.ndarray) -> None:
    relay_mask = np.asarray(relay_mask)
    truth_mask = np.asarray(truth_mask)
    if relay_mask.shape != truth_mask.shape or relay_mask.ndim != 3:
        raise ValueError(
            "relay and truth masks must share a (B, K, H) shape; got "
            f"{relay_mask.shape} and {truth_mask.shape}"
        )


def recall_from_masks(relay_mask: np.ndarray, truth_mask: np.ndarray) -> float:
    """Frame-level recall for arbitrary relay masks.

    Generalises REC to the multi-instance setting (paper footnote 1):
    with several occurrence intervals per horizon the prediction is a set
    of segments, naturally represented as a boolean (B, K, H) mask, and
    recall is the fraction of true event frames covered by the mask.
    """
    relay_mask = np.asarray(relay_mask, dtype=bool)
    truth_mask = np.asarray(truth_mask, dtype=bool)
    _check_masks(relay_mask, truth_mask)
    truth_total = truth_mask.sum()
    if truth_total == 0:
        return float("nan")
    return float((relay_mask & truth_mask).sum() / truth_total)


def spillage_from_masks(relay_mask: np.ndarray, truth_mask: np.ndarray) -> float:
    """Frame-level false-positive rate for arbitrary relay masks.

    The mask counterpart of SPL: of all non-event frames, the fraction
    relayed.  Unlike Eq. 13 it needs no per-record case split, which is
    exactly why the multi-instance extension reports it.
    """
    relay_mask = np.asarray(relay_mask, dtype=bool)
    truth_mask = np.asarray(truth_mask, dtype=bool)
    _check_masks(relay_mask, truth_mask)
    non_event = ~truth_mask
    denominator = non_event.sum()
    if denominator == 0:
        return float("nan")
    return float((relay_mask & non_event).sum() / denominator)
