"""Training/calibration/test records — the triplets (X_n, L_n, T_n) of §II.

A :class:`RecordSet` is the batched form used throughout training and
evaluation:

* ``frames`` — the reference frame index of each record;
* ``covariates`` — (B, M, D) collection windows;
* ``labels`` — (B, K) existence indicators 1[E_k ∈ L_n];
* ``starts`` / ``ends`` — (B, K) occurrence-interval offsets in [1, H]
  (0 where the event is absent), with censored events clamped to H;
* ``censored`` — (B, K) δ indicators of Fig. 2.

``frame_targets()`` expands intervals into the (B, K, H) per-offset
occupancy grid consumed by loss L2 and by interval extraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..video.events import EventType

__all__ = ["RecordSet"]


@dataclass
class RecordSet:
    """A batch of §II triplets for a fixed event-type list and horizon.

    ``occupancy`` is the optional multi-instance extension of footnote 1:
    a (B, K, H) grid marking *every* instance's frames in the horizon
    (``starts``/``ends`` still describe the first instance, preserving the
    §II simplification for the interval-regression path).  When present it
    becomes the L2 training target via :meth:`frame_targets`.
    """

    event_types: List[EventType]
    horizon: int
    frames: np.ndarray  # (B,) int
    covariates: np.ndarray  # (B, M, D) float
    labels: np.ndarray  # (B, K) {0,1}
    starts: np.ndarray  # (B, K) int, 0 where absent
    ends: np.ndarray  # (B, K) int, 0 where absent
    censored: np.ndarray  # (B, K) {0,1}
    occupancy: Optional[np.ndarray] = None  # (B, K, H) {0,1}

    def __post_init__(self) -> None:
        self.frames = np.asarray(self.frames, dtype=int)
        self.covariates = np.asarray(self.covariates, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.float64)
        self.starts = np.asarray(self.starts, dtype=int)
        self.ends = np.asarray(self.ends, dtype=int)
        self.censored = np.asarray(self.censored, dtype=np.float64)
        b = self.frames.shape[0]
        k = len(self.event_types)
        if self.covariates.shape[0] != b:
            raise ValueError("covariates batch size mismatch")
        if self.covariates.ndim != 3:
            raise ValueError("covariates must be (B, M, D)")
        for name, arr in (
            ("labels", self.labels),
            ("starts", self.starts),
            ("ends", self.ends),
            ("censored", self.censored),
        ):
            if arr.shape != (b, k):
                raise ValueError(f"{name} must be (B={b}, K={k}), got {arr.shape}")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        present = self.labels > 0
        if np.any(self.starts[present] < 1) or np.any(
            self.ends[present] > self.horizon
        ):
            raise ValueError("present-event offsets must lie in [1, H]")
        if np.any(self.starts[present] > self.ends[present]):
            raise ValueError("start offsets must be <= end offsets")
        if self.occupancy is not None:
            self.occupancy = np.asarray(self.occupancy, dtype=np.float64)
            if self.occupancy.shape != (b, k, self.horizon):
                raise ValueError(
                    f"occupancy must be (B={b}, K={k}, H={self.horizon}), "
                    f"got {self.occupancy.shape}"
                )
            occupied = self.occupancy.sum(axis=2) > 0
            if np.any(occupied & ~(self.labels > 0)):
                raise ValueError(
                    "occupancy marks frames for records labelled absent"
                )

    # ------------------------------------------------------------------
    # Shape helpers
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.frames.shape[0])

    @property
    def num_events(self) -> int:
        return len(self.event_types)

    @property
    def window_size(self) -> int:
        return int(self.covariates.shape[1])

    @property
    def num_channels(self) -> int:
        return int(self.covariates.shape[2])

    # ------------------------------------------------------------------
    # Derived targets
    # ------------------------------------------------------------------
    def frame_targets(self) -> np.ndarray:
        """(B, K, H) occupancy grid used as the L2 training target.

        With multi-instance ``occupancy`` present it is returned directly;
        otherwise the grid is derived from the first-instance intervals
        (1 where offset v ∈ [start_k, end_k]).
        """
        if self.occupancy is not None:
            return self.occupancy
        b, k = self.labels.shape
        offsets = np.arange(1, self.horizon + 1)
        grid = (
            (offsets[None, None, :] >= self.starts[:, :, None])
            & (offsets[None, None, :] <= self.ends[:, :, None])
            & (self.labels[:, :, None] > 0)
        )
        return grid.astype(np.float64)

    def positive_mask(self, event_index: int) -> np.ndarray:
        """(B,) bool: records where event ``event_index`` is present."""
        if not 0 <= event_index < self.num_events:
            raise IndexError(f"event index {event_index} out of range")
        return self.labels[:, event_index] > 0

    def positive_rate(self) -> np.ndarray:
        """(K,) fraction of records containing each event."""
        return self.labels.mean(axis=0)

    # ------------------------------------------------------------------
    # Subsetting
    # ------------------------------------------------------------------
    def subset(self, indices: Sequence[int]) -> "RecordSet":
        """A new RecordSet restricted to the given record indices."""
        indices = np.asarray(indices, dtype=int)
        return RecordSet(
            event_types=self.event_types,
            horizon=self.horizon,
            frames=self.frames[indices],
            covariates=self.covariates[indices],
            labels=self.labels[indices],
            starts=self.starts[indices],
            ends=self.ends[indices],
            censored=self.censored[indices],
            occupancy=(
                self.occupancy[indices] if self.occupancy is not None else None
            ),
        )

    def split(
        self, fraction: float, rng: Optional[np.random.Generator] = None
    ) -> Tuple["RecordSet", "RecordSet"]:
        """Random split into (first, second) with ``fraction`` in the first."""
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")
        rng = rng if rng is not None else np.random.default_rng()
        order = rng.permutation(len(self))
        cut = int(round(fraction * len(self)))
        cut = min(max(cut, 1), len(self) - 1)
        return self.subset(order[:cut]), self.subset(order[cut:])

    def batch_indices(
        self, batch_size: int, rng: Optional[np.random.Generator] = None
    ):
        """Yield the shuffled per-batch index arrays behind :meth:`batches`.

        The training fast path slices precomputed covariate/target arrays
        with these indices instead of materialising a validated
        :class:`RecordSet` per batch; both generators draw the same single
        permutation per pass, so batch contents are identical either way.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        order = (
            rng.permutation(len(self))
            if rng is not None
            else np.arange(len(self))
        )
        for lo in range(0, len(self), batch_size):
            yield order[lo : lo + batch_size]

    def batches(
        self, batch_size: int, rng: Optional[np.random.Generator] = None
    ):
        """Yield shuffled mini-batches (as RecordSets) for training."""
        for indices in self.batch_indices(batch_size, rng=rng):
            yield self.subset(indices)
