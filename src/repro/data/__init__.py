"""Record datasets: §II triplets (X, L, T), censoring, and split builders."""

from .records import RecordSet
from .builder import DatasetBuilder, ExperimentData, build_experiment_data

__all__ = ["RecordSet", "DatasetBuilder", "ExperimentData", "build_experiment_data"]
