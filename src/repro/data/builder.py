"""Build §II record datasets from streams: sampling, labeling, splits.

The paper samples frames from the stream and extracts triplets
(X_n, L_n, T_n); training uses frames f_1..f_P, and the calibration sets
D_c-calib / D_r-calib are "independently sampled in the same way as the
training dataset" (exchangeability is what powers Theorems 4.2/5.2).

:class:`DatasetBuilder` realises this: given a stream and its feature
matrix, it samples reference frames (with a stride to limit temporal
correlation), queries the schedule for horizon events, and packs a
:class:`RecordSet`.  :func:`build_experiment_data` produces the standard
train/calibration/test triple from three exchangeable streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..features.extractors import FeatureExtractor, FeatureMatrix
from ..features.pipeline import CovariatePipeline, Standardizer
from ..video.datasets import DatasetSpec, EVENT_TYPES, make_stream
from ..video.events import EventType
from ..video.stream import VideoStream
from .records import RecordSet

__all__ = ["DatasetBuilder", "ExperimentData", "build_experiment_data"]


class DatasetBuilder:
    """Sample (X, L, T) records from a stream.

    Parameters
    ----------
    window_size:
        Collection window length M.
    horizon:
        Time horizon H.
    stride:
        Gap between consecutive sampled reference frames.  Strided sampling
        keeps the records closer to exchangeable than frame-by-frame
        sampling while still covering the stream.
    pipeline:
        Optional pre-configured covariate pipeline (e.g. with a fitted
        standardizer); a plain one is created otherwise.
    """

    def __init__(
        self,
        window_size: int,
        horizon: int,
        stride: int = 25,
        pipeline: Optional[CovariatePipeline] = None,
    ):
        if window_size <= 0 or horizon <= 0 or stride <= 0:
            raise ValueError("window_size, horizon and stride must be positive")
        self.window_size = window_size
        self.horizon = horizon
        self.stride = stride
        self.pipeline = pipeline or CovariatePipeline(window_size)

    def reference_frames(self, stream_length: int) -> np.ndarray:
        """All valid reference frames: full window behind, full horizon ahead."""
        first = self.window_size - 1
        last = stream_length - self.horizon - 1
        if last < first:
            raise ValueError(
                f"stream of {stream_length} frames too short for M="
                f"{self.window_size}, H={self.horizon}"
            )
        return np.arange(first, last + 1, self.stride)

    def build(
        self,
        stream: VideoStream,
        features: FeatureMatrix,
        event_types: Sequence[EventType],
        max_records: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        multi_instance: bool = False,
    ) -> RecordSet:
        """Assemble a RecordSet for ``stream``.

        When ``max_records`` is given, reference frames are subsampled
        uniformly at random (exchangeably) down to that count.

        ``multi_instance`` enables the footnote-1 extension: the L2 target
        grid (``occupancy``) marks *every* instance in the horizon instead
        of only the first, so the trained θ scores light up for all of
        them and segmented inference can relay each separately.
        """
        if features.num_frames != stream.length:
            raise ValueError("feature matrix length != stream length")
        event_types = list(event_types)
        frames = self.reference_frames(stream.length)
        if max_records is not None and len(frames) > max_records:
            rng = rng if rng is not None else np.random.default_rng()
            frames = np.sort(rng.choice(frames, size=max_records, replace=False))

        k = len(event_types)
        b = len(frames)
        labels = np.zeros((b, k))
        starts = np.zeros((b, k), dtype=int)
        ends = np.zeros((b, k), dtype=int)
        censored = np.zeros((b, k))
        occupancy = np.zeros((b, k, self.horizon)) if multi_instance else None
        for row, frame in enumerate(frames):
            for col, event_type in enumerate(event_types):
                horizon_events = stream.schedule.events_in_horizon(
                    event_type, int(frame), self.horizon
                )
                if not horizon_events:
                    continue
                first = min(horizon_events, key=lambda e: e.start_offset)
                labels[row, col] = 1.0
                starts[row, col] = first.start_offset
                ends[row, col] = first.end_offset
                censored[row, col] = float(first.censored)
                if multi_instance:
                    for event in horizon_events:
                        occupancy[
                            row, col, event.start_offset - 1 : event.end_offset
                        ] = 1.0

        covariates = self.pipeline.covariate_batch(features, frames)
        return RecordSet(
            event_types=event_types,
            horizon=self.horizon,
            frames=frames,
            covariates=covariates,
            labels=labels,
            starts=starts,
            ends=ends,
            censored=censored,
            occupancy=occupancy,
        )


@dataclass
class ExperimentData:
    """The standard data bundle of one experiment run."""

    spec: DatasetSpec
    event_types: List[EventType]
    train: RecordSet
    calibration: RecordSet
    test: RecordSet
    standardizer: Standardizer
    train_stream: VideoStream
    test_stream: VideoStream
    test_features: FeatureMatrix


def build_experiment_data(
    spec: DatasetSpec,
    seed: int = 0,
    stride: Optional[int] = None,
    max_records: Optional[int] = None,
    extractor: Optional[FeatureExtractor] = None,
) -> ExperimentData:
    """Train/calibration/test RecordSets from three exchangeable streams.

    The streams share the dataset spec (same arrival/duration processes and
    observation model) and differ only in seed — precisely the "sampled in
    the same way" premise of the conformal theorems.  The feature
    standardizer is fitted on the training stream only.
    """
    extractor = extractor or FeatureExtractor()
    event_types = [EVENT_TYPES[e] for e in spec.event_ids]
    stride = stride or max(1, spec.window_size)

    streams = {
        name: make_stream(spec, seed=seed * 101 + offset, name=f"{spec.name}-{name}")
        for offset, name in enumerate(("train", "calibration", "test"))
    }
    features = {
        name: extractor.extract(stream, event_types)
        for name, stream in streams.items()
    }
    standardizer = Standardizer.fit(features["train"].values)
    pipeline = CovariatePipeline(spec.window_size, standardizer=standardizer)
    builder = DatasetBuilder(
        window_size=spec.window_size,
        horizon=spec.horizon,
        stride=stride,
        pipeline=pipeline,
    )
    rng = np.random.default_rng(seed)
    records = {
        name: builder.build(
            streams[name],
            features[name],
            event_types,
            max_records=max_records,
            rng=rng,
        )
        for name in streams
    }
    return ExperimentData(
        spec=spec,
        event_types=event_types,
        train=records["train"],
        calibration=records["calibration"],
        test=records["test"],
        standardizer=standardizer,
        train_stream=streams["train"],
        test_stream=streams["test"],
        test_features=features["test"],
    )
