"""Process-level chaos for the sharded fleet: seeded shard fault plans.

The cloud (:mod:`repro.cloud.faults`), ingest, and lifecycle layers all
ship seeded fault injectors; this module extends the chaos stack one
level down, to the *worker processes themselves*.  A
:class:`ShardFaultPlan` is a declarative, JSON-round-trippable schedule
of process-level faults — worker crash at a tick, a hard ``SIGKILL``, a
heartbeat stall (the worker wedges mid-run), a slow shard (heartbeats
decimated so the supervisor's SUSPECT state exercises), and a startup
hang (the worker blocks before its hello) — and a
:class:`ShardFaultInjector` arms exactly one of them inside a shard
worker.

Determinism rules (the supervisor's replay contract depends on them):

* Faults are keyed on ``(shard, attempt)``: a fault armed for attempt 0
  does **not** re-fire on the restarted attempt 1, so a supervised rerun
  converges.
* In-run faults trigger on the worker's *global tick counter* (monotone
  across admission waves), never on wall-clock time — the set of
  heartbeats and checkpoints a doomed attempt emits before dying is a
  pure function of the plan.
* Hangs and stalls are implemented by blocking on the worker's command
  pipe (the coordinator never sends, so the worker wedges until the
  supervisor kills it) — no ``time.sleep`` anywhere, so nothing depends
  on scheduler timing.

:meth:`ShardFaultPlan.seeded` draws a reproducible schedule from a
seeded RNG, mirroring :meth:`repro.cloud.faults.FaultPlan.uniform`.
"""

from __future__ import annotations

import json
import os
import signal
from dataclasses import asdict, dataclass, fields
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..obs import inc, log_warning

__all__ = [
    "SHARD_FAULT_KINDS",
    "ShardCrash",
    "ShardFault",
    "ShardFaultInjector",
    "ShardFaultPlan",
]


class ShardCrash(RuntimeError):
    """The injected in-process crash a shard worker raises at its tick."""


#: Fault kinds a :class:`ShardFault` may carry.
#:
#: ``crash``        — raise :class:`ShardCrash` from the tick hook.
#: ``sigkill``      — ``SIGKILL`` the worker's own pid (no cleanup, no
#:                    traceback; the coordinator sees a bare pipe EOF).
#: ``stall``        — wedge forever at the tick (heartbeats stop; only a
#:                    supervisor deadline can reap the worker).
#: ``slow``         — decimate heartbeats to every ``factor`` ticks for
#:                    the rest of the run (exercises LIVE→SUSPECT→LIVE).
#: ``startup_hang`` — wedge before the hello message (exercises the
#:                    startup deadline).
SHARD_FAULT_KINDS = ("crash", "sigkill", "stall", "slow", "startup_hang")

#: Kinds that trigger at a specific tick (the rest arm at startup).
_TICK_KINDS = ("crash", "sigkill", "stall")


@dataclass(frozen=True)
class ShardFault:
    """One scheduled process-level fault.

    ``tick`` is the worker-global tick count at which an in-run fault
    fires (ignored by ``slow`` / ``startup_hang``); ``attempt`` scopes
    the fault to one spawn generation so restarts heal; ``factor`` is
    the ``slow`` decimation divisor.
    """

    shard: int
    kind: str
    tick: int = 1
    attempt: int = 0
    factor: int = 4

    def __post_init__(self) -> None:
        if self.kind not in SHARD_FAULT_KINDS:
            raise ValueError(
                f"kind must be one of {SHARD_FAULT_KINDS}, got {self.kind!r}"
            )
        if self.shard < 0:
            raise ValueError("shard must be >= 0")
        if self.tick < 1:
            raise ValueError("tick must be >= 1")
        if self.attempt < 0:
            raise ValueError("attempt must be >= 0")
        if self.factor < 2:
            raise ValueError("factor must be >= 2")

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ShardFault":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown ShardFault fields: {sorted(unknown)}")
        return cls(**data)


@dataclass(frozen=True)
class ShardFaultPlan:
    """Declarative schedule of process-level faults for one sharded run.

    At most one fault may be scheduled per ``(shard, attempt)`` pair —
    a worker generation dies (or slows) exactly one way, which keeps
    the replay bookkeeping exact.
    """

    faults: Tuple[ShardFault, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        normalized = tuple(
            fault if isinstance(fault, ShardFault) else ShardFault(**fault)
            for fault in self.faults
        )
        seen = set()
        for fault in normalized:
            key = (fault.shard, fault.attempt)
            if key in seen:
                raise ValueError(
                    f"duplicate fault for shard {fault.shard} "
                    f"attempt {fault.attempt}"
                )
            seen.add(key)
        object.__setattr__(self, "faults", normalized)

    # ------------------------------------------------------------------
    def fault_for(self, shard: int, attempt: int) -> Optional[ShardFault]:
        """The fault armed for this worker generation, if any."""
        for fault in self.faults:
            if fault.shard == shard and fault.attempt == attempt:
                return fault
        return None

    @property
    def max_attempt(self) -> int:
        """Highest attempt index any fault targets (0 when empty)."""
        return max((fault.attempt for fault in self.faults), default=0)

    @classmethod
    def seeded(
        cls,
        num_shards: int,
        rate: float = 0.5,
        max_tick: int = 8,
        seed: int = 0,
        kinds: Sequence[str] = ("crash", "sigkill", "stall"),
    ) -> "ShardFaultPlan":
        """Draw a reproducible chaos schedule from a seeded RNG.

        Each shard independently faults on attempt 0 with probability
        ``rate``; the kind and trigger tick (uniform over
        ``[1, max_tick]``) come from the same RNG stream, so a given
        ``(num_shards, rate, max_tick, seed, kinds)`` tuple always
        yields the same plan — the chaos sweep's determinism contract.
        """
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if max_tick < 1:
            raise ValueError("max_tick must be >= 1")
        kinds = tuple(kinds)
        for kind in kinds:
            if kind not in SHARD_FAULT_KINDS:
                raise ValueError(
                    f"kind must be one of {SHARD_FAULT_KINDS}, got {kind!r}"
                )
        rng = np.random.default_rng(seed)
        faults = []
        for shard in range(num_shards):
            draw = float(rng.random())
            kind = kinds[int(rng.integers(0, len(kinds)))]
            tick = int(rng.integers(1, max_tick + 1))
            if draw < rate:
                faults.append(ShardFault(shard=shard, kind=kind, tick=tick))
        return cls(faults=tuple(faults), seed=seed)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "faults": [fault.to_dict() for fault in self.faults],
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ShardFaultPlan":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown ShardFaultPlan fields: {sorted(unknown)}"
            )
        kwargs = dict(data)
        if "faults" in kwargs:
            kwargs["faults"] = tuple(
                ShardFault.from_dict(fault) for fault in kwargs["faults"]
            )
        return cls(**kwargs)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ShardFaultPlan":
        return cls.from_dict(json.loads(text))


class ShardFaultInjector:
    """Arms one :class:`ShardFault` inside a shard worker process.

    The worker calls :meth:`at_startup` before sending its hello and
    :meth:`on_tick` from its heartbeat hook with the worker-global tick
    counter; :meth:`suppress_heartbeat` implements the ``slow`` kind.
    A wedge (``stall`` / ``startup_hang``) blocks on ``conn.recv()`` —
    the coordinator never sends on that pipe, so the worker hangs
    deterministically until the supervisor kills it.
    """

    def __init__(self, plan: ShardFaultPlan, shard_index: int,
                 attempt: int, conn):
        self.plan = plan
        self.shard_index = shard_index
        self.attempt = attempt
        self.conn = conn
        self.fault = plan.fault_for(shard_index, attempt)
        self.fired = False

    # ------------------------------------------------------------------
    def _wedge(self) -> None:
        """Block until killed (the coordinator never sends to workers)."""
        try:
            self.conn.recv()
        except (EOFError, OSError):
            pass
        # If the pipe closed under us, fall back to waiting on a pipe we
        # own both ends of — truly nothing can wake this worker.
        read_fd, _write_fd = os.pipe()
        os.read(read_fd, 1)

    def _fire(self) -> None:
        fault = self.fault
        self.fired = True
        inc("fleet.shard_faults.fired")
        inc(f"fleet.shard_faults.{fault.kind}")
        log_warning(
            "fleet.shard_fault",
            kind=fault.kind,
            shard=self.shard_index,
            attempt=self.attempt,
            tick=fault.tick,
        )
        if fault.kind == "crash":
            raise ShardCrash(
                f"injected crash in shard {self.shard_index} "
                f"(attempt {self.attempt}, tick {fault.tick})"
            )
        if fault.kind == "sigkill":
            os.kill(os.getpid(), signal.SIGKILL)
        if fault.kind in ("stall", "startup_hang"):
            self._wedge()

    # ------------------------------------------------------------------
    def at_startup(self) -> None:
        """Run the startup-scoped fault, if one is armed."""
        fault = self.fault
        if fault is not None and not self.fired and fault.kind == "startup_hang":
            self._fire()

    def on_tick(self, tick: int) -> None:
        """Fire an in-run fault once its trigger tick is reached."""
        fault = self.fault
        if (
            fault is not None
            and not self.fired
            and fault.kind in _TICK_KINDS
            and tick >= fault.tick
        ):
            self._fire()

    def suppress_heartbeat(self, tick: int) -> bool:
        """Whether the ``slow`` fault swallows this tick's heartbeat."""
        fault = self.fault
        return (
            fault is not None
            and fault.kind == "slow"
            and tick % fault.factor != 0
        )
