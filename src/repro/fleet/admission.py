"""Admission control and tiered load shedding for fleet marshalling.

A fleet that accepts every camera unconditionally has two overload
failure modes: the intake side (more lanes than a worker can tick) and
the serving side (ticks that fall behind real time, visible as rising
tick latency and relay backlog).  This module bounds both without ever
dropping frames:

* **Intake** — :meth:`AdmissionController.submit` admits lanes up to a
  serving capacity and parks the overflow in a *bounded* queue; past the
  queue bound, submission fails loudly (:class:`AdmissionQueueFull`)
  instead of silently accepting work that can never be served.  Queued
  lanes are drained in FIFO waves via :meth:`AdmissionController.next_wave`.
* **Shedding** — :meth:`AdmissionController.heartbeat` consumes the
  backpressure signals the fleet tick loop already exports (tick-latency
  p99 and relay-backlog depth) and degrades one lane per pressured
  heartbeat to the ``"relay-all"`` tier (see
  :data:`~repro.fleet.marshaller.LANE_MODES`): the lane's whole horizon
  is relayed at baseline quality — more CI cost, zero model compute,
  zero dropped frames.  Re-admission is hysteretic: a lane returns to
  serving only after ``readmit_calm_heartbeats`` consecutive heartbeats
  below the *low* watermarks, so a fleet oscillating around the shed
  threshold does not flap.

The controller is a pure deterministic state machine — no clocks, no
randomness — so tests drive it with synthetic signals and sharded runs
reproduce bit-for-bit.  :class:`AdmissionDriver` is the glue that runs it
live: an ``on_tick`` hook reading the registry's backpressure metrics and
applying transitions to a :class:`~repro.fleet.marshaller.FleetMarshaller`
``lane_modes`` mapping between ticks.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Callable, Deque, List, MutableMapping, Optional, Tuple

from ..obs import Gauge, Histogram, get_registry, inc, log_info
from .marshaller import FleetMarshaller  # noqa: F401  (doc cross-reference)

__all__ = [
    "LANE_STATES",
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionDriver",
    "AdmissionQueueFull",
    "Transition",
]

#: Lane lifecycle states tracked by the controller.  ``QUEUED`` lanes
#: wait in the bounded intake queue; ``ADMITTED`` lanes are serving;
#: ``SHED`` lanes are admitted but degraded to relay-all; ``RETIRED``
#: lanes finished their run.
LANE_STATES = ("QUEUED", "ADMITTED", "SHED", "RETIRED")


class AdmissionQueueFull(RuntimeError):
    """The bounded intake queue rejected a lane (explicit, never silent)."""


@dataclass(frozen=True)
class AdmissionConfig:
    """Watermarks and capacities of one admission controller.

    The shed watermarks (``shed_*``) are *high* trip points: a heartbeat
    above either one sheds a lane.  The readmit watermarks are *low*
    trip points: only heartbeats at or below **both** count toward the
    calm streak.  Keeping the low watermarks strictly below the high
    ones is the hysteresis band that prevents shed/readmit flapping.
    """

    max_lanes: int = 64
    queue_capacity: int = 1024
    shed_latency_p99: float = float("inf")
    shed_backlog_frames: float = float("inf")
    readmit_latency_p99: float = 0.0
    readmit_backlog_frames: float = 0.0
    readmit_calm_heartbeats: int = 3
    min_serving_lanes: int = 1

    def __post_init__(self) -> None:
        if self.max_lanes < 1:
            raise ValueError("max_lanes must be >= 1")
        if self.queue_capacity < 0:
            raise ValueError("queue_capacity must be >= 0")
        if self.readmit_latency_p99 > self.shed_latency_p99:
            raise ValueError(
                "readmit_latency_p99 must not exceed shed_latency_p99 "
                "(the gap is the hysteresis band)"
            )
        if self.readmit_backlog_frames > self.shed_backlog_frames:
            raise ValueError(
                "readmit_backlog_frames must not exceed shed_backlog_frames"
            )
        if self.readmit_calm_heartbeats < 1:
            raise ValueError("readmit_calm_heartbeats must be >= 1")
        if self.min_serving_lanes < 1:
            raise ValueError("min_serving_lanes must be >= 1")


@dataclass(frozen=True)
class Transition:
    """One shed or readmit decision, tagged with the tick that made it."""

    kind: str  # "shed" | "readmit"
    lane: str
    tick: int


class AdmissionController:
    """Deterministic intake + overload state machine for one worker.

    Lanes move ``QUEUED -> ADMITTED <-> SHED -> RETIRED``.  Shedding is
    LIFO over the serving set (the most recently admitted lane degrades
    first — the oldest tenants keep full service) and re-admission is
    FIFO over the shed set, one lane per qualifying heartbeat in both
    directions so the fleet adjusts gradually rather than in lockstep.
    """

    def __init__(self, config: Optional[AdmissionConfig] = None):
        self.config = config or AdmissionConfig()
        self._states: "OrderedDict[str, str]" = OrderedDict()
        self._queue: Deque[str] = deque()
        self._shed: List[str] = []
        self._calm_streak = 0
        self.events: List[Transition] = []

    # ------------------------------------------------------------------
    # Intake
    # ------------------------------------------------------------------
    def submit(self, names) -> Tuple[List[str], List[str]]:
        """Offer lanes for admission; returns ``(admitted, queued)``.

        Admission is in offer order up to ``max_lanes`` serving slots;
        the rest join the bounded FIFO queue.  A lane that would
        overflow the queue raises :class:`AdmissionQueueFull` — the
        caller sees exactly which lane was refused, and nothing is
        dropped on the floor.
        """
        admitted: List[str] = []
        queued: List[str] = []
        for name in names:
            if name in self._states:
                raise ValueError(f"lane {name!r} already submitted")
            if not self._queue and self.serving_count() < self.config.max_lanes:
                self._states[name] = "ADMITTED"
                admitted.append(name)
            else:
                if len(self._queue) >= self.config.queue_capacity:
                    raise AdmissionQueueFull(
                        f"lane {name!r} refused: intake queue at capacity "
                        f"({self.config.queue_capacity})"
                    )
                self._states[name] = "QUEUED"
                self._queue.append(name)
                queued.append(name)
        if admitted:
            inc("fleet.admission.admitted", len(admitted))
        if queued:
            inc("fleet.admission.queued", len(queued))
        return admitted, queued

    def retire(self, names) -> None:
        """Mark lanes done (their wave completed); shed membership ends."""
        for name in names:
            state = self._states.get(name)
            if state in ("ADMITTED", "SHED"):
                self._states[name] = "RETIRED"
                if name in self._shed:
                    self._shed.remove(name)

    def next_wave(self) -> List[str]:
        """Admit up to ``max_lanes`` queued lanes as the next wave (FIFO)."""
        wave: List[str] = []
        while self._queue and len(wave) < self.config.max_lanes:
            name = self._queue.popleft()
            self._states[name] = "ADMITTED"
            wave.append(name)
        if wave:
            inc("fleet.admission.waves")
            inc("fleet.admission.admitted", len(wave))
            log_info("fleet.admission.wave", lanes=len(wave))
        return wave

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def lane_state(self, name: str) -> Optional[str]:
        return self._states.get(name)

    def serving_count(self) -> int:
        return sum(1 for s in self._states.values() if s == "ADMITTED")

    def shed_count(self) -> int:
        return len(self._shed)

    def queued_count(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    # Overload FSM
    # ------------------------------------------------------------------
    def heartbeat(
        self, tick: int, latency_p99: float, backlog_frames: float
    ) -> List[Transition]:
        """Feed one backpressure sample; returns the transitions it causes.

        * Above either shed watermark: the calm streak resets and the
          most recently admitted serving lane degrades (never below
          ``min_serving_lanes``).
        * At or below both readmit watermarks: the calm streak grows;
          once it reaches ``readmit_calm_heartbeats`` the
          longest-shed lane is re-admitted and the streak restarts (so
          recovery is also one lane per qualifying streak, not a
          thundering herd).
        * In the hysteresis band between the watermarks the streak
          holds — neither growing nor resetting.
        """
        config = self.config
        pressured = (
            latency_p99 > config.shed_latency_p99
            or backlog_frames > config.shed_backlog_frames
        )
        calm = (
            latency_p99 <= config.readmit_latency_p99
            and backlog_frames <= config.readmit_backlog_frames
        )
        transitions: List[Transition] = []
        if pressured:
            self._calm_streak = 0
            serving = [
                name for name, state in self._states.items()
                if state == "ADMITTED"
            ]
            if len(serving) > config.min_serving_lanes:
                lane = serving[-1]
                self._states[lane] = "SHED"
                self._shed.append(lane)
                transitions.append(Transition("shed", lane, tick))
        elif calm:
            self._calm_streak += 1
            if (
                self._shed
                and self._calm_streak >= config.readmit_calm_heartbeats
            ):
                lane = self._shed.pop(0)
                self._states[lane] = "ADMITTED"
                transitions.append(Transition("readmit", lane, tick))
                self._calm_streak = 0
        self.events.extend(transitions)
        return transitions


class AdmissionDriver:
    """``on_tick`` hook wiring live backpressure into an admission FSM.

    After every fleet tick the driver samples the shed signals — the
    ``fleet.tick_seconds`` histogram's p99 and the
    ``fleet.backlog.frames`` gauge, both exported by
    :meth:`FleetMarshaller._tick_telemetry` — feeds them to the
    controller as a heartbeat, and applies the resulting transitions to
    the run's live ``lane_modes`` mapping, where they take effect at the
    next tick boundary.

    ``signals``, when given, replaces the registry read with
    ``signals(tick) -> (latency_p99, backlog_frames)`` — deterministic
    tests inject synthetic pressure this way, and it is also the seam
    for external pressure sources.  With observability disabled the
    registry has no series to read and the driver reports zero pressure.

    A driver whose controller never transitions is behaviorally inert:
    the wrapped run stays byte-identical to one without it.
    """

    def __init__(
        self,
        controller: AdmissionController,
        lane_modes: MutableMapping[str, str],
        signals: Optional[Callable[[int], Tuple[float, float]]] = None,
        on_tick: Optional[Callable[[int], None]] = None,
    ):
        self.controller = controller
        self.lane_modes = lane_modes
        self.signals = signals
        self.on_tick = on_tick

    def read_signals(self, tick: int) -> Tuple[float, float]:
        if self.signals is not None:
            latency_p99, backlog = self.signals(tick)
        else:
            registry = get_registry()
            histogram = registry.get("fleet.tick_seconds")
            latency_p99 = (
                histogram.percentile(99)
                if isinstance(histogram, Histogram)
                else 0.0
            )
            gauge = registry.get("fleet.backlog.frames")
            backlog = gauge.read() if isinstance(gauge, Gauge) else 0.0
        if latency_p99 != latency_p99:
            latency_p99 = 0.0
        if backlog != backlog:
            backlog = 0.0
        return float(latency_p99), float(backlog)

    def __call__(self, tick: int) -> None:
        latency_p99, backlog = self.read_signals(tick)
        for transition in self.controller.heartbeat(tick, latency_p99, backlog):
            self.lane_modes[transition.lane] = (
                "relay-all" if transition.kind == "shed" else "serve"
            )
        if self.on_tick is not None:
            self.on_tick(tick)
