"""Sharded fleet scale-out: multi-process marshalling at 1k+ streams.

One :class:`~repro.fleet.marshaller.FleetMarshaller` tick loop is a
single Python process; past a few hundred lanes the stacked forward pass
and the relay flush saturate one core while the others idle.  This
module scales out by *partitioning* the lane set across N shard worker
processes, each running its own complete marshalling stack — engine,
resilient service wrapper, shard-local shadow ledgers, fresh
observability singletons — while a coordinator drives the run and merges
the results exactly:

* **Per-stream reports** merge by construction: a lane's report depends
  only on its own stream (the equivalence contract in
  :mod:`repro.fleet.marshaller`), so with a fixed partition the sharded
  run's per-stream ``to_dict()`` payloads are byte-identical to a
  single-process :class:`FleetMarshaller` over the same lanes — pinned
  in ``tests/fleet/test_sharded.py``, including under seeded chaos.
* **Ledgers** merge exactly: each shard bills against its own account,
  and frames/requests are integers, so
  :meth:`~repro.cloud.service.UsageLedger.merge` reproduces the pooled
  totals (costs add; under *tiered* pricing per-shard accounts walk the
  tier schedule separately, so the merged cost is an upper bound on a
  single pooled account — by design, and documented in DESIGN.md).
* **Observability** merges deterministically: each worker starts from a
  fresh :class:`~repro.obs.MetricsRegistry` / flight recorder, ships a
  picklable snapshot home, and the coordinator folds snapshots into the
  parent registry in sorted-name order
  (:meth:`~repro.obs.MetricsRegistry.merge_from`), renaming each shard's
  fleet pseudo-lane so flight rings never collide.

Worker processes communicate over one duplex pipe each: heartbeat
messages stream back per tick (the coordinator's liveness/progress
signal) and a single :class:`ShardResult` returns at the end.  Workers
never share state; a crashed shard surfaces as a
:class:`RuntimeError` naming the shard and carrying its traceback.

Admission control composes per shard: give the coordinator an
:class:`~repro.fleet.admission.AdmissionConfig` and every worker runs
its lanes through a shard-local
:class:`~repro.fleet.admission.AdmissionController` — bounded intake
queue drained in FIFO waves, pressured lanes shed to the relay-all tier
between ticks, with every transition recorded in the shard's flight
recorder and merged home.
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..cloud.faults import FaultInjector, FaultPlan
from ..cloud.pricing import PricingModel
from ..cloud.resilient import ResilientCIClient, RetryPolicy
from ..cloud.service import UsageLedger
from ..obs import (
    FlightRecorder,
    MetricsRegistry,
    TimeSeriesStore,
    configure,
    get_flight_recorder,
    get_registry,
    inc,
    is_enabled,
    log_info,
    set_flight_recorder,
    set_registry,
    set_timeseries,
)
from ..obs.flight import FLEET_LANE
from .admission import AdmissionConfig, AdmissionController, AdmissionDriver, Transition
from .marshaller import FleetLane, FleetMarshaller, FleetReport
from .service import FleetCIService

__all__ = [
    "PARTITIONS",
    "ChaosServiceFactory",
    "PlainServiceFactory",
    "ShardResult",
    "ShardedFleetMarshaller",
    "ShardedFleetReport",
    "contiguous_partition",
    "make_partition",
    "striped_partition",
]


# ----------------------------------------------------------------------
# Partitions
# ----------------------------------------------------------------------
def contiguous_partition(
    lanes: Sequence[FleetLane], num_shards: int
) -> List[List[FleetLane]]:
    """Split ``lanes`` into ``num_shards`` balanced order-preserving blocks.

    Sizes differ by at most one (earlier shards take the remainder), so
    a fixed lane list always maps to the same shards — the determinism
    the byte-identity pin depends on.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    lanes = list(lanes)
    base, extra = divmod(len(lanes), num_shards)
    shards: List[List[FleetLane]] = []
    index = 0
    for i in range(num_shards):
        size = base + (1 if i < extra else 0)
        shards.append(lanes[index:index + size])
        index += size
    return shards

def striped_partition(
    lanes: Sequence[FleetLane], num_shards: int
) -> List[List[FleetLane]]:
    """Deal ``lanes`` round-robin across shards (``lanes[i::num_shards]``).

    Spreads heterogeneous lanes (e.g. the experiment's test stream plus
    synthetic fleet lanes) evenly when contiguous blocks would skew one
    shard's workload.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    lanes = list(lanes)
    return [lanes[i::num_shards] for i in range(num_shards)]

#: Registry of named partition strategies (CLI ``--partition``).
PARTITIONS: Dict[str, Callable[[Sequence[FleetLane], int], List[List[FleetLane]]]] = {
    "contiguous": contiguous_partition,
    "striped": striped_partition,
}

def make_partition(partition) -> Callable[[Sequence[FleetLane], int], List[List[FleetLane]]]:
    """Resolve a partition name or pass a callable through unchanged."""
    if callable(partition):
        return partition
    try:
        return PARTITIONS[partition]
    except KeyError:
        raise ValueError(
            f"unknown partition {partition!r}; choose from "
            f"{sorted(PARTITIONS)} or pass a callable"
        ) from None


# ----------------------------------------------------------------------
# Service factories (picklable — they cross the process boundary)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlainServiceFactory:
    """Build one fault-free :class:`FleetCIService` per shard."""

    pricing: Optional[PricingModel] = None
    ci_fps: float = 20.0

    def __call__(self, shard_index: int, streams):
        return FleetCIService(streams, pricing=self.pricing, ci_fps=self.ci_fps)

@dataclass(frozen=True)
class ChaosServiceFactory:
    """Build one seeded faulty-but-resilient service stack per shard.

    Each shard derives its own fault/retry seeds from ``seed`` and its
    shard index, so a given partition replays bit-for-bit while shards
    stay statistically independent.
    """

    fault_rate: float = 0.1
    seed: int = 0
    pricing: Optional[PricingModel] = None
    ci_fps: float = 20.0
    retry_policy: Optional[RetryPolicy] = None

    def __call__(self, shard_index: int, streams):
        shard_seed = self.seed + 101 * shard_index
        service = FleetCIService(
            streams, pricing=self.pricing, ci_fps=self.ci_fps
        )
        injector = FaultInjector(
            service, FaultPlan(seed=shard_seed).with_failure_rate(self.fault_rate)
        )
        policy = self.retry_policy or RetryPolicy(seed=shard_seed)
        return ResilientCIClient(injector, policy=policy)


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass
class ShardResult:
    """Everything one shard worker ships back to the coordinator."""

    index: int
    lane_names: List[str]
    report: FleetReport
    ledger: UsageLedger
    registry_state: Dict
    flight_lanes: Dict
    flight_dumps: List[Dict]
    busy_seconds: float
    admission_events: List[Transition] = field(default_factory=list)

@dataclass
class ShardedFleetReport(FleetReport):
    """A merged :class:`FleetReport` plus shard-level accounting.

    ``ticks`` is the *maximum* over shards (shards tick concurrently;
    the slowest defines fleet wall time) while relay/shed counters and
    costs are sums.  ``ledger`` is the exact multi-account rollup of the
    per-shard :class:`~repro.cloud.service.UsageLedger` deltas.
    """

    num_shards: int = 0
    shard_ticks: List[int] = field(default_factory=list)
    shard_busy_seconds: List[float] = field(default_factory=list)
    coordinator_seconds: float = 0.0
    heartbeats: int = 0
    ledger: UsageLedger = field(default_factory=UsageLedger)
    admission_events: List[Tuple[int, Transition]] = field(default_factory=list)

    @property
    def critical_path_seconds(self) -> float:
        """The run's parallel critical path: the busiest shard's CPU time
        plus coordination (partition + merge) overhead.  On a machine
        with >= ``num_shards`` free cores this is the wall-clock floor;
        the throughput benchmark gates on it because it is
        machine-independent where wall time on a shared CI box is not."""
        return max(self.shard_busy_seconds, default=0.0) + self.coordinator_seconds

    def to_dict(self, include_detections: bool = False) -> Dict[str, object]:
        out = super().to_dict(include_detections=include_detections)
        out["num_shards"] = self.num_shards
        out["shard_ticks"] = list(self.shard_ticks)
        out["heartbeats"] = self.heartbeats
        out["ledger"] = {
            "frames_processed": self.ledger.frames_processed,
            "requests": self.ledger.requests,
            "total_cost": self.ledger.total_cost,
            "frames_per_event": dict(sorted(self.ledger.frames_per_event.items())),
        }
        out["admission_events"] = [
            {"shard": shard, "kind": t.kind, "lane": t.lane, "tick": t.tick}
            for shard, t in self.admission_events
        ]
        return out


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class _HeartbeatSender:
    """Per-tick pipe heartbeat, decimated to every ``every`` ticks."""

    def __init__(self, conn, shard_index: int, every: int):
        self.conn = conn
        self.shard_index = shard_index
        self.every = max(1, int(every))
        self.ticks = 0

    def __call__(self, tick: int) -> None:
        self.ticks += 1
        if tick % self.every == 0:
            self.conn.send(("tick", self.shard_index, tick))

def _fold_wave(total: FleetReport, wave: FleetReport) -> None:
    """Accumulate one admission wave's report into the shard total.

    Waves run *sequentially* inside a worker, so ticks add (unlike the
    coordinator's cross-shard merge, where concurrent shards take the
    max).
    """
    total.per_stream.update(wave.per_stream)
    total.ticks += wave.ticks
    total.max_batch_size = max(total.max_batch_size, wave.max_batch_size)
    total.relays_flushed += wave.relays_flushed
    total.relays_postponed += wave.relays_postponed
    total.shared_cost += wave.shared_cost
    total.shared_frames += wave.shared_frames
    total.shed_transitions += wave.shed_transitions
    total.readmit_transitions += wave.readmit_transitions

def _run_shard(conn, shard_index: int, payload: Dict) -> ShardResult:
    # Fresh observability singletons, always: under "fork" the child
    # inherits the parent's registry and would double-count every metric
    # it merges home; under "spawn" these are fresh anyway but the
    # configure() switch still needs setting.
    set_registry(MetricsRegistry())
    set_flight_recorder(FlightRecorder())
    set_timeseries(TimeSeriesStore())
    configure(enabled=payload["telemetry"])

    fleet: FleetMarshaller = payload["fleet"]
    lanes: List[FleetLane] = payload["lanes"]
    run_kwargs: Dict = payload["run_kwargs"]
    factory = payload["service_factory"]
    admission: Optional[AdmissionConfig] = payload["admission"]
    signals = payload["admission_signals"]

    busy_start = time.process_time()
    service = factory(shard_index, [lane.stream for lane in lanes])
    heartbeat = _HeartbeatSender(
        conn, shard_index, payload["heartbeat_every"]
    )
    admission_events: List[Transition] = []
    if admission is None:
        report = fleet.run(lanes, service, on_tick=heartbeat, **run_kwargs)
    else:
        by_name = {lane.name: lane for lane in lanes}
        controller = AdmissionController(admission)
        serving, _ = controller.submit([lane.name for lane in lanes])
        lane_modes: Dict[str, str] = {}
        driver = AdmissionDriver(
            controller, lane_modes, signals=signals, on_tick=heartbeat
        )
        report = FleetReport(scheduler=fleet.scheduler.name)
        while serving:
            wave = fleet.run(
                [by_name[name] for name in serving],
                service,
                on_tick=driver,
                lane_modes=lane_modes,
                **run_kwargs,
            )
            _fold_wave(report, wave)
            controller.retire(serving)
            for name in serving:
                lane_modes.pop(name, None)
            serving = controller.next_wave()
        admission_events = list(controller.events)
    busy_seconds = time.process_time() - busy_start

    registry = get_registry()
    recorder = get_flight_recorder()
    return ShardResult(
        index=shard_index,
        lane_names=[lane.name for lane in lanes],
        report=report,
        ledger=service.ledger,
        registry_state=registry.dump_state() if payload["telemetry"] else {},
        flight_lanes=recorder.snapshot() if payload["telemetry"] else {},
        flight_dumps=recorder.dumps if payload["telemetry"] else [],
        busy_seconds=busy_seconds,
        admission_events=admission_events,
    )

def _shard_worker(conn, shard_index: int, payload: Dict) -> None:
    """Process entry point (module-level, so ``spawn`` can pickle it)."""
    try:
        result = _run_shard(conn, shard_index, payload)
        conn.send(("done", shard_index, result))
    except Exception:
        conn.send(("error", shard_index, traceback.format_exc()))
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
class ShardedFleetMarshaller:
    """Partition a lane set across worker processes and merge exactly.

    Parameters
    ----------
    fleet:
        The fleet marshaller each worker replicates (pickled to every
        shard; workers never share it).  Scheduler and budget apply
        *per shard*.
    num_shards:
        Worker process count.  Empty shards (more shards than lanes)
        are skipped.
    partition:
        A :data:`PARTITIONS` name or a callable
        ``partition(lanes, num_shards) -> List[List[FleetLane]]``.
        The partition is the reproducibility contract: a fixed partition
        makes the whole run deterministic.
    service_factory:
        Picklable ``factory(shard_index, streams) -> service`` building
        each shard's private CI stack; defaults to
        :class:`PlainServiceFactory`.
    admission:
        Optional :class:`~repro.fleet.admission.AdmissionConfig`; when
        given, every shard runs intake + load shedding locally.
    admission_signals:
        Optional picklable ``signals(tick) -> (latency_p99,
        backlog_frames)`` override for the shard admission drivers
        (tests inject synthetic overload this way; default reads each
        shard's live registry).
    start_method:
        ``multiprocessing`` start method (``"fork"``/``"spawn"``/
        ``None`` = platform default).  Everything a worker needs is
        pickled, so ``spawn`` works everywhere; the CI runs a spawn
        smoke test to keep it that way.
    heartbeat_every:
        Stream a liveness heartbeat every N worker ticks.
    """

    def __init__(
        self,
        fleet: FleetMarshaller,
        num_shards: int,
        partition="contiguous",
        service_factory=None,
        admission: Optional[AdmissionConfig] = None,
        admission_signals=None,
        start_method: Optional[str] = None,
        heartbeat_every: int = 1,
    ):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if heartbeat_every < 1:
            raise ValueError("heartbeat_every must be >= 1")
        self.fleet = fleet
        self.num_shards = int(num_shards)
        self.partition = make_partition(partition)
        self.service_factory = service_factory or PlainServiceFactory()
        self.admission = admission
        self.admission_signals = admission_signals
        self.start_method = start_method
        self.heartbeat_every = int(heartbeat_every)

    # ------------------------------------------------------------------
    def run(
        self,
        lanes: Sequence[FleetLane],
        start_frame: Optional[int] = None,
        max_horizons: Optional[int] = None,
        failure_policy: str = "raise",
        max_deferrals: int = 8,
        guard=None,
        on_heartbeat: Optional[Callable[[int, int], None]] = None,
    ) -> ShardedFleetReport:
        """Marshal ``lanes`` across the shard fleet and merge the results.

        ``start_frame`` / ``max_horizons`` / ``failure_policy`` /
        ``max_deferrals`` / ``guard`` are forwarded verbatim to every
        shard's :meth:`FleetMarshaller.run`.  ``on_heartbeat``, when
        given, is called as ``on_heartbeat(shard_index, tick)`` for every
        heartbeat message a worker streams back — the live-progress hook
        the ``watch --shards`` dashboard draws from.

        Returns a :class:`ShardedFleetReport` whose ``per_stream``
        mapping follows the *original* lane order regardless of the
        partition, so ``to_dict()`` comparisons against a
        single-process run need no canonicalisation.
        """
        lanes = list(lanes)
        if not lanes:
            raise ValueError("a sharded fleet run needs at least one lane")
        coord_start = time.perf_counter()
        shards = [s for s in self.partition(lanes, self.num_shards) if s]
        partitioned = [lane.name for shard in shards for lane in shard]
        if sorted(partitioned) != sorted(lane.name for lane in lanes):
            raise ValueError(
                "partition must produce a permutation of the lane set"
            )
        run_kwargs = {
            "start_frame": start_frame,
            "max_horizons": max_horizons,
            "failure_policy": failure_policy,
            "max_deferrals": max_deferrals,
            "guard": guard,
        }
        telemetry = is_enabled()
        coordinator_seconds = time.perf_counter() - coord_start

        context = mp.get_context(self.start_method)
        processes = []
        pending: Dict[object, int] = {}
        for index, shard in enumerate(shards):
            payload = {
                "fleet": self.fleet,
                "lanes": shard,
                "run_kwargs": run_kwargs,
                "service_factory": self.service_factory,
                "admission": self.admission,
                "admission_signals": self.admission_signals,
                "telemetry": telemetry,
                "heartbeat_every": self.heartbeat_every,
            }
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_shard_worker,
                args=(child_conn, index, payload),
                daemon=True,
            )
            process.start()
            child_conn.close()  # the worker owns its end now
            processes.append(process)
            pending[parent_conn] = index

        results: Dict[int, ShardResult] = {}
        errors: Dict[int, str] = {}
        heartbeats = 0
        while pending:
            for conn in mp_connection.wait(list(pending)):
                try:
                    message = conn.recv()
                except EOFError:
                    index = pending.pop(conn)
                    conn.close()
                    if index not in results and index not in errors:
                        errors[index] = "shard worker exited without a result"
                    continue
                kind = message[0]
                if kind == "tick":
                    _, index, tick = message
                    heartbeats += 1
                    if on_heartbeat is not None:
                        on_heartbeat(index, tick)
                elif kind == "done":
                    results[message[1]] = message[2]
                elif kind == "error":
                    errors[message[1]] = message[2]
        for process in processes:
            process.join()
        if errors:
            detail = "\n\n".join(
                f"--- shard {index} ---\n{tb}"
                for index, tb in sorted(errors.items())
            )
            raise RuntimeError(
                f"{len(errors)} shard(s) failed:\n{detail}"
            )

        merge_start = time.perf_counter()
        report = self._merge(lanes, shards, results, telemetry)
        report.heartbeats = heartbeats
        report.coordinator_seconds = (
            coordinator_seconds + time.perf_counter() - merge_start
        )
        inc("fleet.sharded.runs")
        log_info(
            "fleet.sharded_complete",
            shards=len(shards),
            streams=len(lanes),
            ticks=report.ticks,
            heartbeats=heartbeats,
        )
        return report

    # ------------------------------------------------------------------
    def _merge(
        self,
        lanes: Sequence[FleetLane],
        shards: Sequence[Sequence[FleetLane]],
        results: Dict[int, ShardResult],
        telemetry: bool,
    ) -> ShardedFleetReport:
        report = ShardedFleetReport(
            scheduler=self.fleet.scheduler.name,
            num_shards=len(shards),
        )
        by_lane = {}
        for index in sorted(results):
            res = results[index]
            report.shard_ticks.append(res.report.ticks)
            report.shard_busy_seconds.append(res.busy_seconds)
            report.ticks = max(report.ticks, res.report.ticks)
            report.max_batch_size = max(
                report.max_batch_size, res.report.max_batch_size
            )
            report.relays_flushed += res.report.relays_flushed
            report.relays_postponed += res.report.relays_postponed
            report.shared_cost += res.report.shared_cost
            report.shared_frames += res.report.shared_frames
            report.shed_transitions += res.report.shed_transitions
            report.readmit_transitions += res.report.readmit_transitions
            report.ledger.merge(res.ledger)
            report.admission_events.extend(
                (index, transition) for transition in res.admission_events
            )
            by_lane.update(res.report.per_stream)
            if telemetry:
                registry = get_registry()
                registry.merge_from(res.registry_state)
                recorder = get_flight_recorder()
                shard_fleet_lane = f"{FLEET_LANE}/shard{index}"
                renamed = {
                    (shard_fleet_lane if lane == FLEET_LANE else lane): entries
                    for lane, entries in res.flight_lanes.items()
                }
                dumps = []
                for dump in res.flight_dumps:
                    dump = dict(dump)
                    dump["shard"] = index
                    dump["lanes"] = {
                        (shard_fleet_lane if lane == FLEET_LANE else lane): rows
                        for lane, rows in dump.get("lanes", {}).items()
                    }
                    dumps.append(dump)
                recorder.merge_from(renamed, dumps=dumps)
        # Original lane order, whatever the partition did.
        for lane in lanes:
            report.per_stream[lane.name] = by_lane[lane.name]
        return report
