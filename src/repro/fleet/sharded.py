"""Sharded fleet scale-out: multi-process marshalling at 1k+ streams.

One :class:`~repro.fleet.marshaller.FleetMarshaller` tick loop is a
single Python process; past a few hundred lanes the stacked forward pass
and the relay flush saturate one core while the others idle.  This
module scales out by *partitioning* the lane set across N shard worker
processes, each running its own complete marshalling stack — engine,
resilient service wrapper, shard-local shadow ledgers, fresh
observability singletons — while a coordinator drives the run and merges
the results exactly:

* **Per-stream reports** merge by construction: a lane's report depends
  only on its own stream (the equivalence contract in
  :mod:`repro.fleet.marshaller`), so with a fixed partition the sharded
  run's per-stream ``to_dict()`` payloads are byte-identical to a
  single-process :class:`FleetMarshaller` over the same lanes — pinned
  in ``tests/fleet/test_sharded.py``, including under seeded chaos.
* **Ledgers** merge exactly: each shard bills against its own account,
  and frames/requests are integers, so
  :meth:`~repro.cloud.service.UsageLedger.merge` reproduces the pooled
  totals (costs add; under *tiered* pricing per-shard accounts walk the
  tier schedule separately, so the merged cost is an upper bound on a
  single pooled account — by design, and documented in DESIGN.md).
* **Observability** merges deterministically: each worker starts from a
  fresh :class:`~repro.obs.MetricsRegistry` / flight recorder, ships a
  picklable snapshot home, and the coordinator folds snapshots into the
  parent registry in sorted-name order
  (:meth:`~repro.obs.MetricsRegistry.merge_from`), renaming each shard's
  fleet pseudo-lane so flight rings never collide.

Worker processes communicate over one duplex pipe each: a hello message
on startup (the spawn deadline's signal), heartbeat messages per tick
(the coordinator's liveness/progress signal), periodic self-checksummed
:class:`~repro.fleet.supervisor.ShardCheckpoint` snapshots when
supervision is on, and a single :class:`ShardResult` at the end.
Workers never share state.  Without supervision a crashed shard
surfaces as a :class:`RuntimeError` naming the shard and carrying its
traceback — but every exit path now terminates, joins, and closes the
whole worker set first, so a failed run never leaks children or pipes.

With a :class:`~repro.fleet.supervisor.SupervisorConfig` the
coordinator becomes self-healing: every wait is bounded, a liveness FSM
(LIVE→SUSPECT→DEAD) reaps crashed *and* wedged workers, dead shards
respawn under a bounded restart budget and replay deterministically
(verified checkpoint-by-checkpoint), and shards that exhaust the budget
escalate — their lanes re-run in the coordinator, exactly
(``"rescue"``) or through the relay-all degraded tier (``"degrade"``) —
so frames are never dropped and the merged ledger stays exactly-once.
Process-level chaos to exercise all of it comes from a seeded
:class:`~repro.fleet.shard_faults.ShardFaultPlan`.

Admission control composes per shard: give the coordinator an
:class:`~repro.fleet.admission.AdmissionConfig` and every worker runs
its lanes through a shard-local
:class:`~repro.fleet.admission.AdmissionController` — bounded intake
queue drained in FIFO waves, pressured lanes shed to the relay-all tier
between ticks, with every transition recorded in the shard's flight
recorder and merged home.
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..cloud.faults import FaultInjector, FaultPlan
from ..cloud.pricing import PricingModel
from ..cloud.resilient import ResilientCIClient, RetryPolicy
from ..cloud.service import UsageLedger
from ..obs import (
    FlightRecorder,
    MetricsRegistry,
    TimeSeriesStore,
    configure,
    get_flight_recorder,
    get_registry,
    get_timeseries,
    inc,
    is_enabled,
    log_info,
    set_flight_recorder,
    set_registry,
    set_timeseries,
)
from ..obs.flight import FLEET_LANE
from .admission import AdmissionConfig, AdmissionController, AdmissionDriver, Transition
from .marshaller import FleetLane, FleetMarshaller, FleetReport
from .shard_faults import ShardFaultInjector, ShardFaultPlan
from .supervisor import ShardCheckpoint, ShardSupervisor, SupervisorConfig
from .service import FleetCIService

__all__ = [
    "PARTITIONS",
    "ChaosServiceFactory",
    "PlainServiceFactory",
    "ShardResult",
    "ShardedFleetMarshaller",
    "ShardedFleetReport",
    "contiguous_partition",
    "make_partition",
    "striped_partition",
]


# ----------------------------------------------------------------------
# Partitions
# ----------------------------------------------------------------------
def contiguous_partition(
    lanes: Sequence[FleetLane], num_shards: int
) -> List[List[FleetLane]]:
    """Split ``lanes`` into ``num_shards`` balanced order-preserving blocks.

    Sizes differ by at most one (earlier shards take the remainder), so
    a fixed lane list always maps to the same shards — the determinism
    the byte-identity pin depends on.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    lanes = list(lanes)
    base, extra = divmod(len(lanes), num_shards)
    shards: List[List[FleetLane]] = []
    index = 0
    for i in range(num_shards):
        size = base + (1 if i < extra else 0)
        shards.append(lanes[index:index + size])
        index += size
    return shards

def striped_partition(
    lanes: Sequence[FleetLane], num_shards: int
) -> List[List[FleetLane]]:
    """Deal ``lanes`` round-robin across shards (``lanes[i::num_shards]``).

    Spreads heterogeneous lanes (e.g. the experiment's test stream plus
    synthetic fleet lanes) evenly when contiguous blocks would skew one
    shard's workload.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    lanes = list(lanes)
    return [lanes[i::num_shards] for i in range(num_shards)]

#: Registry of named partition strategies (CLI ``--partition``).
PARTITIONS: Dict[str, Callable[[Sequence[FleetLane], int], List[List[FleetLane]]]] = {
    "contiguous": contiguous_partition,
    "striped": striped_partition,
}

def make_partition(partition) -> Callable[[Sequence[FleetLane], int], List[List[FleetLane]]]:
    """Resolve a partition name or pass a callable through unchanged."""
    if callable(partition):
        return partition
    try:
        return PARTITIONS[partition]
    except KeyError:
        raise ValueError(
            f"unknown partition {partition!r}; choose from "
            f"{sorted(PARTITIONS)} or pass a callable"
        ) from None


# ----------------------------------------------------------------------
# Service factories (picklable — they cross the process boundary)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlainServiceFactory:
    """Build one fault-free :class:`FleetCIService` per shard."""

    pricing: Optional[PricingModel] = None
    ci_fps: float = 20.0

    def __call__(self, shard_index: int, streams):
        return FleetCIService(streams, pricing=self.pricing, ci_fps=self.ci_fps)

@dataclass(frozen=True)
class ChaosServiceFactory:
    """Build one seeded faulty-but-resilient service stack per shard.

    Each shard derives its own fault/retry seeds from ``seed`` and its
    shard index, so a given partition replays bit-for-bit while shards
    stay statistically independent.
    """

    fault_rate: float = 0.1
    seed: int = 0
    pricing: Optional[PricingModel] = None
    ci_fps: float = 20.0
    retry_policy: Optional[RetryPolicy] = None

    def __call__(self, shard_index: int, streams):
        shard_seed = self.seed + 101 * shard_index
        service = FleetCIService(
            streams, pricing=self.pricing, ci_fps=self.ci_fps
        )
        injector = FaultInjector(
            service, FaultPlan(seed=shard_seed).with_failure_rate(self.fault_rate)
        )
        policy = self.retry_policy or RetryPolicy(seed=shard_seed)
        return ResilientCIClient(injector, policy=policy)


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass
class ShardResult:
    """Everything one shard worker ships back to the coordinator."""

    index: int
    lane_names: List[str]
    report: FleetReport
    ledger: UsageLedger
    registry_state: Dict
    flight_lanes: Dict
    flight_dumps: List[Dict]
    busy_seconds: float
    admission_events: List[Transition] = field(default_factory=list)

@dataclass
class ShardedFleetReport(FleetReport):
    """A merged :class:`FleetReport` plus shard-level accounting.

    ``ticks`` is the *maximum* over shards (shards tick concurrently;
    the slowest defines fleet wall time) while relay/shed counters and
    costs are sums.  ``ledger`` is the exact multi-account rollup of the
    per-shard :class:`~repro.cloud.service.UsageLedger` deltas.

    ``heartbeats`` counts only the heartbeats of worker attempts that
    *completed* — a supervised run that restarted a shard replays the
    dead attempt's ticks, and counting both would make an otherwise
    byte-identical recovery visibly different from the fault-free run.
    ``supervision`` (never serialized by :meth:`to_dict`, for the same
    reason) carries the recovery history of a supervised run: final
    liveness per shard, restart counts, checkpoint/divergence totals,
    the supervisor event log, and any rescued/degraded lane names.
    """

    num_shards: int = 0
    shard_ticks: List[int] = field(default_factory=list)
    shard_busy_seconds: List[float] = field(default_factory=list)
    coordinator_seconds: float = 0.0
    heartbeats: int = 0
    ledger: UsageLedger = field(default_factory=UsageLedger)
    admission_events: List[Tuple[int, Transition]] = field(default_factory=list)
    supervision: Optional[Dict] = None

    @property
    def critical_path_seconds(self) -> float:
        """The run's parallel critical path: the busiest shard's CPU time
        plus coordination (partition + merge) overhead.  On a machine
        with >= ``num_shards`` free cores this is the wall-clock floor;
        the throughput benchmark gates on it because it is
        machine-independent where wall time on a shared CI box is not."""
        return max(self.shard_busy_seconds, default=0.0) + self.coordinator_seconds

    def to_dict(self, include_detections: bool = False) -> Dict[str, object]:
        out = super().to_dict(include_detections=include_detections)
        out["num_shards"] = self.num_shards
        out["shard_ticks"] = list(self.shard_ticks)
        out["heartbeats"] = self.heartbeats
        out["ledger"] = {
            "frames_processed": self.ledger.frames_processed,
            "requests": self.ledger.requests,
            "total_cost": self.ledger.total_cost,
            "frames_per_event": dict(sorted(self.ledger.frames_per_event.items())),
        }
        out["admission_events"] = [
            {"shard": shard, "kind": t.kind, "lane": t.lane, "tick": t.tick}
            for shard, t in self.admission_events
        ]
        return out


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class _HeartbeatSender:
    """Per-tick pipe heartbeat, decimated to every ``every`` ticks.

    When a :class:`~repro.fleet.shard_faults.ShardFaultInjector` is
    armed, the injector's tick hook runs *before* the heartbeat send —
    a worker scheduled to die at tick T never reports tick T alive —
    and the ``slow`` fault suppresses sends.  With no injector the
    behavior is byte-identical to the unsupervised PR 9 sender.
    """

    def __init__(self, conn, shard_index: int, every: int, injector=None):
        self.conn = conn
        self.shard_index = shard_index
        self.every = max(1, int(every))
        self.ticks = 0
        self.injector = injector

    def __call__(self, tick: int) -> None:
        self.ticks += 1
        if self.injector is not None:
            self.injector.on_tick(self.ticks)
            if self.injector.suppress_heartbeat(self.ticks):
                return
        if tick % self.every == 0:
            self.conn.send(("tick", self.shard_index, tick))


class _CheckpointSender:
    """Ship a self-checksummed lane-state checkpoint every N worker ticks.

    Counts ticks itself so checkpoint ids stay monotone across admission
    waves (each wave restarts the marshaller's tick at zero); the id is
    therefore a pure function of worker progress — exactly what replay
    verification compares digests on.
    """

    def __init__(self, conn, shard_index: int, attempt: int, every: int):
        self.conn = conn
        self.shard_index = shard_index
        self.attempt = attempt
        self.every = max(1, int(every))
        self.count = 0

    def __call__(self, tick: int, states, report, service) -> None:
        self.count += 1
        if self.count % self.every != 0:
            return
        checkpoint = ShardCheckpoint.capture(
            self.shard_index, self.attempt, self.count, states, service
        )
        self.conn.send(("ckpt", self.shard_index, checkpoint))

def _fold_wave(total: FleetReport, wave: FleetReport) -> None:
    """Accumulate one admission wave's report into the shard total.

    Waves run *sequentially* inside a worker, so ticks add (unlike the
    coordinator's cross-shard merge, where concurrent shards take the
    max).
    """
    total.per_stream.update(wave.per_stream)
    total.ticks += wave.ticks
    total.max_batch_size = max(total.max_batch_size, wave.max_batch_size)
    total.relays_flushed += wave.relays_flushed
    total.relays_postponed += wave.relays_postponed
    total.shared_cost += wave.shared_cost
    total.shared_frames += wave.shared_frames
    total.shed_transitions += wave.shed_transitions
    total.readmit_transitions += wave.readmit_transitions

def _execute_shard(
    shard_index: int, payload: Dict, on_tick=None, probe=None
) -> ShardResult:
    """Run one shard's lanes to completion against the current obs
    singletons — the body shared by worker processes and the
    coordinator's escalation path (which swaps fresh singletons in
    first, so a rescued shard merges through exactly the same door a
    worker result does)."""
    fleet: FleetMarshaller = payload["fleet"]
    lanes: List[FleetLane] = payload["lanes"]
    run_kwargs: Dict = payload["run_kwargs"]
    factory = payload["service_factory"]
    admission: Optional[AdmissionConfig] = payload["admission"]
    signals = payload["admission_signals"]
    lane_modes_override = payload.get("lane_modes")

    busy_start = time.process_time()
    service = factory(shard_index, [lane.stream for lane in lanes])
    admission_events: List[Transition] = []
    if lane_modes_override is not None:
        # Degraded escalation: every lane pinned to the relay-all tier
        # through the same lane-mode machinery admission shedding uses.
        report = fleet.run(
            lanes,
            service,
            on_tick=on_tick,
            probe=probe,
            lane_modes=dict(lane_modes_override),
            **run_kwargs,
        )
    elif admission is None:
        report = fleet.run(
            lanes, service, on_tick=on_tick, probe=probe, **run_kwargs
        )
    else:
        by_name = {lane.name: lane for lane in lanes}
        controller = AdmissionController(admission)
        serving, _ = controller.submit([lane.name for lane in lanes])
        lane_modes: Dict[str, str] = {}
        driver = AdmissionDriver(
            controller, lane_modes, signals=signals, on_tick=on_tick
        )
        report = FleetReport(scheduler=fleet.scheduler.name)
        while serving:
            wave = fleet.run(
                [by_name[name] for name in serving],
                service,
                on_tick=driver,
                probe=probe,
                lane_modes=lane_modes,
                **run_kwargs,
            )
            _fold_wave(report, wave)
            controller.retire(serving)
            for name in serving:
                lane_modes.pop(name, None)
            serving = controller.next_wave()
        admission_events = list(controller.events)
    busy_seconds = time.process_time() - busy_start

    registry = get_registry()
    recorder = get_flight_recorder()
    return ShardResult(
        index=shard_index,
        lane_names=[lane.name for lane in lanes],
        report=report,
        ledger=service.ledger,
        registry_state=registry.dump_state() if payload["telemetry"] else {},
        flight_lanes=recorder.snapshot() if payload["telemetry"] else {},
        flight_dumps=recorder.dumps if payload["telemetry"] else [],
        busy_seconds=busy_seconds,
        admission_events=admission_events,
    )

def _run_shard(conn, shard_index: int, payload: Dict,
               injector=None) -> ShardResult:
    # Fresh observability singletons, always: under "fork" the child
    # inherits the parent's registry and would double-count every metric
    # it merges home; under "spawn" these are fresh anyway but the
    # configure() switch still needs setting.
    set_registry(MetricsRegistry())
    set_flight_recorder(FlightRecorder())
    set_timeseries(TimeSeriesStore())
    configure(enabled=payload["telemetry"])

    heartbeat = _HeartbeatSender(
        conn, shard_index, payload["heartbeat_every"], injector=injector
    )
    probe = None
    if payload.get("checkpoint_every"):
        probe = _CheckpointSender(
            conn, shard_index, payload.get("attempt", 0),
            payload["checkpoint_every"],
        )
    return _execute_shard(shard_index, payload, on_tick=heartbeat, probe=probe)

def _shard_worker(conn, shard_index: int, payload: Dict) -> None:
    """Process entry point (module-level, so ``spawn`` can pickle it).

    Protocol, in order: an armed startup fault fires first (a hung
    import never says hello), then ``("hello", shard, attempt)``, then
    per-tick ``("tick", shard, tick)`` heartbeats interleaved with
    ``("ckpt", shard, checkpoint)`` snapshots, then exactly one of
    ``("done", shard, ShardResult)`` or ``("error", shard, traceback)``.
    A SIGKILLed worker sends nothing further — the coordinator sees a
    bare pipe EOF.
    """
    attempt = payload.get("attempt", 0)
    injector = None
    plan: Optional[ShardFaultPlan] = payload.get("fault_plan")
    try:
        if plan is not None:
            injector = ShardFaultInjector(plan, shard_index, attempt, conn)
            injector.at_startup()
        conn.send(("hello", shard_index, attempt))
        result = _run_shard(conn, shard_index, payload, injector=injector)
        conn.send(("done", shard_index, result))
    except Exception:
        conn.send(("error", shard_index, traceback.format_exc()))
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
class ShardedFleetMarshaller:
    """Partition a lane set across worker processes and merge exactly.

    Parameters
    ----------
    fleet:
        The fleet marshaller each worker replicates (pickled to every
        shard; workers never share it).  Scheduler and budget apply
        *per shard*.
    num_shards:
        Worker process count.  Empty shards (more shards than lanes)
        are skipped.
    partition:
        A :data:`PARTITIONS` name or a callable
        ``partition(lanes, num_shards) -> List[List[FleetLane]]``.
        The partition is the reproducibility contract: a fixed partition
        makes the whole run deterministic.
    service_factory:
        Picklable ``factory(shard_index, streams) -> service`` building
        each shard's private CI stack; defaults to
        :class:`PlainServiceFactory`.
    admission:
        Optional :class:`~repro.fleet.admission.AdmissionConfig`; when
        given, every shard runs intake + load shedding locally.
    admission_signals:
        Optional picklable ``signals(tick) -> (latency_p99,
        backlog_frames)`` override for the shard admission drivers
        (tests inject synthetic overload this way; default reads each
        shard's live registry).
    start_method:
        ``multiprocessing`` start method (``"fork"``/``"spawn"``/
        ``None`` = platform default).  Everything a worker needs is
        pickled, so ``spawn`` works everywhere; the CI runs a spawn
        smoke test to keep it that way.
    heartbeat_every:
        Stream a liveness heartbeat every N worker ticks.
    supervisor:
        Optional :class:`~repro.fleet.supervisor.SupervisorConfig`.
        When given the run self-heals: bounded waits, the liveness FSM,
        checkpointed deterministic restarts under a budget, and
        rescue/degrade escalation when the budget runs out.  Without it
        any shard failure is fatal (but cleanly so — every worker is
        reaped and every pipe closed on the way out).
    fault_plan:
        Optional seeded
        :class:`~repro.fleet.shard_faults.ShardFaultPlan` shipped to
        every worker — process-level chaos (crash / SIGKILL / stall /
        slow / startup hang) keyed on ``(shard, attempt)``.
    startup_timeout:
        Unsupervised runs only: seconds a spawned worker may take to
        send its hello before the run fails fast naming the shard
        (``None`` waits forever; supervised runs use the config's
        ``startup_deadline`` instead).
    """

    def __init__(
        self,
        fleet: FleetMarshaller,
        num_shards: int,
        partition="contiguous",
        service_factory=None,
        admission: Optional[AdmissionConfig] = None,
        admission_signals=None,
        start_method: Optional[str] = None,
        heartbeat_every: int = 1,
        supervisor: Optional[SupervisorConfig] = None,
        fault_plan: Optional[ShardFaultPlan] = None,
        startup_timeout: Optional[float] = 120.0,
    ):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if heartbeat_every < 1:
            raise ValueError("heartbeat_every must be >= 1")
        if startup_timeout is not None and startup_timeout <= 0:
            raise ValueError("startup_timeout must be positive or None")
        self.fleet = fleet
        self.num_shards = int(num_shards)
        self.partition = make_partition(partition)
        self.service_factory = service_factory or PlainServiceFactory()
        self.admission = admission
        self.admission_signals = admission_signals
        self.start_method = start_method
        self.heartbeat_every = int(heartbeat_every)
        self.supervisor = supervisor
        self.fault_plan = fault_plan
        self.startup_timeout = startup_timeout

    # ------------------------------------------------------------------
    def run(
        self,
        lanes: Sequence[FleetLane],
        start_frame: Optional[int] = None,
        max_horizons: Optional[int] = None,
        failure_policy: str = "raise",
        max_deferrals: int = 8,
        guard=None,
        on_heartbeat: Optional[Callable[[int, int], None]] = None,
        on_liveness: Optional[Callable[[int, str, str], None]] = None,
    ) -> ShardedFleetReport:
        """Marshal ``lanes`` across the shard fleet and merge the results.

        ``start_frame`` / ``max_horizons`` / ``failure_policy`` /
        ``max_deferrals`` / ``guard`` are forwarded verbatim to every
        shard's :meth:`FleetMarshaller.run`.  ``on_heartbeat``, when
        given, is called as ``on_heartbeat(shard_index, tick)`` for every
        heartbeat message a worker streams back — the live-progress hook
        the ``watch --shards`` dashboard draws from.  ``on_liveness``,
        when given, is called as ``on_liveness(shard_index, state,
        detail)`` on every supervised liveness transition (spawn, hello,
        suspect, recovery, death, restart, failover) — the dashboard's
        liveness column.

        Returns a :class:`ShardedFleetReport` whose ``per_stream``
        mapping follows the *original* lane order regardless of the
        partition, so ``to_dict()`` comparisons against a
        single-process run need no canonicalisation.
        """
        lanes = list(lanes)
        if not lanes:
            raise ValueError("a sharded fleet run needs at least one lane")
        coord_start = time.perf_counter()
        shards = [s for s in self.partition(lanes, self.num_shards) if s]
        partitioned = [lane.name for shard in shards for lane in shard]
        if sorted(partitioned) != sorted(lane.name for lane in lanes):
            raise ValueError(
                "partition must produce a permutation of the lane set"
            )
        run_kwargs = {
            "start_frame": start_frame,
            "max_horizons": max_horizons,
            "failure_policy": failure_policy,
            "max_deferrals": max_deferrals,
            "guard": guard,
        }
        telemetry = is_enabled()
        coordinator_seconds = time.perf_counter() - coord_start

        context = mp.get_context(self.start_method)
        if self.supervisor is not None:
            results, heartbeats, supervision = self._run_supervised(
                context, shards, run_kwargs, telemetry,
                on_heartbeat, on_liveness,
            )
        else:
            results, heartbeats = self._run_unsupervised(
                context, shards, run_kwargs, telemetry, on_heartbeat
            )
            supervision = None

        merge_start = time.perf_counter()
        report = self._merge(lanes, shards, results, telemetry)
        report.heartbeats = heartbeats
        report.supervision = supervision
        report.coordinator_seconds = (
            coordinator_seconds + time.perf_counter() - merge_start
        )
        inc("fleet.sharded.runs")
        log_info(
            "fleet.sharded_complete",
            shards=len(shards),
            streams=len(lanes),
            ticks=report.ticks,
            heartbeats=heartbeats,
        )
        return report

    # ------------------------------------------------------------------
    # Spawning and cleanup
    # ------------------------------------------------------------------
    def _payload(self, shard_lanes, run_kwargs, telemetry: bool,
                 attempt: int, lane_modes=None) -> Dict:
        return {
            "fleet": self.fleet,
            "lanes": shard_lanes,
            "run_kwargs": run_kwargs,
            "service_factory": self.service_factory,
            "admission": self.admission,
            "admission_signals": self.admission_signals,
            "telemetry": telemetry,
            "heartbeat_every": self.heartbeat_every,
            "attempt": attempt,
            "fault_plan": self.fault_plan,
            "checkpoint_every": (
                self.supervisor.checkpoint_every
                if self.supervisor is not None else None
            ),
            "lane_modes": lane_modes,
        }

    def _spawn(self, context, index: int, payload: Dict):
        parent_conn, child_conn = context.Pipe()
        process = context.Process(
            target=_shard_worker,
            args=(child_conn, index, payload),
            daemon=True,
        )
        process.start()
        child_conn.close()  # the worker owns its end now
        return process, parent_conn

    @staticmethod
    def _reap(processes, conns) -> None:
        """Terminate, join, and close everything — every exit path ends
        here, so a failed or interrupted run never leaks children or
        pipe fds (and a wedged worker cannot outlive the coordinator)."""
        for process in processes:
            if process.is_alive():
                process.terminate()
        for process in processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Unsupervised coordinator loop (fail-fast, leak-free)
    # ------------------------------------------------------------------
    def _run_unsupervised(
        self, context, shards, run_kwargs, telemetry: bool, on_heartbeat
    ) -> Tuple[Dict[int, ShardResult], int]:
        processes: List = []
        pending: Dict[object, int] = {}
        results: Dict[int, ShardResult] = {}
        errors: Dict[int, str] = {}
        heartbeats = 0
        hello_pending = set(range(len(shards)))
        try:
            for index, shard in enumerate(shards):
                payload = self._payload(shard, run_kwargs, telemetry, 0)
                process, conn = self._spawn(context, index, payload)
                processes.append(process)
                pending[conn] = index
            deadline = (
                time.monotonic() + self.startup_timeout
                if self.startup_timeout is not None else None
            )
            while pending and not errors:
                timeout = None
                if hello_pending and deadline is not None:
                    timeout = max(0.0, deadline - time.monotonic())
                ready = mp_connection.wait(list(pending), timeout=timeout)
                if (
                    hello_pending
                    and deadline is not None
                    and not ready
                    and time.monotonic() >= deadline
                ):
                    stuck = ", ".join(str(i) for i in sorted(hello_pending))
                    raise RuntimeError(
                        f"shard(s) {stuck} failed to start within "
                        f"{self.startup_timeout:.1f}s (worker hung during "
                        f"spawn/import); raise startup_timeout, pass "
                        f"startup_timeout=None to wait forever, or run "
                        f"supervised with a SupervisorConfig"
                    )
                for conn in ready:
                    try:
                        message = conn.recv()
                    except (EOFError, OSError):
                        index = pending.pop(conn)
                        conn.close()
                        hello_pending.discard(index)
                        if index not in results and index not in errors:
                            errors[index] = (
                                "shard worker exited without a result"
                            )
                        continue
                    kind = message[0]
                    if kind == "hello":
                        hello_pending.discard(message[1])
                    elif kind == "tick":
                        _, index, tick = message
                        heartbeats += 1
                        if on_heartbeat is not None:
                            on_heartbeat(index, tick)
                    elif kind == "ckpt":
                        pass  # checkpoints are a supervised-run concern
                    elif kind == "done":
                        results[message[1]] = message[2]
                    elif kind == "error":
                        errors[message[1]] = message[2]
            if errors:
                detail = "\n\n".join(
                    f"--- shard {index} ---\n{tb}"
                    for index, tb in sorted(errors.items())
                )
                raise RuntimeError(
                    f"{len(errors)} shard(s) failed:\n{detail}"
                )
            for process in processes:
                process.join()
        finally:
            self._reap(processes, list(pending))
        return results, heartbeats

    # ------------------------------------------------------------------
    # Supervised coordinator loop (self-healing)
    # ------------------------------------------------------------------
    def _run_supervised(
        self, context, shards, run_kwargs, telemetry: bool,
        on_heartbeat, on_liveness,
    ) -> Tuple[Dict[int, ShardResult], int, Dict]:
        config = self.supervisor
        supervisor = ShardSupervisor(config, len(shards))
        processes: Dict[int, object] = {}
        conns: Dict[object, int] = {}
        results: Dict[int, ShardResult] = {}
        # Heartbeats of the attempt currently running / of the attempt
        # that completed — only the latter reach the merged report, so a
        # recovered run counts exactly like a fault-free one.
        hb_current: Dict[int, int] = {}
        hb_done: Dict[int, int] = {}
        total_heartbeats = 0

        def notify(shard: int, state: str, detail: str = "") -> None:
            if on_liveness is not None:
                on_liveness(shard, state, detail)

        def spawn(index: int, attempt: int) -> None:
            payload = self._payload(
                shards[index], run_kwargs, telemetry, attempt
            )
            process, conn = self._spawn(context, index, payload)
            processes[index] = process
            conns[conn] = index
            hb_current[index] = 0
            supervisor.register_spawn(index, attempt, time.monotonic())
            notify(index, "STARTING", f"attempt {attempt}")

        def kill_worker(index: int) -> None:
            process = processes.get(index)
            if process is not None and process.is_alive():
                process.kill()
                process.join(timeout=5.0)
            for conn, owner in list(conns.items()):
                if owner == index:
                    del conns[conn]
                    try:
                        conn.close()
                    except OSError:
                        pass

        def handle_death(index: int, reason: str) -> None:
            supervisor.on_death(index, time.monotonic(), reason)
            if index in results:
                return  # the result already landed; nothing to recover
            if supervisor.should_restart(index):
                spawn(index, supervisor.next_attempt(index))
            else:
                supervisor.mark_failed(index, reason)
                notify(index, "FAILED", reason)

        try:
            for index in range(len(shards)):
                spawn(index, 0)
            while conns:
                ready = mp_connection.wait(
                    list(conns), timeout=config.poll_timeout
                )
                now = time.monotonic()
                for conn in ready:
                    index = conns.get(conn)
                    if index is None:
                        continue
                    try:
                        message = conn.recv()
                    except (EOFError, OSError):
                        del conns[conn]
                        try:
                            conn.close()
                        except OSError:
                            pass
                        if index not in results:
                            kill_worker(index)
                            handle_death(
                                index, "pipe closed (worker died)"
                            )
                        continue
                    kind = message[0]
                    if kind == "hello":
                        supervisor.on_hello(index, message[2], now)
                        notify(index, "LIVE")
                    elif kind == "tick":
                        tick = message[2]
                        hb_current[index] += 1
                        total_heartbeats += 1
                        recovered = (
                            supervisor.liveness[index] == "SUSPECT"
                        )
                        supervisor.on_heartbeat(index, tick, now)
                        if recovered:
                            notify(index, "LIVE", "recovered")
                        if on_heartbeat is not None:
                            on_heartbeat(index, tick)
                    elif kind == "ckpt":
                        verdict = supervisor.on_checkpoint(
                            index, message[2]
                        )
                        if verdict == "divergence":
                            kill_worker(index)
                            supervisor.mark_failed(
                                index, "replay divergence"
                            )
                            notify(index, "FAILED", "replay divergence")
                    elif kind == "done":
                        results[index] = message[2]
                        hb_done[index] = hb_current[index]
                        supervisor.on_done(index)
                        notify(index, "DONE")
                    elif kind == "error":
                        kill_worker(index)
                        handle_death(
                            index, f"worker error:\n{message[2]}"
                        )
                for index, what in supervisor.poll(time.monotonic()):
                    if what == "suspect":
                        notify(index, "SUSPECT", "heartbeat overdue")
                    else:  # "dead" or "startup-timeout"
                        kill_worker(index)
                        handle_death(index, what.replace("-", " "))
        finally:
            self._reap(list(processes.values()), list(conns))

        # Escalation: shards whose restart budget ran out re-run their
        # lanes in the coordinator — exactly ("rescue") or through the
        # relay-all tier ("degrade") — so no frame is ever dropped.
        rescued: List[str] = []
        degraded: List[str] = []
        for index in supervisor.failed_shards:
            result = self._escalate(
                index, shards[index], run_kwargs, telemetry
            )
            results[index] = result
            hb_done.setdefault(index, 0)
            if config.escalation == "rescue":
                rescued.extend(result.lane_names)
            else:
                degraded.extend(result.lane_names)
            notify(index, "DONE", f"escalated ({config.escalation})")
        supervision = supervisor.summary()
        supervision["rescued_lanes"] = rescued
        supervision["degraded_lanes"] = degraded
        supervision["total_heartbeats"] = total_heartbeats
        return results, sum(hb_done.values()), supervision

    def _escalate(self, index: int, shard_lanes, run_kwargs,
                  telemetry: bool) -> ShardResult:
        """Run an orphaned shard's lanes in the coordinator process.

        Fresh obs singletons are swapped in for the duration, so the
        synthetic :class:`ShardResult` merges through exactly the same
        path a worker's would — under ``"rescue"`` the output is
        byte-identical to what the dead shard would have produced (same
        seeded factory, same shard index), and the dead attempts' spend
        never reaches the ledger, keeping billing exactly-once.
        """
        config = self.supervisor
        lane_modes = None
        if config.escalation == "degrade":
            lane_modes = {lane.name: "relay-all" for lane in shard_lanes}
        payload = self._payload(
            shard_lanes, run_kwargs, telemetry, 0, lane_modes=lane_modes
        )
        payload["fault_plan"] = None  # chaos never follows lanes home
        saved_registry = get_registry()
        saved_recorder = get_flight_recorder()
        saved_series = get_timeseries()
        set_registry(MetricsRegistry())
        set_flight_recorder(FlightRecorder())
        set_timeseries(TimeSeriesStore())
        try:
            result = _execute_shard(index, payload)
        finally:
            set_registry(saved_registry)
            set_flight_recorder(saved_recorder)
            set_timeseries(saved_series)
        inc(
            f"fleet.supervisor.{config.escalation}d_lanes",
            len(list(shard_lanes)),
        )
        log_info(
            "fleet.supervisor.escalated",
            shard=index,
            mode=config.escalation,
            lanes=len(list(shard_lanes)),
        )
        return result

    # ------------------------------------------------------------------
    def _merge(
        self,
        lanes: Sequence[FleetLane],
        shards: Sequence[Sequence[FleetLane]],
        results: Dict[int, ShardResult],
        telemetry: bool,
    ) -> ShardedFleetReport:
        report = ShardedFleetReport(
            scheduler=self.fleet.scheduler.name,
            num_shards=len(shards),
        )
        by_lane = {}
        for index in sorted(results):
            res = results[index]
            report.shard_ticks.append(res.report.ticks)
            report.shard_busy_seconds.append(res.busy_seconds)
            report.ticks = max(report.ticks, res.report.ticks)
            report.max_batch_size = max(
                report.max_batch_size, res.report.max_batch_size
            )
            report.relays_flushed += res.report.relays_flushed
            report.relays_postponed += res.report.relays_postponed
            report.shared_cost += res.report.shared_cost
            report.shared_frames += res.report.shared_frames
            report.shed_transitions += res.report.shed_transitions
            report.readmit_transitions += res.report.readmit_transitions
            report.ledger.merge(res.ledger)
            report.admission_events.extend(
                (index, transition) for transition in res.admission_events
            )
            by_lane.update(res.report.per_stream)
            if telemetry:
                registry = get_registry()
                registry.merge_from(res.registry_state)
                recorder = get_flight_recorder()
                shard_fleet_lane = f"{FLEET_LANE}/shard{index}"
                renamed = {
                    (shard_fleet_lane if lane == FLEET_LANE else lane): entries
                    for lane, entries in res.flight_lanes.items()
                }
                dumps = []
                for dump in res.flight_dumps:
                    dump = dict(dump)
                    dump["shard"] = index
                    dump["lanes"] = {
                        (shard_fleet_lane if lane == FLEET_LANE else lane): rows
                        for lane, rows in dump.get("lanes", {}).items()
                    }
                    dumps.append(dump)
                recorder.merge_from(renamed, dumps=dumps)
        # Original lane order, whatever the partition did.
        for lane in lanes:
            report.per_stream[lane.name] = by_lane[lane.name]
        return report
