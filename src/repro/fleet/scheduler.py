"""Pluggable relay schedulers for the fleet marshaller.

Every tick the fleet collects the relay segments all streams decided to
send, then a scheduler orders them before they are flushed to the shared
CI under the global per-tick frame budget.  Whatever the budget cuts off
rolls into the next tick's pool, so the scheduler's ordering *is* the
fleet's quality-of-service policy:

* ``round-robin`` — fair interleaving of per-stream FIFO queues (the
  rotation origin advances with the tick).  Within one stream, relay
  order is exactly the sequential marshaller's order, which is what makes
  a zero-fault fleet run byte-identical to N sequential runs.
* ``deadline`` — earliest-deadline-first: segments whose predicted
  occurrence starts at the earliest absolute frame flush first, so
  nearly-due events are never starved by a busy neighbour stream.
* ``cost-aware`` — budget balancing: streams with the least attributed
  spend go first, cheapest segments first within a stream, which
  maximises the number of distinct streams served per tick.

Schedulers are pure orderings: ``order`` must return a permutation of its
input (the fleet validates this), never drop or invent work.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Type

from ..video.events import EventType
from ..video.stream import StreamSegment

__all__ = [
    "RelayRequest",
    "SchedulerContext",
    "FleetScheduler",
    "RoundRobinScheduler",
    "DeadlineFirstScheduler",
    "CostAwareScheduler",
    "SCHEDULERS",
    "make_scheduler",
]


@dataclass
class RelayRequest:
    """One segment one stream wants relayed to the shared CI.

    ``tick`` is the tick the request was first enqueued (its age);
    ``deferrals`` counts CI failures absorbed so far under the ``defer``
    failure policy.
    """

    lane: str
    segment: StreamSegment
    event_type: EventType
    tick: int
    deferrals: int = 0

    @property
    def frames(self) -> int:
        return self.segment.num_frames


@dataclass(frozen=True)
class SchedulerContext:
    """Fleet state a scheduler may consult when ordering a tick's pool."""

    tick: int
    budget_frames: Optional[int]
    lane_cost: Dict[str, float] = field(default_factory=dict)
    lane_frames: Dict[str, int] = field(default_factory=dict)


class FleetScheduler:
    """Interface: order a tick's relay pool (must return a permutation)."""

    name = "base"

    def order(
        self, requests: List[RelayRequest], context: SchedulerContext
    ) -> List[RelayRequest]:
        raise NotImplementedError


class RoundRobinScheduler(FleetScheduler):
    """Fair interleaving of per-stream FIFO queues.

    Preserves each stream's internal relay order (required for the
    byte-identical-to-sequential guarantee) and rotates which stream
    leads each tick so no stream systematically wins budget ties.
    """

    name = "round-robin"

    def order(
        self, requests: List[RelayRequest], context: SchedulerContext
    ) -> List[RelayRequest]:
        queues: "OrderedDict[str, deque]" = OrderedDict()
        for request in requests:
            queues.setdefault(request.lane, deque()).append(request)
        lanes = list(queues)
        if lanes:
            start = context.tick % len(lanes)
            lanes = lanes[start:] + lanes[:start]
        ordered: List[RelayRequest] = []
        pending = [queues[lane] for lane in lanes]
        while pending:
            for queue in pending:
                if queue:
                    ordered.append(queue.popleft())
            pending = [queue for queue in pending if queue]
        return ordered


class DeadlineFirstScheduler(FleetScheduler):
    """Earliest-deadline-first by the segment's absolute start frame.

    A relay segment's deadline is the moment its predicted occurrence
    begins; flushing in deadline order keeps the CI's answers freshest
    for the events about to happen.  Older (postponed / deferred)
    requests win ties.
    """

    name = "deadline"

    def order(
        self, requests: List[RelayRequest], context: SchedulerContext
    ) -> List[RelayRequest]:
        return sorted(
            requests, key=lambda r: (r.segment.start, r.tick, r.segment.end)
        )


class CostAwareScheduler(FleetScheduler):
    """Budget balancing: least-spent streams first, cheapest relays first.

    Ordering by attributed per-stream spend keeps one chatty stream from
    monopolising the shared account, and preferring small segments within
    a stream maximises how many relays fit under the per-tick budget.
    """

    name = "cost-aware"

    def order(
        self, requests: List[RelayRequest], context: SchedulerContext
    ) -> List[RelayRequest]:
        return sorted(
            requests,
            key=lambda r: (
                context.lane_cost.get(r.lane, 0.0),
                r.frames,
                r.tick,
                r.segment.start,
            ),
        )


#: Registry of the built-in scheduling policies, keyed by CLI name.
SCHEDULERS: Dict[str, Type[FleetScheduler]] = {
    RoundRobinScheduler.name: RoundRobinScheduler,
    DeadlineFirstScheduler.name: DeadlineFirstScheduler,
    CostAwareScheduler.name: CostAwareScheduler,
}


def make_scheduler(name: str) -> FleetScheduler:
    """Instantiate a scheduler by registry name."""
    try:
        return SCHEDULERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; choose from {sorted(SCHEDULERS)}"
        ) from None
