"""Multi-stream batched marshalling (the fleet layer).

Serve N streams with one decision engine and one CI account:
:class:`FleetMarshaller` stacks all lanes' collection windows into one
batch-size-invariant forward pass per tick, pools their relay segments,
and flushes them through a pluggable :class:`FleetScheduler` under a
global per-tick frame budget — byte-identical per-stream reports to N
sequential runs under round-robin scheduling on fault-free
infrastructure.
"""

from .marshaller import FleetLane, FleetMarshaller, FleetReport
from .scheduler import (
    SCHEDULERS,
    CostAwareScheduler,
    DeadlineFirstScheduler,
    FleetScheduler,
    RelayRequest,
    RoundRobinScheduler,
    SchedulerContext,
    make_scheduler,
)
from .service import FleetCIService

__all__ = [
    "FleetLane",
    "FleetMarshaller",
    "FleetReport",
    "FleetCIService",
    "FleetScheduler",
    "RoundRobinScheduler",
    "DeadlineFirstScheduler",
    "CostAwareScheduler",
    "RelayRequest",
    "SchedulerContext",
    "SCHEDULERS",
    "make_scheduler",
]
