"""Multi-stream batched marshalling (the fleet layer).

Serve N streams with one decision engine and one CI account:
:class:`FleetMarshaller` stacks all lanes' collection windows into one
batch-size-invariant forward pass per tick, pools their relay segments,
and flushes them through a pluggable :class:`FleetScheduler` under a
global per-tick frame budget — byte-identical per-stream reports to N
sequential runs under round-robin scheduling on fault-free
infrastructure.

Past a few hundred lanes one process saturates:
:class:`ShardedFleetMarshaller` partitions the lane set across worker
processes (each a complete marshalling stack) and merges reports,
ledgers, and observability exactly, while :class:`AdmissionController`
bounds intake and sheds pressured lanes to a degraded relay-all tier —
never dropping frames.

The fleet also survives its own processes: a
:class:`SupervisorConfig` turns the coordinator into a self-healing
control plane (liveness FSM, checkpointed deterministic restarts,
rescue/degrade escalation), and a seeded :class:`ShardFaultPlan`
injects the process-level chaos (crash / SIGKILL / stall / slow /
startup hang) that proves it.
"""

from .admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionDriver,
    AdmissionQueueFull,
    Transition,
)
from .marshaller import LANE_MODES, FleetLane, FleetMarshaller, FleetReport
from .scheduler import (
    SCHEDULERS,
    CostAwareScheduler,
    DeadlineFirstScheduler,
    FleetScheduler,
    RelayRequest,
    RoundRobinScheduler,
    SchedulerContext,
    make_scheduler,
)
from .service import FleetCIService
from .shard_faults import (
    SHARD_FAULT_KINDS,
    ShardCrash,
    ShardFault,
    ShardFaultInjector,
    ShardFaultPlan,
)
from .supervisor import (
    LIVENESS_STATES,
    CheckpointCorruption,
    ShardCheckpoint,
    ShardSupervisor,
    SupervisorConfig,
    SupervisorEvent,
)
from .sharded import (
    PARTITIONS,
    ChaosServiceFactory,
    PlainServiceFactory,
    ShardResult,
    ShardedFleetMarshaller,
    ShardedFleetReport,
    contiguous_partition,
    make_partition,
    striped_partition,
)

__all__ = [
    "FleetLane",
    "FleetMarshaller",
    "FleetReport",
    "FleetCIService",
    "FleetScheduler",
    "RoundRobinScheduler",
    "DeadlineFirstScheduler",
    "CostAwareScheduler",
    "RelayRequest",
    "SchedulerContext",
    "SCHEDULERS",
    "make_scheduler",
    "LANE_MODES",
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionDriver",
    "AdmissionQueueFull",
    "Transition",
    "ShardedFleetMarshaller",
    "ShardedFleetReport",
    "ShardResult",
    "PlainServiceFactory",
    "ChaosServiceFactory",
    "PARTITIONS",
    "contiguous_partition",
    "striped_partition",
    "make_partition",
    "SupervisorConfig",
    "ShardSupervisor",
    "SupervisorEvent",
    "ShardCheckpoint",
    "CheckpointCorruption",
    "LIVENESS_STATES",
    "ShardFaultPlan",
    "ShardFault",
    "ShardFaultInjector",
    "ShardCrash",
    "SHARD_FAULT_KINDS",
]
