"""Shard supervision: liveness FSM, checkpoints, and restart budgets.

PR 9's coordinator treats any worker death as fatal; this module gives
the sharded fleet a self-healing control plane.  The pieces:

* :class:`SupervisorConfig` — deadlines and budgets (all wall-clock
  figures are *coordinator-side*; workers stay timer-free).
* :class:`ShardCheckpoint` — a self-checksummed, JSON-round-trippable
  snapshot of one shard's lane-state (per-lane cursor + report
  progress + shadow-ledger cost) and service ledger at a tick.
* :class:`ShardSupervisor` — the coordinator-side bookkeeping machine:
  a per-shard liveness FSM (``STARTING → LIVE ⇄ SUSPECT → DEAD``,
  terminal ``DONE`` / ``FAILED``), heartbeat and startup deadlines,
  a reference checkpoint store with replay-divergence detection, and
  the bounded restart budget.

The supervisor holds no processes and never blocks: the marshalling
loop in :mod:`repro.fleet.sharded` feeds it pipe events plus a
monotonic ``now`` and acts on the transitions it returns (kill, respawn,
escalate).  Keeping the FSM pure makes every deadline path unit-testable
without spawning a process or sleeping.

**Recovery model — deterministic replay, exactly-once billing.**  A
restarted worker does not thaw pickled marshaller internals; it rebuilds
the *identical seeded service stack* (the factory is a pure function of
``(shard_index, streams)``) and re-runs its shard from the start.  The
PR 9 determinism contract then makes the replay bit-for-bit: the
restarted attempt's checkpoints must match the dead attempt's digests at
the same ticks (a mismatch is flagged as replay divergence and the shard
escalates instead of looping).  Billing is exactly-once by construction:
a shard's :class:`~repro.cloud.service.UsageLedger` only travels in its
final ``ShardResult``, so a dead attempt's partial spend never reaches
the merge — the merged ledger is conserved, not merely approximated.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List, Optional, Tuple

from ..obs import (
    get_flight_recorder,
    get_registry,
    get_timeseries,
    inc,
    is_enabled,
    log_warning,
    set_gauge,
)
from ..obs.flight import FLEET_LANE

__all__ = [
    "CheckpointCorruption",
    "LIVENESS_STATES",
    "ShardCheckpoint",
    "ShardSupervisor",
    "SupervisorConfig",
    "SupervisorEvent",
]


class CheckpointCorruption(ValueError):
    """A checkpoint failed its digest check or carried unknown fields."""


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------
@dataclass
class ShardCheckpoint:
    """One shard's lane-state snapshot at a tick, self-checksummed.

    ``lanes`` maps lane name to progress counters (cursor frame,
    horizons evaluated, frames covered/relayed, shadow-ledger cost);
    ``ledger`` carries the shard service's running totals.  ``digest``
    is a sha256 over the canonical JSON of everything *except*
    ``attempt`` — so a restarted attempt replaying the same work
    produces byte-equal digests, which is exactly the supervisor's
    replay-verification test.
    """

    shard: int
    tick: int
    attempt: int = 0
    lanes: Dict[str, Dict[str, float]] = field(default_factory=dict)
    ledger: Dict[str, float] = field(default_factory=dict)
    digest: str = ""

    def __post_init__(self) -> None:
        if not self.digest:
            self.digest = self.compute_digest()

    # ------------------------------------------------------------------
    def payload(self) -> Dict[str, object]:
        """The digested content (attempt excluded — replays must match)."""
        return {
            "shard": self.shard,
            "tick": self.tick,
            "lanes": self.lanes,
            "ledger": self.ledger,
        }

    def compute_digest(self) -> str:
        canonical = json.dumps(self.payload(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def matches(self, other: "ShardCheckpoint") -> bool:
        """Replay equivalence: same shard/tick content, attempt ignored."""
        return self.digest == other.digest

    # ------------------------------------------------------------------
    @classmethod
    def capture(cls, shard: int, attempt: int, tick: int,
                states, service) -> "ShardCheckpoint":
        """Snapshot live marshaller lane-states plus the service ledger."""
        lanes: Dict[str, Dict[str, float]] = {}
        for state in states:
            report = state.report
            lanes[state.name] = {
                "frame": int(state.frame),
                "done": int(state.done),
                "horizons": int(report.horizons_evaluated),
                "covered": int(report.frames_covered),
                "relayed": int(report.frames_relayed),
                "lost": int(report.frames_lost),
                "cost": float(state.shadow.total_cost),
            }
        ledger = service.ledger
        return cls(
            shard=shard,
            tick=int(tick),
            attempt=int(attempt),
            lanes=lanes,
            ledger={
                "frames_processed": int(ledger.frames_processed),
                "requests": int(ledger.requests),
                "total_cost": float(ledger.total_cost),
            },
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object],
                  verify: bool = True) -> "ShardCheckpoint":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise CheckpointCorruption(
                f"unknown ShardCheckpoint fields: {sorted(unknown)}"
            )
        ckpt = cls(**data)
        if verify and ckpt.digest != ckpt.compute_digest():
            raise CheckpointCorruption(
                f"checkpoint digest mismatch for shard {ckpt.shard} "
                f"tick {ckpt.tick}: stored {ckpt.digest[:12]}..., "
                f"computed {ckpt.compute_digest()[:12]}..."
            )
        return ckpt

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str, verify: bool = True) -> "ShardCheckpoint":
        return cls.from_dict(json.loads(text), verify=verify)


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SupervisorConfig:
    """Deadlines and budgets for one supervised sharded run.

    ``suspect_after`` / ``dead_after`` are seconds since the last
    heartbeat (monotonic, coordinator-side); ``startup_deadline`` bounds
    spawn → hello.  ``max_restarts`` is per shard; ``escalation``
    chooses what happens when a shard exhausts it: ``"rescue"`` re-runs
    the orphaned lanes in the coordinator with the shard's own seeded
    factory (byte-identical output), ``"degrade"`` re-runs them in the
    relay-all tier through the existing lane-mode machinery (frames
    never dropped, model never consulted).  ``checkpoint_every`` is in
    worker ticks; ``poll_timeout`` bounds every coordinator wait so a
    wedged pipe can never block the loop.
    """

    suspect_after: float = 5.0
    dead_after: float = 30.0
    startup_deadline: float = 60.0
    max_restarts: int = 2
    escalation: str = "rescue"
    checkpoint_every: int = 8
    poll_timeout: float = 0.25

    def __post_init__(self) -> None:
        if self.suspect_after <= 0:
            raise ValueError("suspect_after must be positive")
        if self.dead_after <= self.suspect_after:
            raise ValueError("dead_after must exceed suspect_after")
        if self.startup_deadline <= 0:
            raise ValueError("startup_deadline must be positive")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.escalation not in ("rescue", "degrade"):
            raise ValueError(
                f"escalation must be 'rescue' or 'degrade', "
                f"got {self.escalation!r}"
            )
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.poll_timeout <= 0:
            raise ValueError("poll_timeout must be positive")


# ----------------------------------------------------------------------
# Events and per-shard slots
# ----------------------------------------------------------------------
#: The per-shard liveness FSM.  ``STARTING → LIVE`` on hello, ``LIVE ⇄
#: SUSPECT`` on heartbeat deadlines, ``→ DEAD`` on pipe EOF / worker
#: error / the dead deadline, then either a respawn (back to
#: ``STARTING``) or terminal ``FAILED``; ``DONE`` is the happy terminal.
LIVENESS_STATES = ("STARTING", "LIVE", "SUSPECT", "DEAD", "DONE", "FAILED")


@dataclass
class SupervisorEvent:
    """One liveness/recovery transition, for the event log and dashboards."""

    kind: str
    shard: int
    attempt: int
    tick: int
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


class _ShardSlot:
    """Mutable supervision state for one shard."""

    __slots__ = (
        "state", "attempt", "restarts", "spawned_at", "last_beat",
        "last_tick", "reference", "last_checkpoint", "divergences",
        "checkpoints_taken", "reason",
    )

    def __init__(self) -> None:
        self.state = "STARTING"
        self.attempt = 0
        self.restarts = 0
        self.spawned_at = 0.0
        self.last_beat = 0.0
        self.last_tick = 0
        #: tick → digest from the earliest attempt to reach that tick;
        #: later attempts must reproduce these digests exactly.
        self.reference: Dict[int, str] = {}
        self.last_checkpoint: Optional[ShardCheckpoint] = None
        self.divergences = 0
        self.checkpoints_taken = 0
        self.reason = ""


# ----------------------------------------------------------------------
# The supervisor
# ----------------------------------------------------------------------
class ShardSupervisor:
    """Coordinator-side liveness/recovery bookkeeping for a sharded run.

    Pure state machine: the caller owns processes and pipes, feeds
    events in with an explicit monotonic ``now``, and acts on what comes
    back.  :meth:`poll` returns the deadline transitions that fired —
    ``"suspect"`` is advisory, ``"dead"`` and ``"startup-timeout"``
    oblige the caller to kill the worker and then consult
    :meth:`should_restart` / :meth:`mark_failed`.
    """

    def __init__(self, config: SupervisorConfig, num_shards: int):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.config = config
        self.num_shards = int(num_shards)
        self.slots: Dict[int, _ShardSlot] = {
            index: _ShardSlot() for index in range(num_shards)
        }
        self.events: List[SupervisorEvent] = []
        self._samples = 0

    # ------------------------------------------------------------------
    # Telemetry plumbing
    # ------------------------------------------------------------------
    def _emit(self, kind: str, shard: int, detail: str = "",
              dump: bool = False) -> SupervisorEvent:
        slot = self.slots[shard]
        event = SupervisorEvent(
            kind=kind, shard=shard, attempt=slot.attempt,
            tick=slot.last_tick, detail=detail,
        )
        self.events.append(event)
        inc(f"fleet.supervisor.{kind.replace('-', '_')}")
        if dump and is_enabled():
            recorder = get_flight_recorder()
            recorder.record(
                FLEET_LANE, tick=slot.last_tick, supervisor=kind,
                shard=shard, attempt=slot.attempt, detail=detail,
            )
            recorder.auto_dump(
                reason=f"shard-{kind}", tick=slot.last_tick, lane=FLEET_LANE
            )
        self._sample_liveness()
        return event

    def _sample_liveness(self) -> None:
        """Gauge + time-series sample of fleet availability.

        Sampled into the coordinator's own store (worker stores never
        ship home), keyed on a monotone event counter — the series the
        shard-availability SLO replays.
        """
        if not is_enabled():
            return
        live = sum(
            1 for slot in self.slots.values()
            if slot.state in ("LIVE", "SUSPECT", "STARTING", "DONE")
        )
        set_gauge("fleet.supervisor.live_shards", float(live))
        set_gauge(
            "fleet.supervisor.live_ratio", live / float(self.num_shards)
        )
        self._samples += 1
        get_timeseries().sample(get_registry(), tick=self._samples)

    # ------------------------------------------------------------------
    # Pipe events
    # ------------------------------------------------------------------
    def register_spawn(self, shard: int, attempt: int, now: float) -> None:
        slot = self.slots[shard]
        slot.state = "STARTING"
        slot.attempt = attempt
        slot.spawned_at = now
        slot.last_beat = now
        if attempt == 0:
            inc("fleet.supervisor.spawns")
            self._sample_liveness()
        else:
            slot.restarts += 1
            self._emit("restart", shard, detail=f"attempt {attempt}",
                       dump=True)

    def on_hello(self, shard: int, attempt: int, now: float) -> None:
        slot = self.slots[shard]
        if attempt != slot.attempt:
            return  # stale generation
        slot.state = "LIVE"
        slot.last_beat = now
        inc("fleet.supervisor.hellos")

    def on_heartbeat(self, shard: int, tick: int, now: float) -> None:
        slot = self.slots[shard]
        if slot.state in ("DEAD", "DONE", "FAILED"):
            return
        recovered = slot.state == "SUSPECT"
        slot.state = "LIVE"
        slot.last_beat = now
        slot.last_tick = max(slot.last_tick, int(tick))
        if recovered:
            self._emit("recovered", shard)

    def on_checkpoint(self, shard: int,
                      checkpoint: ShardCheckpoint) -> str:
        """Store/verify one checkpoint; returns ``"ok"``/``"divergence"``.

        The first attempt to reach a tick defines the reference digest;
        any later attempt must reproduce it byte-for-byte (the replay
        contract).  A divergence is returned to the caller, which treats
        the shard as unsalvageable — a diverged replay would diverge
        again forever.
        """
        slot = self.slots[shard]
        if checkpoint.attempt != slot.attempt:
            return "ok"  # stale generation — ignore
        slot.checkpoints_taken += 1
        slot.last_checkpoint = checkpoint
        inc("fleet.supervisor.checkpoints")
        reference = slot.reference.get(checkpoint.tick)
        if reference is None:
            slot.reference[checkpoint.tick] = checkpoint.digest
            return "ok"
        if reference == checkpoint.digest:
            return "ok"
        slot.divergences += 1
        self._emit(
            "replay-divergence", shard,
            detail=(
                f"tick {checkpoint.tick}: reference {reference[:12]}... "
                f"!= replay {checkpoint.digest[:12]}..."
            ),
            dump=True,
        )
        return "divergence"

    def on_done(self, shard: int) -> None:
        slot = self.slots[shard]
        slot.state = "DONE"
        self._sample_liveness()

    def on_death(self, shard: int, now: float, reason: str) -> None:
        """A worker generation is gone (pipe EOF, error, or deadline)."""
        slot = self.slots[shard]
        if slot.state in ("DEAD", "DONE", "FAILED"):
            return
        slot.state = "DEAD"
        slot.reason = reason
        log_warning(
            "fleet.supervisor.shard_dead", shard=shard,
            attempt=slot.attempt, reason=reason, tick=slot.last_tick,
        )
        self._emit("dead", shard, detail=reason, dump=True)

    # ------------------------------------------------------------------
    # Deadlines
    # ------------------------------------------------------------------
    def poll(self, now: float) -> List[Tuple[int, str]]:
        """Deadline transitions at ``now``: ``(shard, kind)`` pairs.

        ``"startup-timeout"`` — STARTING past the startup deadline;
        ``"suspect"`` — LIVE but silent past ``suspect_after``;
        ``"dead"`` — SUSPECT and silent past ``dead_after``.  The caller
        must kill the worker on ``"startup-timeout"`` / ``"dead"``
        (then call :meth:`on_death`); ``"suspect"`` is bookkeeping only.
        """
        fired: List[Tuple[int, str]] = []
        for shard, slot in self.slots.items():
            if slot.state == "STARTING":
                if now - slot.spawned_at > self.config.startup_deadline:
                    fired.append((shard, "startup-timeout"))
            elif slot.state == "LIVE":
                if now - slot.last_beat > self.config.suspect_after:
                    slot.state = "SUSPECT"
                    self._emit("suspect", shard)
                    fired.append((shard, "suspect"))
            elif slot.state == "SUSPECT":
                if now - slot.last_beat > self.config.dead_after:
                    fired.append((shard, "dead"))
        return fired

    # ------------------------------------------------------------------
    # Recovery policy
    # ------------------------------------------------------------------
    def should_restart(self, shard: int) -> bool:
        slot = self.slots[shard]
        return (
            slot.restarts < self.config.max_restarts
            and slot.divergences == 0
        )

    def next_attempt(self, shard: int) -> int:
        return self.slots[shard].attempt + 1

    def mark_failed(self, shard: int, reason: str) -> None:
        slot = self.slots[shard]
        slot.state = "FAILED"
        slot.reason = reason
        self._emit("failover", shard, detail=reason, dump=True)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def liveness(self) -> Dict[int, str]:
        return {shard: slot.state for shard, slot in self.slots.items()}

    @property
    def failed_shards(self) -> List[int]:
        return sorted(
            shard for shard, slot in self.slots.items()
            if slot.state == "FAILED"
        )

    def summary(self) -> Dict[str, object]:
        """Picklable recovery history for reports and dashboards."""
        return {
            "liveness": {
                str(shard): slot.state
                for shard, slot in sorted(self.slots.items())
            },
            "restarts": [
                self.slots[shard].restarts
                for shard in range(self.num_shards)
            ],
            "checkpoints_taken": sum(
                slot.checkpoints_taken for slot in self.slots.values()
            ),
            "replay_divergences": sum(
                slot.divergences for slot in self.slots.values()
            ),
            "events": [event.to_dict() for event in self.events],
        }
