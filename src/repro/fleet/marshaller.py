"""Marshal a fleet of streams through one shared CI account.

The sequential :class:`~repro.cloud.marshaller.StreamMarshaller` serves one
stream with a private service.  Deployments watch *many* cameras, and the
two expensive resources — the EventHit forward pass and the CI account —
are both batchable:

* **Inference** — every tick, all active lanes' collection windows are
  stacked into one ``(num_streams, window, features)`` tensor and pushed
  through a single :class:`~repro.core.batched.BatchedInference` call.
  Because the engine is batch-size invariant, each lane's scores are
  bitwise what a solo run would compute.
* **Relaying** — the segments every lane wants relayed enter a shared
  pool; a pluggable :class:`~repro.fleet.scheduler.FleetScheduler` orders
  the pool and the fleet flushes it to the shared CI under a global
  per-tick frame budget.  What the budget cuts off rolls into the next
  tick's pool.

Equivalence contract
--------------------
With the ``round-robin`` scheduler, no budget, and a fault-free service,
``FleetMarshaller.run`` produces **byte-identical** per-stream
:class:`~repro.cloud.marshaller.MarshallingReport` dicts to N sequential
``StreamMarshaller.run`` calls over private services: round-robin keeps
each lane's relay order FIFO, and per-lane costs are attributed by
replaying the pricing model against a per-lane *shadow ledger* (so a
lane's ``total_cost`` is what its private account would have billed, even
though the shared ledger pools the frames).  ``tests/fleet`` pins this.

With a budget or a different scheduler, the fleet trades that exact
equivalence for throughput/QoS control: relays may land ticks later (the
CI clock differs), but no relay is ever dropped by scheduling — only the
failure policy can drop work, exactly as in the sequential loop.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..cloud.faults import CIError
from ..cloud.marshaller import FAILURE_POLICIES, MarshallingReport, StreamMarshaller
from ..cloud.service import UsageLedger
from ..features.extractors import FeatureMatrix
from ..ingest.guard import HEALTH_STATES, QUARANTINED, GuardedStream, StreamGuard
from ..obs import (
    get_flight_recorder,
    inc,
    is_enabled,
    log_info,
    observe,
    record_tick,
    set_gauge,
    span,
    update_slos,
)
from ..video.stream import VideoStream
from .scheduler import (
    FleetScheduler,
    RelayRequest,
    RoundRobinScheduler,
    SchedulerContext,
    make_scheduler,
)

__all__ = ["FleetLane", "FleetReport", "FleetMarshaller", "LANE_MODES"]

#: Per-lane serving modes (see ``FleetMarshaller.run(lane_modes=...)``).
#: ``"serve"`` is the normal predicted path; ``"relay-all"`` is the shed
#: tier — the lane bypasses the forward pass and relays its whole horizon
#: through the shared pool (the quarantine fallback machinery), so load
#: shedding degrades coverage *quality* (cost) but never drops frames.
LANE_MODES = ("serve", "relay-all")


@dataclass
class FleetLane:
    """One stream's inputs to a fleet run."""

    stream: VideoStream
    features: FeatureMatrix

    @property
    def name(self) -> str:
        return self.stream.name


class _LaneState:
    """Mutable per-lane run state (cursor, report, shadow ledger)."""

    __slots__ = (
        "lane",
        "report",
        "shadow",
        "frame",
        "done",
        "guarded",
        "features",
        "last_health",
        "mode",
    )

    def __init__(self, lane: FleetLane, start_frame: int):
        self.lane = lane
        self.report = MarshallingReport()
        # Private replay of this lane's billing, for cost attribution: the
        # shared ledger charges marginal cost against the *pooled* frame
        # count; the shadow recomputes it against the lane-local count,
        # i.e. what the lane's own account would have paid.
        self.shadow = UsageLedger()
        self.frame = start_frame
        self.done = False
        # Set by _make_states when a guard is in play: the sanitized view
        # this lane's windows are cut from (same object as lane.features
        # on a clean stream).
        self.guarded: Optional[GuardedStream] = None
        self.features = lane.features
        # Health code observed at the last guard triage (None = unguarded);
        # telemetry uses the transition into QUARANTINED as a trip wire.
        self.last_health: Optional[int] = None
        # Current serving mode (one of LANE_MODES); admission control
        # flips it between ticks via the run's ``lane_modes`` mapping.
        self.mode: str = "serve"

    @property
    def name(self) -> str:
        return self.lane.name

    @property
    def stream(self) -> VideoStream:
        return self.lane.stream


@dataclass
class FleetReport:
    """Outcome of marshalling a fleet: per-stream reports plus fleet stats.

    ``per_stream`` maps lane name to that stream's
    :class:`~repro.cloud.marshaller.MarshallingReport`, with ``total_cost``
    attributed via the lane's shadow ledger.  ``shared_cost`` is what the
    pooled account actually billed for the run; under non-linear (tiered)
    pricing it is at most the sum of attributed costs — the pooling
    discount.
    """

    per_stream: "OrderedDict[str, MarshallingReport]" = field(
        default_factory=OrderedDict
    )
    scheduler: str = RoundRobinScheduler.name
    ticks: int = 0
    max_batch_size: int = 0
    relays_flushed: int = 0
    relays_postponed: int = 0
    shared_cost: float = 0.0
    shared_frames: int = 0
    shed_transitions: int = 0
    readmit_transitions: int = 0

    @property
    def num_streams(self) -> int:
        return len(self.per_stream)

    @property
    def fleet(self) -> MarshallingReport:
        """Fleet-level rollup (fresh aggregate; inputs untouched)."""
        return MarshallingReport.merged(list(self.per_stream.values()))

    @property
    def attributed_cost(self) -> float:
        """Sum of per-lane attributed costs (== ``shared_cost`` under flat
        pricing up to float association; ≥ under tiered pricing)."""
        return sum(r.total_cost for r in self.per_stream.values())

    def to_dict(self, include_detections: bool = False) -> Dict[str, object]:
        return {
            "num_streams": self.num_streams,
            "scheduler": self.scheduler,
            "ticks": self.ticks,
            "max_batch_size": self.max_batch_size,
            "relays_flushed": self.relays_flushed,
            "relays_postponed": self.relays_postponed,
            "shared_cost": self.shared_cost,
            "shared_frames": self.shared_frames,
            "shed_transitions": self.shed_transitions,
            "readmit_transitions": self.readmit_transitions,
            "attributed_cost": self.attributed_cost,
            "fleet": self.fleet.to_dict(include_detections=include_detections),
            "per_stream": {
                name: report.to_dict(include_detections=include_detections)
                for name, report in self.per_stream.items()
            },
        }


class FleetMarshaller:
    """Multiplex N streams over one decision engine and one CI account.

    Parameters
    ----------
    marshaller:
        The shared decision engine: its model, conformal layers,
        thresholds, and pipeline apply to every lane, and its
        ``inference`` engine runs the stacked forward pass.
    scheduler:
        A :class:`~repro.fleet.scheduler.FleetScheduler` instance or a
        registry name (``"round-robin"``, ``"deadline"``,
        ``"cost-aware"``).
    tick_budget_frames:
        Global per-tick relay budget.  Each tick flushes scheduled
        requests until the budget is spent; the first request of a tick
        always flushes (so every tick makes progress and the run
        terminates), and the remainder is postponed to the next tick.
        ``None`` (default) flushes everything every tick.
    """

    def __init__(
        self,
        marshaller: StreamMarshaller,
        scheduler: "FleetScheduler | str" = RoundRobinScheduler.name,
        tick_budget_frames: Optional[int] = None,
    ):
        if isinstance(scheduler, str):
            scheduler = make_scheduler(scheduler)
        if tick_budget_frames is not None and tick_budget_frames < 1:
            raise ValueError("tick_budget_frames must be >= 1")
        self.marshaller = marshaller
        self.scheduler = scheduler
        self.tick_budget_frames = tick_budget_frames

    # ------------------------------------------------------------------
    # Wiring / validation
    # ------------------------------------------------------------------
    @staticmethod
    def _activation_target(service):
        """The object in the service stack that owns ``activate``.

        Walks the wrapper chain (``ResilientCIClient.service``,
        ``FaultInjector.service``, …) down to the
        :class:`~repro.fleet.service.FleetCIService`.
        """
        target = service
        while target is not None:
            if callable(getattr(target, "activate", None)):
                return target
            target = getattr(target, "service", None)
        raise TypeError(
            "fleet service stack has no activate(); wrap streams in a "
            "FleetCIService"
        )

    def _make_states(
        self, lanes, fleet_service, start_frame, guard=None
    ) -> List[_LaneState]:
        pipeline = self.marshaller.pipeline
        start = start_frame if start_frame is not None else pipeline.min_frame()
        if start < pipeline.min_frame():
            raise ValueError("start_frame leaves no room for the collection window")
        states: List[_LaneState] = []
        names = set()
        fps = None
        for lane in lanes:
            if lane.features.num_frames != lane.stream.length:
                raise ValueError(
                    f"lane {lane.name!r}: feature matrix length != stream length"
                )
            if not fleet_service.has_stream(lane.stream):
                raise ValueError(
                    f"lane {lane.name!r} is not registered with the fleet service"
                )
            if lane.name in names:
                raise ValueError(f"duplicate lane name {lane.name!r}")
            names.add(lane.name)
            if fps is None:
                fps = lane.stream.fps
            elif lane.stream.fps != fps:
                raise ValueError(
                    "fleet lanes must share one fps (the tick clock is global)"
                )
            state = _LaneState(lane, start)
            if guard is not None:
                state.guarded = guard.sanitize(lane.features)
                state.features = state.guarded.features
            states.append(state)
        if not states:
            raise ValueError("a fleet run needs at least one lane")
        return states

    # ------------------------------------------------------------------
    # Tick machinery
    # ------------------------------------------------------------------
    def _lane_active(self, state: _LaneState, max_horizons: Optional[int]) -> bool:
        if state.frame + self.marshaller.horizon >= state.stream.length:
            return False
        if (
            max_horizons is not None
            and state.report.horizons_evaluated >= max_horizons
        ):
            return False
        return True

    def _decide_tick(
        self, active: List[_LaneState], tick: int, lifecycle=None
    ) -> List[RelayRequest]:
        """One stacked forward pass; returns every lane's relay requests."""
        m = self.marshaller
        windows = np.stack(
            [
                m.pipeline.covariates_at(state.features, state.frame)
                for state in active
            ]
        )
        output = m._engine_forward(
            windows,
            [state.name for state in active],
            [state.frame for state in active],
        )
        observe("fleet.batch_size", len(active))
        # One batch-native decision pass for every lane: row i of the
        # batched output (and its segments) is bitwise the lane's solo
        # prediction, so this reproduces the sequential decisions.
        exists_rows, segments_rows = m._decide(output)
        if lifecycle is not None:
            # Offer the decided tick for audit before frames advance;
            # observation never mutates marshaller or report state.
            lifecycle.observe_batch(
                [(state.stream, state.frame) for state in active],
                windows,
                output,
                exists_rows,
                tick=tick,
            )
        requests: List[RelayRequest] = []
        for i, state in enumerate(active):
            segments = segments_rows[i]
            for k, event_type in enumerate(m.event_types):
                truth_frames = m._horizon_truth_frames(
                    state.stream, state.frame, event_type
                )
                state.report.true_event_frames += len(truth_frames)
                for start_offset, end_offset in segments[k]:
                    segment = state.stream.segment(
                        state.frame + start_offset, state.frame + end_offset
                    )
                    requests.append(
                        RelayRequest(
                            lane=state.name,
                            segment=segment,
                            event_type=event_type,
                            tick=tick,
                        )
                    )
            state.report.horizons_evaluated += 1
            state.report.frames_covered += m.horizon
            state.frame += m.horizon
        return requests

    def _quarantine_tick(
        self, state: _LaneState, tick: int, quarantine_policy: str
    ) -> List[RelayRequest]:
        """One quarantined horizon for one lane: no forward pass.

        Under ``"relay-all"`` the whole horizon enters the shared relay
        pool per event type — scheduled, budgeted, and billed exactly like
        model-chosen segments; under ``"skip"`` nothing is relayed.
        """
        m = self.marshaller
        requests: List[RelayRequest] = []
        for event_type in m.event_types:
            truth_frames = m._horizon_truth_frames(
                state.stream, state.frame, event_type
            )
            state.report.true_event_frames += len(truth_frames)
            if quarantine_policy != "relay-all":
                continue
            segment = state.stream.segment(
                state.frame + 1, state.frame + m.horizon
            )
            requests.append(
                RelayRequest(
                    lane=state.name,
                    segment=segment,
                    event_type=event_type,
                    tick=tick,
                )
            )
        state.report.horizons_evaluated += 1
        state.report.frames_covered += m.horizon
        state.frame += m.horizon
        return requests

    def _lane_mode_transition(
        self,
        state: _LaneState,
        mode: str,
        report: FleetReport,
        shed_events: List,
        telemetry: bool,
    ) -> None:
        """Apply one shed/readmit transition at a tick boundary.

        Shedding resets the lane's carried engine state: the lane's
        frames keep advancing while it is degraded, so any recurrent
        state would be stale by the time the lane predicts again.
        Transitions are counted on the report (deterministic) and in the
        ``fleet.shed.*`` counters, and queued for a flight-recorder
        auto-dump once this tick's telemetry row has landed.
        """
        state.mode = mode
        if mode == "relay-all":
            report.shed_transitions += 1
            inc("fleet.shed.degraded")
            inc("fleet.shed.degraded." + state.name)
            self.marshaller._engine_reset([state.name])
            kind = "shed"
        else:
            report.readmit_transitions += 1
            inc("fleet.shed.readmitted")
            inc("fleet.shed.readmitted." + state.name)
            kind = "readmit"
        if telemetry:
            shed_events.append((kind, state.name))

    def _schedule(
        self, requests: List[RelayRequest], states, tick: int
    ) -> List[RelayRequest]:
        if not requests:
            return []
        context = SchedulerContext(
            tick=tick,
            budget_frames=self.tick_budget_frames,
            lane_cost={s.name: s.shadow.total_cost for s in states},
            lane_frames={s.name: s.shadow.frames_processed for s in states},
        )
        ordered = self.scheduler.order(list(requests), context)
        if sorted(map(id, ordered)) != sorted(map(id, requests)):
            raise RuntimeError(
                f"scheduler {self.scheduler.name!r} must return a "
                "permutation of the request pool"
            )
        return ordered

    def _flush(
        self,
        request: RelayRequest,
        state: _LaneState,
        service,
        activate,
        failure_policy: str,
        max_deferrals: int,
        backlog: List[RelayRequest],
    ) -> None:
        """Relay one scheduled segment to the shared CI, attributing its
        billing to the lane's shadow ledger."""
        m = self.marshaller
        activate(state.stream)
        ledger = service.ledger
        frames_before = ledger.frames_processed
        requests_before = ledger.requests
        stats = getattr(service, "stats", None)
        retries_before = getattr(stats, "retries", 0)
        try:
            try:
                detections = service.detect(request.segment, request.event_type)
            except CIError as error:
                if failure_policy == "raise":
                    raise
                if failure_policy == "skip" or request.deferrals >= max_deferrals:
                    m._fail_segment(
                        state.stream,
                        request.segment,
                        request.event_type,
                        state.report,
                        error,
                    )
                else:
                    request.deferrals += 1
                    m._defer_segment(request, backlog, state.report)
            else:
                m._credit_success(
                    state.stream,
                    request.segment,
                    request.event_type,
                    detections,
                    state.report,
                )
                inc("fleet.sched.flushed")
        finally:
            state.report.retries += getattr(stats, "retries", 0) - retries_before
            # Replay whatever the shared ledger billed (0 under a rejected
            # call, possibly >1 request under retry wrappers) against the
            # lane-local frame count.
            billed_frames = ledger.frames_processed - frames_before
            billed_requests = ledger.requests - requests_before
            if billed_frames > 0 or billed_requests > 0:
                pricing = self._pricing(service)
                cost = pricing.cost(
                    state.shadow.frames_processed + billed_frames
                ) - pricing.cost(state.shadow.frames_processed)
                state.shadow.charge(
                    request.event_type.name, billed_frames, cost
                )

    @staticmethod
    def _pricing(service):
        return service.pricing

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    #: Field schemas for the per-tick flight rows, shared across ticks so
    #: the recorder can store raw value tuples (see
    #: :meth:`FlightRecorder.record_rows`).
    _FLIGHT_LANE_KEYS = ("frame", "horizons", "requests", "deferred",
                         "failed", "health", "cost")
    _FLIGHT_FLEET_KEYS = ("backlog_segments", "backlog_frames", "flushed",
                          "postponed", "budget_spent", "breaker")

    @staticmethod
    def _stack_owner(service, attr: str):
        """First object in the service wrapper chain exposing ``attr``."""
        target = service
        while target is not None:
            if hasattr(target, attr):
                return target
            target = getattr(target, "service", None)
        return None

    def _tick_telemetry(
        self,
        states: List[_LaneState],
        report: FleetReport,
        service,
        tick: int,
        backlog: List[RelayRequest],
        spent: int,
        tick_requests: Dict[str, int],
        newly_quarantined: List[str],
        shed_events: List,
        books: Dict[str, float],
        tick_seconds: float,
        resilient,
        breaker,
    ) -> None:
        """Per-tick sampling: backpressure gauges, flight records, the
        time-series row, SLO burn rates, and trip-wire auto-dumps.

        Called only while observability is enabled; everything here reads
        run state, so decisions and reports are bit-for-bit those of an
        untelemetered run.  ``resilient``/``breaker`` are the wrapper-stack
        owners resolved once per run — the stack is fixed, so walking it
        every tick would be wasted work.  This path is on the enabled-run
        overhead budget (``benchmarks/test_fleet_telemetry_overhead.py``):
        state is accumulated in one pass and flight records land through
        the batched single-lock API.
        """
        quarantined = 0
        shed = 0
        true_frames = 0
        detected = 0
        lost = 0
        covered = 0
        failed = 0
        entries = []
        for state in states:
            rep = state.report
            true_frames += rep.true_event_frames
            detected += rep.detected_event_frames
            lost += rep.frames_lost
            covered += rep.frames_covered
            failed += rep.segments_failed
            if state.last_health == QUARANTINED:
                quarantined += 1
            if state.mode == "relay-all":
                shed += 1
            entries.append((state.name, (
                state.frame,
                rep.horizons_evaluated,
                tick_requests.get(state.name, 0),
                rep.segments_deferred,
                rep.segments_failed,
                (HEALTH_STATES[state.last_health]
                 if state.last_health is not None else ""),
                state.shadow.total_cost,
            )))

        backlog_frames = sum(r.frames for r in backlog)
        set_gauge("fleet.backlog.segments", len(backlog))
        set_gauge("fleet.backlog.frames", backlog_frames)
        budget = self.tick_budget_frames
        if budget is not None:
            set_gauge("fleet.budget.utilization", spent / budget)
        set_gauge("fleet.lanes_quarantined", quarantined)
        set_gauge("fleet.lanes_shed", shed)
        set_gauge(
            "fleet.recall_cum",
            detected / true_frames if true_frames else 1.0,
        )
        set_gauge(
            "fleet.frames_lost_ratio", lost / covered if covered else 0.0
        )
        cost_cum = service.ledger.total_cost - books["cost0"]
        set_gauge("fleet.tick_cost", cost_cum - books["cost"])
        set_gauge("fleet.cost_cum", cost_cum)
        books["cost"] = cost_cum
        observe("fleet.tick_seconds", tick_seconds)

        if resilient is not None and resilient.retry_budget_remaining is not None:
            set_gauge(
                "ci.resilient.budget_remaining",
                resilient.retry_budget_remaining,
            )

        fleet_row = ("_fleet", (
            len(backlog),
            backlog_frames,
            report.relays_flushed - books["flushed"],
            report.relays_postponed - books["postponed"],
            spent,
            breaker.state if breaker is not None else "",
        ))
        books["flushed"] = report.relays_flushed
        books["postponed"] = report.relays_postponed

        recorder = get_flight_recorder()
        recorder.record_rows(tick, self._FLIGHT_LANE_KEYS, entries)
        recorder.record_rows(tick, self._FLIGHT_FLEET_KEYS, (fleet_row,))
        for lane in newly_quarantined:
            recorder.auto_dump("quarantine", tick, lane)
        for kind, lane in shed_events:
            recorder.auto_dump(kind, tick, lane)
        if breaker is not None and breaker.open_count > books["opens"]:
            books["opens"] = breaker.open_count
            recorder.auto_dump("circuit-open", tick)
        if failed > books["failed"]:
            books["failed"] = failed
            recorder.auto_dump("failure-policy", tick)

        record_tick(tick)
        update_slos(tick)

    # ------------------------------------------------------------------
    def run(
        self,
        lanes: Sequence[FleetLane],
        service,
        start_frame: Optional[int] = None,
        max_horizons: Optional[int] = None,
        failure_policy: str = "raise",
        max_deferrals: int = 8,
        guard: Optional[StreamGuard] = None,
        on_tick=None,
        lifecycle=None,
        lane_modes: Optional[Dict[str, str]] = None,
        probe=None,
    ) -> FleetReport:
        """Marshal every lane tick by tick through the shared ``service``.

        A tick is one horizon of fleet time: batch-predict all active
        lanes, pool their relay segments with any backlog, schedule, flush
        under the budget, advance the service clock by one horizon.  After
        the last lane finishes its horizons, drain ticks flush the
        remaining backlog (budget still applies).

        ``service`` may be a :class:`~repro.fleet.service.FleetCIService`
        or any wrapper stack around one (fault injector, resilient
        client); ``failure_policy`` and ``max_deferrals`` behave exactly
        as in :meth:`StreamMarshaller.run`, per lane.

        ``guard``, when given, sanitizes every lane's features up front
        (the guard is stateless, so one instance serves the fleet) and
        lanes whose health is QUARANTINED at a tick drop out of that
        tick's stacked forward pass, falling back to the guard's
        ``quarantine_policy`` through the shared relay pool.  Clean lanes
        are unaffected: their reports stay byte-identical to an unguarded
        run.

        ``on_tick``, when given, is called as ``on_tick(tick)`` after
        every tick (telemetry for that tick, if enabled, has already been
        sampled) — the hook the ``watch`` dashboard redraws from.

        ``lifecycle``, when given, is a
        :class:`~repro.lifecycle.LifecycleController`: staged model swaps
        apply at tick boundaries — before the stacked forward pass, so
        every lane switches versions on the same tick — and each lane
        predicting on that tick takes one horizon of
        ``swap_voided_frames``.  A lifecycle that never swaps leaves every
        report byte-identical to a run without one.

        ``lane_modes``, when given, is a live *mutable* mapping from lane
        name to a :data:`LANE_MODES` entry, consulted at every tick
        boundary (missing lanes serve normally).  Admission control
        mutates it between ticks — typically from an ``on_tick`` hook
        (:class:`~repro.fleet.admission.AdmissionDriver`) — to shed
        pressured lanes to the ``"relay-all"`` degraded tier: a shed lane
        skips the stacked forward pass and relays its whole horizon
        through the shared pool, so frames are never dropped, only served
        at baseline quality.  Transitions reset the lane's carried engine
        state, bump ``fleet.shed.*`` counters and the report's
        transition counts, and trigger flight-recorder dumps.  A mapping
        that never leaves ``"serve"`` yields reports byte-identical to a
        run without one.

        ``probe``, when given, is called as ``probe(tick, states, report,
        service)`` after ``on_tick`` with the *live* per-lane run states —
        the read-only seam the shard supervisor's checkpointer captures
        lane cursors and shadow-ledger totals through.  A probe must not
        mutate anything it is shown; one that only reads leaves the run
        byte-identical to a run without it.
        """
        if failure_policy not in FAILURE_POLICIES:
            raise ValueError(
                f"failure_policy must be one of {FAILURE_POLICIES}, "
                f"got {failure_policy!r}"
            )
        if max_deferrals < 1:
            raise ValueError("max_deferrals must be >= 1")
        m = self.marshaller
        fleet_service = self._activation_target(service)
        activate = fleet_service.activate
        states = self._make_states(list(lanes), fleet_service, start_frame, guard)
        by_name = {state.name: state for state in states}
        m._engine_reset()  # a fresh fleet run never inherits carried state
        fps = states[0].stream.fps

        report = FleetReport(scheduler=self.scheduler.name)
        cost_before = service.ledger.total_cost
        frames_before = service.ledger.frames_processed
        backlog: List[RelayRequest] = []
        tick = 0
        set_gauge("fleet.streams", len(states))
        telemetry = is_enabled()
        # The wrapper stack around the service is fixed for the whole run;
        # resolve the telemetry-relevant owners once instead of per tick.
        resilient = self._stack_owner(service, "retry_budget_remaining")
        breaker = getattr(
            self._stack_owner(service, "breaker"), "breaker", None
        )
        books = {
            "cost0": cost_before, "cost": 0.0, "flushed": 0, "postponed": 0,
            "failed": 0,
            "opens": getattr(breaker, "open_count", 0),
        }
        with span(
            "fleet.run", streams=len(states), scheduler=self.scheduler.name
        ):
            while True:
                active = [s for s in states if self._lane_active(s, max_horizons)]
                if not active and not backlog:
                    break
                tick_requests: Dict[str, int] = {}
                newly_quarantined: List[str] = []
                shed_events: List = []
                with span(
                    "fleet.tick",
                    tick=tick,
                    active=len(active),
                    backlog=len(backlog),
                ) as tick_span:
                    pool = backlog
                    backlog = []
                    serving = active
                    if lane_modes is not None and active:
                        # Admission triage: shed lanes take the degraded
                        # relay-all tier — whole horizon into the shared
                        # pool, no forward pass, no dropped frames.
                        serving = []
                        for state in active:
                            mode = lane_modes.get(state.name, "serve")
                            if mode not in LANE_MODES:
                                raise ValueError(
                                    f"lane mode for {state.name!r} must be "
                                    f"one of {LANE_MODES}, got {mode!r}"
                                )
                            if mode != state.mode:
                                self._lane_mode_transition(
                                    state, mode, report, shed_events,
                                    telemetry,
                                )
                            if state.mode == "relay-all":
                                fallback = self._quarantine_tick(
                                    state, tick, "relay-all"
                                )
                                if telemetry:
                                    tick_requests[state.name] = (
                                        tick_requests.get(state.name, 0)
                                        + len(fallback)
                                    )
                                pool = pool + fallback
                            else:
                                serving.append(state)
                    predicting = serving
                    if guard is not None and serving:
                        # Health triage: quarantined lanes bypass the
                        # batched forward and fall back conservatively.
                        predicting = []
                        for state in serving:
                            health, voided = m._guard_bookkeeping(
                                state.guarded, state.frame, state.report
                            )
                            if voided:
                                # Stateful engines drop this lane's
                                # carried state: it may span imputed or
                                # invalid frames.
                                m._engine_reset([state.name])
                            if health == QUARANTINED:
                                if (
                                    telemetry
                                    and state.last_health != QUARANTINED
                                ):
                                    newly_quarantined.append(state.name)
                                state.last_health = health
                                fallback = self._quarantine_tick(
                                    state, tick, guard.quarantine_policy
                                )
                                if telemetry:
                                    tick_requests[state.name] = (
                                        tick_requests.get(state.name, 0)
                                        + len(fallback)
                                    )
                                pool = pool + fallback
                            else:
                                state.last_health = health
                                predicting.append(state)
                    if predicting:
                        if lifecycle is not None:
                            lifecycle.maybe_swap(
                                [s.report for s in predicting], tick=tick
                            )
                        report.max_batch_size = max(
                            report.max_batch_size, len(predicting)
                        )
                        fresh = self._decide_tick(
                            predicting, tick, lifecycle=lifecycle
                        )
                        if telemetry:
                            for request in fresh:
                                tick_requests[request.lane] = (
                                    tick_requests.get(request.lane, 0) + 1
                                )
                        pool = pool + fresh
                    ordered = self._schedule(pool, states, tick)
                    budget = self.tick_budget_frames
                    spent = 0
                    for index, request in enumerate(ordered):
                        if budget is not None and spent >= budget and index > 0:
                            postponed = ordered[index:]
                            backlog.extend(postponed)
                            report.relays_postponed += len(postponed)
                            inc("fleet.sched.postponed", len(postponed))
                            break
                        self._flush(
                            request,
                            by_name[request.lane],
                            service,
                            activate,
                            failure_policy,
                            max_deferrals,
                            backlog,
                        )
                        report.relays_flushed += 1
                        spent += request.frames
                    m._advance_service_clock(service, m.horizon / fps)
                report.ticks += 1
                if telemetry:
                    self._tick_telemetry(
                        states, report, service, tick, backlog, spent,
                        tick_requests, newly_quarantined, shed_events,
                        books, tick_span.seconds, resilient, breaker,
                    )
                if on_tick is not None:
                    on_tick(tick)
                if probe is not None:
                    probe(tick, states, report, service)
                tick += 1

        for state in states:
            state.report.total_cost = state.shadow.total_cost
            report.per_stream[state.name] = state.report
        report.shared_cost = service.ledger.total_cost - cost_before
        report.shared_frames = service.ledger.frames_processed - frames_before

        fleet = report.fleet
        inc("marshal.horizons", fleet.horizons_evaluated)
        inc("marshal.frames_covered", fleet.frames_covered)
        inc("marshal.frames_relayed", fleet.frames_relayed)
        inc("marshal.cost", report.shared_cost)
        inc("stage.frames_covered", fleet.frames_covered)
        inc("stage.frames_featurized", fleet.frames_covered)
        inc("stage.predictions", fleet.horizons_evaluated)
        inc("stage.frames_relayed", fleet.frames_relayed)
        log_info(
            "fleet.run_complete",
            streams=len(states),
            ticks=report.ticks,
            flushed=report.relays_flushed,
            postponed=report.relays_postponed,
            cost=report.shared_cost,
        )
        return report
