"""A shared CI account serving a whole fleet of streams.

One :class:`FleetCIService` is one billing account: a single
:class:`~repro.cloud.service.UsageLedger`, one pricing model, and one
simulated-processing clock, shared by every registered stream.  The fleet
marshaller switches which stream a relay is answered against with
:meth:`activate` before each ``detect`` call — the per-call cost of
multiplexing, instead of paying for N private service instances.

The service subclasses :class:`~repro.cloud.service.CloudInferenceService`,
so the whole resilience stack composes unchanged: wrap it in a
``FaultInjector`` and/or ``ResilientCIClient`` and the wrappers' ``stream``
properties keep delegating to whichever stream is currently active.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..cloud.pricing import PricingModel
from ..cloud.service import CloudInferenceService
from ..video.stream import VideoStream

__all__ = ["FleetCIService"]


class FleetCIService(CloudInferenceService):
    """Pay-per-frame CI shared by several registered streams.

    Parameters
    ----------
    streams:
        The fleet's streams.  Names must be unique — the name is the lane
        key the scheduler and reports use.  The first stream starts
        active.
    pricing / ci_fps:
        As for :class:`~repro.cloud.service.CloudInferenceService`; note
        that under tiered pricing the *pooled* frame count walks the tier
        schedule, which is the point of sharing an account.
    """

    def __init__(
        self,
        streams: Sequence[VideoStream],
        pricing: Optional[PricingModel] = None,
        ci_fps: float = 20.0,
    ):
        streams = list(streams)
        if not streams:
            raise ValueError("a fleet service needs at least one stream")
        registry: Dict[str, VideoStream] = {}
        for stream in streams:
            if stream.name in registry:
                raise ValueError(
                    f"duplicate stream name {stream.name!r}; fleet lanes "
                    "are keyed by stream name"
                )
            registry[stream.name] = stream
        super().__init__(streams[0], pricing=pricing, ci_fps=ci_fps)
        self._registry = registry

    # ------------------------------------------------------------------
    @property
    def streams(self) -> Tuple[VideoStream, ...]:
        """The registered fleet, in registration order."""
        return tuple(self._registry.values())

    def has_stream(self, stream: VideoStream) -> bool:
        """Whether exactly this stream object is registered."""
        return self._registry.get(stream.name) is stream

    def activate(self, stream: VideoStream) -> "FleetCIService":
        """Make ``stream`` the one subsequent ``detect`` calls answer for.

        Ledger, pricing state, and the simulated clock are untouched —
        only the ground-truth source switches.  Returns ``self`` for
        chaining.
        """
        if not self.has_stream(stream):
            raise ValueError(
                f"stream {stream.name!r} is not registered with this fleet "
                "service"
            )
        self.stream = stream
        return self
