"""Correlation-based feature selection (paper §III: "We select features
through standard correlation analysis methods [25]").

Given a feature matrix and the horizon-existence labels of each event type,
rank channels by the maximum absolute Pearson correlation against any event
label, then keep the top-k or those above a threshold.  Uninformative
context channels score near zero and are rejected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .extractors import FeatureMatrix

__all__ = ["correlation_scores", "select_features", "FeatureSelection"]


def correlation_scores(
    features: FeatureMatrix, labels: np.ndarray
) -> Dict[str, float]:
    """Max |Pearson r| of each channel against any event label column.

    Parameters
    ----------
    features:
        (N, D) feature matrix.
    labels:
        (N, K) array: labels[i, k] = 1 if event k occurs in the horizon of
        frame i (or simply occupies frame i — any binary relevance signal).
    """
    labels = np.asarray(labels, dtype=float)
    if labels.ndim == 1:
        labels = labels[:, None]
    if labels.shape[0] != features.num_frames:
        raise ValueError(
            f"labels rows {labels.shape[0]} != frames {features.num_frames}"
        )
    values = features.values
    scores: Dict[str, float] = {}
    x = values - values.mean(axis=0)
    x_std = values.std(axis=0)
    y = labels - labels.mean(axis=0)
    y_std = labels.std(axis=0)
    for j, name in enumerate(features.channel_names):
        if x_std[j] < 1e-12:
            scores[name] = 0.0
            continue
        best = 0.0
        for k in range(labels.shape[1]):
            if y_std[k] < 1e-12:
                continue
            r = float((x[:, j] * y[:, k]).mean() / (x_std[j] * y_std[k]))
            best = max(best, abs(r))
        scores[name] = best
    return scores


@dataclass
class FeatureSelection:
    """Result of a selection pass: kept channel names and all scores."""

    selected: List[str]
    scores: Dict[str, float]

    def apply(self, features: FeatureMatrix) -> FeatureMatrix:
        return features.select(self.selected)


def select_features(
    features: FeatureMatrix,
    labels: np.ndarray,
    top_k: Optional[int] = None,
    min_score: float = 0.05,
) -> FeatureSelection:
    """Keep channels with |r| >= min_score (and at most top_k of them).

    At least one channel is always kept (the best-scoring one), so the
    downstream model never receives an empty covariate.
    """
    if top_k is not None and top_k <= 0:
        raise ValueError("top_k must be positive")
    scores = correlation_scores(features, labels)
    ranked = sorted(scores, key=lambda name: scores[name], reverse=True)
    kept = [name for name in ranked if scores[name] >= min_score]
    if not kept:
        kept = ranked[:1]
    if top_k is not None:
        kept = kept[:top_k]
    # Preserve original channel order for stable downstream indexing.
    ordered = [name for name in features.channel_names if name in set(kept)]
    return FeatureSelection(selected=ordered, scores=scores)
