"""Per-frame covariate extraction (paper §II "covariates are part of feature
selection and are application-dependent").

For every event type we emit three channels, mirroring the descriptive
features the paper builds from detector outputs and annotations:

* ``precursor:<event>`` — a ramp that rises from 0 to ~1 over the event's
  lead time before each onset (e.g. "average distance between cars and
  persons" shrinking as a truck approaches).  Its amplitude is partially
  modulated by the *upcoming instance's duration percentile*, so interval
  length is statistically predictable to the degree the event type's
  ``predictability`` allows.
* ``presence:<event>`` — detector evidence that the activity is ongoing.
* ``count:<event>`` — normalised target-object counts from the simulated
  detector (the channel the VQS baseline thresholds).

Plus shared context channels (ambient motion random walk, slow illumination
drift, white noise) that carry no information about the events — feature
selection should reject them.

All noise derives from the stream's ``observation_rng``, so extraction is
deterministic for a given stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..video.events import EventType
from ..video.stream import VideoStream
from .detectors import SimulatedObjectDetector, _salt

__all__ = ["FeatureMatrix", "FeatureExtractor", "extract_features"]


@dataclass
class FeatureMatrix:
    """A (N, D) feature array with named channels."""

    values: np.ndarray
    channel_names: List[str]

    def __post_init__(self) -> None:
        if self.values.ndim != 2:
            raise ValueError("feature values must be 2-D (frames, channels)")
        if self.values.shape[1] != len(self.channel_names):
            raise ValueError(
                f"{self.values.shape[1]} channels but "
                f"{len(self.channel_names)} names"
            )

    @property
    def num_frames(self) -> int:
        return self.values.shape[0]

    @property
    def num_channels(self) -> int:
        return self.values.shape[1]

    def channel(self, name: str) -> np.ndarray:
        """Column by channel name."""
        try:
            index = self.channel_names.index(name)
        except ValueError:
            raise KeyError(f"unknown channel {name!r}") from None
        return self.values[:, index]

    def select(self, names: Sequence[str]) -> "FeatureMatrix":
        """A new matrix restricted to the named channels (in given order)."""
        indices = [self.channel_names.index(n) for n in names]
        return FeatureMatrix(self.values[:, indices].copy(), list(names))


class FeatureExtractor:
    """Build the covariate channels for a stream and a set of event types.

    Parameters
    ----------
    detector:
        Simulated detector supplying the object-count channels.
    context_channels:
        Number of uninformative context channels to append.
    duration_coupling:
        Weight in [0, 1] of the duration-percentile modulation of the
        precursor amplitude (scaled by each event's predictability).
    """

    def __init__(
        self,
        detector: Optional[SimulatedObjectDetector] = None,
        context_channels: int = 3,
        duration_coupling: float = 0.5,
    ):
        if context_channels < 0:
            raise ValueError("context_channels must be >= 0")
        if not 0.0 <= duration_coupling <= 1.0:
            raise ValueError("duration_coupling must be in [0, 1]")
        self.detector = detector or SimulatedObjectDetector()
        self.context_channels = context_channels
        self.duration_coupling = duration_coupling

    # ------------------------------------------------------------------
    # Channel builders
    # ------------------------------------------------------------------
    def precursor_channel(
        self, stream: VideoStream, event_type: EventType
    ) -> np.ndarray:
        """Noisy anticipation ramp for one event type."""
        dist = stream.schedule.time_to_next_onset(event_type)
        lead = float(event_type.lead_time)
        with np.errstate(invalid="ignore"):
            ramp = np.clip(1.0 - dist / lead, 0.0, 1.0)
        ramp = np.where(np.isfinite(dist), ramp, 0.0)

        amplitude = self._duration_amplitudes(stream, event_type)
        signal = ramp * amplitude

        noise_sigma = self._noise_sigma(event_type)
        rng = stream.observation_rng(_salt("precursor", event_type.name))
        return signal + rng.normal(0.0, noise_sigma, size=stream.length)

    def presence_channel(
        self, stream: VideoStream, event_type: EventType
    ) -> np.ndarray:
        """Noisy in-event evidence for one event type."""
        occupancy = stream.schedule.occupancy_mask(event_type).astype(float)
        noise_sigma = self._noise_sigma(event_type)
        rng = stream.observation_rng(_salt("presence", event_type.name))
        return occupancy + rng.normal(0.0, noise_sigma, size=stream.length)

    def count_channel(
        self, stream: VideoStream, event_type: EventType
    ) -> np.ndarray:
        """Target-object counts normalised by the in-event rate."""
        counts = self.detector.counts(stream, event_type).astype(float)
        return counts / self.detector.profile.event_rate

    def context_channel_matrix(self, stream: VideoStream) -> np.ndarray:
        """(N, context_channels) of uninformative context signals."""
        if self.context_channels == 0:
            return np.zeros((stream.length, 0))
        rng = stream.observation_rng(_salt("context", "shared"))
        n = stream.length
        columns = []
        for c in range(self.context_channels):
            if c % 3 == 0:
                # Ambient motion: fast mean-reverting AR(1).  The short
                # correlation length (~5 frames) keeps the channel from
                # acting as a stream-position code that a model could use
                # to memorise the training schedule.
                from scipy.signal import lfilter

                phi = 0.8
                noise = rng.normal(0, 0.6, size=n)
                ar = lfilter([1.0], [1.0, -phi], noise)
                columns.append(np.tanh(ar))
            elif c % 3 == 1:
                # Flicker: fast sinusoid with a random short period and
                # phase — periodic everywhere, so positionally ambiguous.
                period = rng.uniform(30, 80)
                phase = rng.uniform(0, 2 * np.pi)
                t = np.arange(n)
                columns.append(np.sin(2 * np.pi * t / period + phase))
            else:
                columns.append(rng.normal(0, 1.0, size=n))
        return np.stack(columns, axis=1)

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def extract(
        self, stream: VideoStream, event_types: Sequence[EventType]
    ) -> FeatureMatrix:
        """Full (N, D) covariate matrix with D = 3K + context_channels."""
        if not event_types:
            raise ValueError("event_types must be non-empty")
        columns: List[np.ndarray] = []
        names: List[str] = []
        for event_type in event_types:
            columns.append(self.precursor_channel(stream, event_type))
            names.append(f"precursor:{event_type.name}")
            columns.append(self.presence_channel(stream, event_type))
            names.append(f"presence:{event_type.name}")
            columns.append(self.count_channel(stream, event_type))
            names.append(f"count:{event_type.name}")
        context = self.context_channel_matrix(stream)
        for c in range(context.shape[1]):
            columns.append(context[:, c])
            names.append(f"context:{c}")
        return FeatureMatrix(np.stack(columns, axis=1), names)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _noise_sigma(self, event_type: EventType) -> float:
        """Observation noise scale — higher for less predictable events."""
        return 0.05 + 0.55 * (1.0 - event_type.predictability)

    def _duration_amplitudes(
        self, stream: VideoStream, event_type: EventType
    ) -> np.ndarray:
        """Per-frame ramp amplitude encoding the next instance's duration.

        The amplitude preceding instance i is
        ``1 + coupling·pred·(percentile(duration_i) - 0.5)``, so longer
        upcoming events produce visibly stronger precursors, making interval
        *length* partially learnable — more so for predictable event types.
        """
        amplitude = np.ones(stream.length)
        weight = self.duration_coupling * event_type.predictability
        if weight == 0.0 or event_type.duration_std == 0:
            return amplitude
        instances = stream.schedule.instances_of(event_type)
        if not instances:
            return amplitude
        durations = np.array([inst.duration for inst in instances], dtype=float)
        order = durations.argsort().argsort()
        percentiles = (order + 0.5) / len(durations)
        previous_end = 0
        for inst, pct in zip(instances, percentiles):
            segment = slice(previous_end, inst.end + 1)
            amplitude[segment] = 1.0 + weight * (pct - 0.5)
            previous_end = inst.end + 1
        return amplitude


def extract_features(
    stream: VideoStream,
    event_types: Sequence[EventType],
    detector: Optional[SimulatedObjectDetector] = None,
    context_channels: int = 3,
) -> FeatureMatrix:
    """Convenience wrapper: extract with default settings."""
    extractor = FeatureExtractor(detector=detector, context_channels=context_channels)
    return extractor.extract(stream, event_types)
