"""Collection-window covariate assembly (paper §II).

The covariates at frame i are the stacked feature vectors of the collection
window W of length M ending at i:  ``X_i = [X_{i-M+1}, ..., X_i] ∈ R^{M×D}``.
This module slices those windows out of a :class:`FeatureMatrix`, both
one-at-a-time and as batched (B, M, D) arrays for training, with optional
per-channel standardisation fitted on training data only.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .extractors import FeatureMatrix

__all__ = ["Standardizer", "CovariatePipeline"]


@dataclass
class Standardizer:
    """Per-channel affine normalisation fitted on training frames.

    Fitting on the training split and reusing on calibration/test keeps the
    splits exchangeable while avoiding information leakage.
    """

    mean: np.ndarray
    std: np.ndarray

    @classmethod
    def fit(cls, values: np.ndarray) -> "Standardizer":
        if values.ndim != 2:
            raise ValueError("expected (frames, channels)")
        mean = values.mean(axis=0)
        std = values.std(axis=0)
        std = np.where(std < 1e-8, 1.0, std)
        return cls(mean=mean, std=std)

    def transform(self, values: np.ndarray) -> np.ndarray:
        return (values - self.mean) / self.std


class CovariatePipeline:
    """Slice collection windows out of a feature matrix.

    Parameters
    ----------
    window_size:
        M, the number of frames per collection window.
    standardizer:
        Optional fitted :class:`Standardizer` applied before slicing.
    """

    #: Standardized matrices memoized per pipeline (one entry per stream a
    #: deployment serves; large enough for big fleets).
    _CACHE_ENTRIES = 64

    def __init__(self, window_size: int, standardizer: Optional[Standardizer] = None):
        if window_size <= 0:
            raise ValueError("window_size must be positive")
        self.window_size = window_size
        self.standardizer = standardizer
        self._prepared_cache: "OrderedDict[int, tuple]" = OrderedDict()

    def min_frame(self) -> int:
        """Smallest frame index with a full collection window behind it."""
        return self.window_size - 1

    def _prepared(self, features: FeatureMatrix) -> np.ndarray:
        """Standardized (frames, channels) matrix, memoized per object.

        The marshalling loop slices one window per horizon out of the same
        matrix for the length of a stream; standardizing the whole matrix
        on every slice would dominate serving time.  Entries are keyed by
        object identity (feature matrices are never mutated in place) and
        hold a reference to the keying object so ids cannot be recycled
        while cached.
        """
        if self.standardizer is None:
            return features.values
        key = id(features)
        hit = self._prepared_cache.get(key)
        if hit is not None and hit[0] is features:
            self._prepared_cache.move_to_end(key)
            return hit[1]
        values = self.standardizer.transform(features.values)
        self._prepared_cache[key] = (features, values)
        if len(self._prepared_cache) > self._CACHE_ENTRIES:
            self._prepared_cache.popitem(last=False)
        return values

    def covariates_at(self, features: FeatureMatrix, frame: int) -> np.ndarray:
        """The (M, D) covariate window ending at ``frame`` (inclusive)."""
        if frame < self.min_frame() or frame >= features.num_frames:
            raise ValueError(
                f"frame {frame} outside valid range "
                f"[{self.min_frame()}, {features.num_frames})"
            )
        values = self._prepared(features)
        return values[frame - self.window_size + 1 : frame + 1]

    def covariate_batch(
        self, features: FeatureMatrix, frames: Sequence[int]
    ) -> np.ndarray:
        """Batched (B, M, D) covariates for the given reference frames."""
        frames = np.asarray(frames, dtype=int)
        if frames.ndim != 1 or frames.size == 0:
            raise ValueError("frames must be a non-empty 1-D sequence")
        if frames.min() < self.min_frame() or frames.max() >= features.num_frames:
            raise ValueError(
                f"frames outside valid range [{self.min_frame()}, "
                f"{features.num_frames})"
            )
        values = self._prepared(features)
        offsets = np.arange(-self.window_size + 1, 1)
        index = frames[:, None] + offsets[None, :]
        return values[index]
