"""Autoencoder dimensionality reduction for covariates (paper §III).

The paper: *"Other feature engineering approaches can be utilized in this
stage, such as dimensionality reduction [26] via auto-encoders [27]."*
This module implements that alternative on the :mod:`repro.nn` substrate —
a per-frame MLP autoencoder trained to reconstruct feature vectors, whose
encoder half then maps each frame's D channels to a compact latent code
before the collection-window pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from .. import nn
from ..nn import Adam, MLP, Module, Tensor, no_grad
from .extractors import FeatureMatrix

__all__ = ["Autoencoder", "AutoencoderReducer"]


class Autoencoder(Module):
    """Symmetric MLP autoencoder: D → hidden → latent → hidden → D."""

    def __init__(
        self,
        num_features: int,
        latent_dim: int,
        hidden: Sequence[int] = (32,),
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if num_features <= 0 or latent_dim <= 0:
            raise ValueError("num_features and latent_dim must be positive")
        if latent_dim >= num_features:
            raise ValueError("latent_dim must be smaller than num_features")
        rng = rng if rng is not None else np.random.default_rng()
        self.num_features = num_features
        self.latent_dim = latent_dim
        self.encoder = MLP(
            num_features, list(hidden), latent_dim, activation="tanh", rng=rng
        )
        self.decoder = MLP(
            latent_dim, list(reversed(list(hidden))), num_features,
            activation="tanh", rng=rng,
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.decoder(self.encoder(x))

    def encode(self, values: np.ndarray, batch_size: int = 4096) -> np.ndarray:
        """Latent codes for a (N, D) array (eval mode, batched)."""
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2 or values.shape[1] != self.num_features:
            raise ValueError(f"expected (N, {self.num_features}) input")
        was_training = self.training
        self.eval()
        parts = []
        try:
            with no_grad():
                for lo in range(0, values.shape[0], batch_size):
                    parts.append(self.encoder(Tensor(values[lo : lo + batch_size])).data)
        finally:
            self.train(was_training)
        return np.concatenate(parts, axis=0)


@dataclass
class AutoencoderHistory:
    """Reconstruction-loss trace of autoencoder training."""

    losses: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


class AutoencoderReducer:
    """Fit-once / transform-many reducer over feature matrices.

    Standardise inputs implicitly by fitting on already-standardised
    features (as the covariate pipeline does) or raw ones — the autoencoder
    does not care, but fit and transform must see the same convention.
    """

    def __init__(
        self,
        latent_dim: int,
        hidden: Sequence[int] = (32,),
        epochs: int = 30,
        batch_size: int = 256,
        learning_rate: float = 1e-3,
        seed: int = 0,
    ):
        if epochs <= 0 or batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.latent_dim = latent_dim
        self.hidden = tuple(hidden)
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.seed = seed
        self.model: Optional[Autoencoder] = None
        self.history = AutoencoderHistory()

    @property
    def is_fitted(self) -> bool:
        return self.model is not None

    def fit(self, features: FeatureMatrix) -> "AutoencoderReducer":
        """Train the autoencoder on a feature matrix (MSE reconstruction)."""
        rng = np.random.default_rng(self.seed)
        values = features.values
        model = Autoencoder(
            num_features=values.shape[1],
            latent_dim=self.latent_dim,
            hidden=self.hidden,
            rng=rng,
        )
        optimizer = Adam(model.parameters(), lr=self.learning_rate)
        n = values.shape[0]
        for _ in range(self.epochs):
            order = rng.permutation(n)
            epoch_loss, seen = 0.0, 0
            for lo in range(0, n, self.batch_size):
                batch = values[order[lo : lo + self.batch_size]]
                optimizer.zero_grad()
                recon = model(Tensor(batch))
                loss = ((recon - Tensor(batch)) ** 2).mean()
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item() * batch.shape[0]
                seen += batch.shape[0]
            self.history.losses.append(epoch_loss / max(seen, 1))
        model.eval()
        self.model = model
        return self

    def transform(self, features: FeatureMatrix) -> FeatureMatrix:
        """Reduced feature matrix with channels ``latent:0..latent:L-1``."""
        if self.model is None:
            raise RuntimeError("fit() before transform()")
        codes = self.model.encode(features.values)
        names = [f"latent:{i}" for i in range(self.latent_dim)]
        return FeatureMatrix(codes, names)

    def reconstruction_error(self, features: FeatureMatrix) -> float:
        """Mean squared reconstruction error on a feature matrix."""
        if self.model is None:
            raise RuntimeError("fit() before reconstruction_error()")
        values = features.values
        with no_grad():
            recon = self.model(Tensor(values)).data
        return float(np.mean((recon - values) ** 2))
