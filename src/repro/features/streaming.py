"""Streaming covariate assembly for live deployments.

The batch :class:`~repro.features.pipeline.CovariatePipeline` slices
windows out of a fully materialised feature matrix; a live camera delivers
one feature vector per frame.  :class:`StreamingCovariateBuffer` is the
online equivalent: push per-frame vectors as they arrive, and read the
current (M, D) collection window in O(M) without re-copying history — a
ring buffer with the same standardisation hook as the batch pipeline.

Equivalence with the batch pipeline is tested property-style in
``tests/features/test_streaming.py``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .pipeline import Standardizer

__all__ = ["StreamingCovariateBuffer"]


class StreamingCovariateBuffer:
    """Ring buffer of per-frame feature vectors.

    Parameters
    ----------
    window_size:
        Collection window length M.
    num_channels:
        Feature dimensionality D.
    standardizer:
        Optional fitted standardizer applied to each pushed vector (fit on
        training data, as in the batch pipeline).
    """

    def __init__(
        self,
        window_size: int,
        num_channels: int,
        standardizer: Optional[Standardizer] = None,
    ):
        if window_size <= 0 or num_channels <= 0:
            raise ValueError("window_size and num_channels must be positive")
        self.window_size = window_size
        self.num_channels = num_channels
        self.standardizer = standardizer
        self._ring = np.zeros((window_size, num_channels))
        self._cursor = 0  # next write position
        self._count = 0  # total frames pushed

    # ------------------------------------------------------------------
    @property
    def frames_seen(self) -> int:
        return self._count

    @property
    def is_ready(self) -> bool:
        """Whether a full collection window is available."""
        return self._count >= self.window_size

    def push(self, vector: np.ndarray) -> None:
        """Append one frame's feature vector."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.num_channels,):
            raise ValueError(
                f"expected a ({self.num_channels},) vector, got {vector.shape}"
            )
        if self.standardizer is not None:
            vector = self.standardizer.transform(vector[None, :])[0]
        self._ring[self._cursor] = vector
        self._cursor = (self._cursor + 1) % self.window_size
        self._count += 1

    def push_many(self, vectors: np.ndarray) -> None:
        """Append several frames (rows) at once."""
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != self.num_channels:
            raise ValueError(
                f"expected (n, {self.num_channels}) rows, got {vectors.shape}"
            )
        for row in vectors:
            self.push(row)

    def window(self) -> np.ndarray:
        """The current (M, D) collection window, oldest frame first.

        Raises until :attr:`is_ready` — the paper's covariates are only
        defined once M frames have been observed.
        """
        if not self.is_ready:
            raise ValueError(
                f"only {self._count} of {self.window_size} frames buffered"
            )
        return np.roll(self._ring, -self._cursor, axis=0).copy()

    def reset(self) -> None:
        self._ring[:] = 0.0
        self._cursor = 0
        self._count = 0
