"""Track-derived covariates (the paper's actual VIRAT feature recipe).

§VI.A describes features such as "an indicator of the presence/absence of
moving cars and a value for the average distance between the cars and the
persons in a frame".  :class:`TrackFeatureExtractor` computes the same
kinds of quantities from simulated :class:`~repro.video.tracks.TrackSet`
trajectories, per event type:

* ``approach:<event>`` — closeness of the nearest actor track to the scene
  anchor (1 at the anchor, 0 at the scene edge) — the "distance between the
  truck and the gate" signal;
* ``motion:<event>`` — mean actor speed (approaching objects move, dwelling
  ones don't);
* ``objects:<event>`` — count of alive actor tracks.

Plus a shared ``clutter`` channel (background object count) that carries no
event information.  Observation noise is applied per channel so the
features behave like detector outputs, not oracle annotations.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..video.events import EventType
from ..video.stream import VideoStream
from ..video.tracks import SCENE_RADIUS, TrackSet, simulate_tracks
from .detectors import _salt
from .extractors import FeatureMatrix

__all__ = ["TrackFeatureExtractor"]


class TrackFeatureExtractor:
    """Compute per-frame covariates from object trajectories.

    Parameters
    ----------
    noise_sigma:
        Observation noise applied to every channel (tracker jitter).
    clutter_per_10k_frames:
        Background track density passed to the track simulator.
    """

    def __init__(
        self,
        noise_sigma: float = 0.05,
        clutter_per_10k_frames: float = 5.0,
    ):
        if noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")
        self.noise_sigma = noise_sigma
        self.clutter_per_10k_frames = clutter_per_10k_frames

    def _per_event_tracks(
        self, tracks: TrackSet, event_type: EventType
    ) -> TrackSet:
        subset = [
            t for t in tracks.tracks
            if t.label == "actor" and t.event_name == event_type.name
        ]
        return TrackSet(tracks.length, subset)

    def extract_from_tracks(
        self,
        stream: VideoStream,
        tracks: TrackSet,
        event_types: Sequence[EventType],
    ) -> FeatureMatrix:
        """Covariate matrix from an existing TrackSet."""
        if not event_types:
            raise ValueError("event_types must be non-empty")
        if tracks.length != stream.length:
            raise ValueError("track set length != stream length")
        columns: List[np.ndarray] = []
        names: List[str] = []
        for event_type in event_types:
            event_tracks = self._per_event_tracks(tracks, event_type)
            rng = stream.observation_rng(_salt("track", event_type.name))

            distance = event_tracks.min_anchor_distance_series()
            approach = 1.0 - np.clip(distance / SCENE_RADIUS, 0.0, 1.0)
            columns.append(
                approach + rng.normal(0, self.noise_sigma, stream.length)
            )
            names.append(f"approach:{event_type.name}")

            speed = event_tracks.mean_speed_series()
            speed_scale = max(speed.max(), 1e-6)
            columns.append(
                speed / speed_scale
                + rng.normal(0, self.noise_sigma, stream.length)
            )
            names.append(f"motion:{event_type.name}")

            counts = event_tracks.count_series()
            columns.append(
                counts + rng.normal(0, self.noise_sigma, stream.length)
            )
            names.append(f"objects:{event_type.name}")

        clutter_rng = stream.observation_rng(_salt("track", "clutter"))
        clutter = tracks.count_series(label="clutter")
        columns.append(
            clutter + clutter_rng.normal(0, self.noise_sigma, stream.length)
        )
        names.append("clutter")
        return FeatureMatrix(np.stack(columns, axis=1), names)

    def extract(
        self, stream: VideoStream, event_types: Sequence[EventType]
    ) -> FeatureMatrix:
        """Simulate tracks for the stream, then extract covariates."""
        tracks = simulate_tracks(
            stream,
            event_types,
            clutter_per_10k_frames=self.clutter_per_10k_frames,
        )
        return self.extract_from_tracks(stream, tracks, event_types)
