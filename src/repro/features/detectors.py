"""Simulated object/action detectors.

The paper extracts per-frame features with lightweight detection models
(YOLOv3, Faster R-CNN) and feeds them to EventHit; the VQS baseline
(BlazeIt) filters on the *count of frames containing target objects*.  We
simulate those detector outputs directly from the ground-truth schedule:

* during an event instance, the count of target objects associated with the
  event type is elevated;
* during the precursor window before an onset, the count rises gradually
  (the approaching truck enters the field of view);
* elsewhere a background rate produces clutter detections.

Counts are Poisson-distributed around those rates, which yields the false
positives/negatives a real detector exhibits.  Each detector carries an
``fps`` throughput figure used by the timing model (Figs. 9 & 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..video.events import EventType
from ..video.stream import VideoStream

__all__ = ["DetectorProfile", "DETECTOR_PROFILES", "SimulatedObjectDetector"]


@dataclass(frozen=True)
class DetectorProfile:
    """Throughput/fidelity profile of a detection model.

    ``fps`` values follow the paper's footnotes: YOLOv3-class detectors run
    fast, Faster R-CNN is slower, action-detection models run ≈25 fps.
    """

    name: str
    fps: float
    background_rate: float = 0.3
    event_rate: float = 3.0

    def __post_init__(self) -> None:
        if self.fps <= 0:
            raise ValueError("fps must be positive")
        if self.background_rate < 0 or self.event_rate <= 0:
            raise ValueError("rates must be positive")


DETECTOR_PROFILES: Dict[str, DetectorProfile] = {
    "yolov3": DetectorProfile("yolov3", fps=45.0),
    "faster-rcnn": DetectorProfile("faster-rcnn", fps=5.0),
    "action-detector": DetectorProfile("action-detector", fps=25.0),
}


class SimulatedObjectDetector:
    """Produce per-frame target-object counts for each event type.

    Parameters
    ----------
    profile:
        Detector throughput/fidelity profile (or a profile name).
    precursor_fraction:
        Fraction of the event type's lead time during which target objects
        already appear before onset (objects become visible gradually).
    """

    def __init__(
        self,
        profile: DetectorProfile | str = "yolov3",
        precursor_fraction: float = 0.5,
    ):
        if isinstance(profile, str):
            try:
                profile = DETECTOR_PROFILES[profile]
            except KeyError:
                raise ValueError(
                    f"unknown detector {profile!r}; expected one of "
                    f"{sorted(DETECTOR_PROFILES)}"
                ) from None
        if not 0.0 < precursor_fraction <= 1.0:
            raise ValueError("precursor_fraction must be in (0, 1]")
        self.profile = profile
        self.precursor_fraction = precursor_fraction

    @property
    def fps(self) -> float:
        return self.profile.fps

    def detection_rates(
        self, stream: VideoStream, event_type: EventType
    ) -> np.ndarray:
        """Expected target-object count per frame (before Poisson noise)."""
        occupancy = stream.schedule.occupancy_mask(event_type).astype(float)
        dist = stream.schedule.time_to_next_onset(event_type)
        window = max(1, int(event_type.lead_time * self.precursor_fraction))
        with np.errstate(invalid="ignore"):
            ramp = np.clip(1.0 - dist / window, 0.0, 1.0)
        ramp = np.where(np.isfinite(dist), ramp, 0.0)
        signal = np.maximum(occupancy, ramp)
        return (
            self.profile.background_rate
            + signal * (self.profile.event_rate - self.profile.background_rate)
        )

    def counts(self, stream: VideoStream, event_type: EventType) -> np.ndarray:
        """Noisy per-frame target-object counts (ints >= 0)."""
        rates = self.detection_rates(stream, event_type)
        rng = stream.observation_rng(salt=_salt("detector", event_type.name))
        return rng.poisson(rates)

    def count_matrix(
        self, stream: VideoStream, event_types: Sequence[EventType]
    ) -> np.ndarray:
        """(N, K) matrix of counts, one column per event type."""
        if not event_types:
            raise ValueError("event_types must be non-empty")
        return np.stack(
            [self.counts(stream, et) for et in event_types], axis=1
        ).astype(float)


def _salt(kind: str, name: str) -> int:
    """Stable small-int salt from a label (process-hash independent)."""
    import zlib

    return zlib.crc32(f"{kind}:{name}".encode("utf-8"))
