"""Feature extraction substrate: simulated detectors, covariate channels,
collection-window assembly, and correlation-based feature selection."""

from .detectors import DETECTOR_PROFILES, DetectorProfile, SimulatedObjectDetector
from .extractors import FeatureExtractor, FeatureMatrix, extract_features
from .pipeline import CovariatePipeline, Standardizer
from .selection import FeatureSelection, correlation_scores, select_features
from .autoencoder import Autoencoder, AutoencoderReducer
from .track_features import TrackFeatureExtractor
from .streaming import StreamingCovariateBuffer

__all__ = [
    "Autoencoder",
    "AutoencoderReducer",
    "TrackFeatureExtractor",
    "StreamingCovariateBuffer",
    "DetectorProfile",
    "DETECTOR_PROFILES",
    "SimulatedObjectDetector",
    "FeatureExtractor",
    "FeatureMatrix",
    "extract_features",
    "CovariatePipeline",
    "Standardizer",
    "FeatureSelection",
    "correlation_scores",
    "select_features",
]
