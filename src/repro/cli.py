"""Command-line interface for the reproduction.

Every table/figure generator and the single-experiment evaluator are
reachable from the shell::

    python -m repro.cli tasks                      # Table II
    python -m repro.cli table1 --scale 0.2         # Table I stats
    python -m repro.cli fig4 --task TA1            # one Fig. 4 panel
    python -m repro.cli fig5 --task TA10           # C-CLASSIFY study
    python -m repro.cli fig6 --task TA5            # C-REGRESS study
    python -m repro.cli fig8 --task TA1            # cost case study
    python -m repro.cli fig9 --task TA11           # REC vs FPS
    python -m repro.cli fig10 --task TA10          # stage breakdown
    python -m repro.cli evaluate --task TA10 --algorithm EHCR \
        --confidence 0.95 --alpha 0.9
    python -m repro.cli metrics --task TA10 --algorithm EHCR
    python -m repro.cli chaos --task TA10 --fault-rates 0,0.1,0.3 \
        --max-attempts 1,4 --failure-policy defer
    python -m repro.cli chaos --task TA10 --ingest \
        --ingest-fault-rates 0,0.1,0.2 --imputation none,hold-last
    python -m repro.cli fleet --task TA10 --streams 8 --scheduler deadline
    python -m repro.cli fleet --task TA10 --fleet-sizes 1,4,16   # sweep
    python -m repro.cli watch --task TA10 --streams 4 --fault-rate 0.2
    python -m repro.cli watch --task TA10 --streams 6 --shards 3 \
        --shard-fault-rate 0.5 --plain          # supervised shard chaos
    python -m repro.cli slo --from timeseries.json --spec slos.json

All experiment-backed commands accept ``--scale/--epochs/--records/--seed``
to size the synthetic workload, plus the observability flags
``--log-level LEVEL`` (structured JSON-lines logs on stderr) and
``--trace-out FILE`` (stream nested span records as JSON lines).  The
``metrics`` command runs one instrumented evaluation and renders the
metrics registry plus the §VI.H per-stage time shares.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from . import obs
from .core import ENGINES
from .cloud import (
    BreakerConfig,
    FaultInjector,
    FaultPlan,
    ResilientCIClient,
    RetryPolicy,
)
from .fleet import (
    PARTITIONS,
    SCHEDULERS,
    FleetCIService,
    ShardFaultPlan,
    SupervisorConfig,
)
from .ingest import IngestFaultPlan
from .lifecycle import LifecycleFaultPlan
from .harness import (
    ExperimentSettings,
    build_fleet_lanes,
    chaos_experiment,
    continual_gate_sweep,
    ingest_chaos_experiment,
    lifecycle_chaos_experiment,
    fleet_marshaller,
    fleet_throughput_sweep,
    sharded_fleet_marshaller,
    sharded_throughput_sweep,
    fig10_stage_breakdown,
    fig4_rec_spl,
    fig5_cclassify,
    fig6_cregress,
    fig8_cost,
    fig9_fps,
    format_table,
    run_experiment,
    summarize_frontier,
    table1_rows,
    table2_rows,
)

__all__ = ["main", "build_parser"]


def _add_experiment_args(parser: argparse.ArgumentParser, default_task: str) -> None:
    parser.add_argument("--task", default=default_task, help="task id (TA1..TA16)")
    parser.add_argument("--scale", type=float, default=0.12,
                        help="synthetic workload scale (1.0 = paper size)")
    parser.add_argument("--epochs", type=int, default=25)
    parser.add_argument("--records", type=int, default=350,
                        help="max records per split")
    parser.add_argument("--seed", type=int, default=0)
    _add_obs_args(parser)


def _add_engine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine",
        default="windowed",
        choices=list(ENGINES),
        help="inference engine: 'windowed' re-runs the full window every "
        "tick, 'continual' carries LSTM/GRU state across ticks (O(1) per "
        "new frame), 'gated' additionally skips recompute when features "
        "are static",
    )
    parser.add_argument(
        "--gate-delta",
        type=float,
        default=None,
        metavar="DELTA",
        help="change-gate threshold (inf-norm on standardized features) "
        "for --engine gated; default 0.05",
    )


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_shard_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--shards",
        type=_positive_int,
        default=1,
        metavar="N",
        help="partition the lanes across N worker processes (each with "
        "its own engine, CI account, and observability, merged exactly "
        "by the coordinator); 1 = single-process fleet",
    )
    parser.add_argument(
        "--partition",
        default="contiguous",
        choices=sorted(PARTITIONS),
        help="lane-to-shard assignment strategy for --shards > 1",
    )
    parser.add_argument(
        "--start-method",
        default=None,
        choices=["fork", "spawn", "forkserver"],
        help="multiprocessing start method for shard workers "
        "(default: platform default)",
    )
    parser.add_argument(
        "--supervise",
        action="store_true",
        help="run the sharded fleet under the self-healing shard "
        "supervisor (liveness FSM, checkpointed deterministic restarts, "
        "rescue/degrade escalation); implied by any --shard-fault-* flag",
    )
    parser.add_argument(
        "--shard-fault-plan",
        default=None,
        metavar="FILE",
        help="load a ShardFaultPlan from FILE (JSON) and inject its "
        "process-level faults (crash/SIGKILL/stall/slow/startup hang) "
        "into the shard workers",
    )
    parser.add_argument(
        "--shard-fault-rate",
        type=float,
        default=0.0,
        metavar="P",
        help="draw a seeded ShardFaultPlan giving each shard probability "
        "P of one process-level fault (ignored when --shard-fault-plan "
        "is given)",
    )
    parser.add_argument(
        "--shard-fault-plan-out",
        default=None,
        metavar="FILE",
        help="write the shard fault plan actually used to FILE (JSON) "
        "for replay via --shard-fault-plan",
    )
    parser.add_argument(
        "--max-restarts",
        type=int,
        default=2,
        metavar="N",
        help="supervised restart budget per shard before escalation",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=_positive_int,
        default=8,
        metavar="TICKS",
        help="supervised per-shard lane-state checkpoint cadence",
    )
    parser.add_argument(
        "--suspect-after",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="heartbeat silence before a LIVE shard turns SUSPECT",
    )
    parser.add_argument(
        "--dead-after",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="heartbeat silence before a SUSPECT shard is declared DEAD "
        "and restarted",
    )
    parser.add_argument(
        "--escalation",
        default="rescue",
        choices=["rescue", "degrade"],
        help="what to do with a shard whose restart budget is exhausted: "
        "rescue = replay its lanes in the coordinator (exact), degrade = "
        "serve them relay-all (never drops frames)",
    )
    parser.add_argument(
        "--startup-timeout",
        type=float,
        default=120.0,
        metavar="SECONDS",
        help="per-shard startup deadline (worker must say hello within "
        "this budget; unsupervised runs fail fast naming the shard, "
        "supervised runs restart it)",
    )


def _shard_supervision(args: argparse.Namespace):
    """Resolve the shard fault plan and supervisor config from CLI flags.

    Returns ``(supervisor, plan)``; any ``--shard-fault-*`` flag implies
    supervision (an unsupervised coordinator would just surface the
    injected crash as a run failure).
    """
    plan = None
    if args.shard_fault_plan is not None:
        with open(args.shard_fault_plan, "r", encoding="utf-8") as handle:
            plan = ShardFaultPlan.from_json(handle.read())
    elif args.shard_fault_rate > 0:
        plan = ShardFaultPlan.seeded(
            args.shards, rate=args.shard_fault_rate, seed=args.seed
        )
    if args.shard_fault_plan_out is not None and plan is not None:
        with open(args.shard_fault_plan_out, "w", encoding="utf-8") as handle:
            handle.write(plan.to_json())
    supervisor = None
    if args.supervise or plan is not None:
        supervisor = SupervisorConfig(
            suspect_after=args.suspect_after,
            dead_after=args.dead_after,
            startup_deadline=args.startup_timeout,
            max_restarts=args.max_restarts,
            escalation=args.escalation,
            checkpoint_every=args.checkpoint_every,
        )
    return supervisor, plan


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--log-level",
        default=None,
        choices=sorted(obs.LEVELS),
        help="structured-log threshold (JSON lines on stderr)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="stream span records to FILE as JSON lines "
        "(implies instrumentation on)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="dump the metrics registry to FILE (JSON) on shutdown — "
        "flushed even if the run dies (implies instrumentation on)",
    )


def _settings(args: argparse.Namespace) -> ExperimentSettings:
    return ExperimentSettings(
        scale=args.scale,
        epochs=args.epochs,
        max_records=args.records,
        seed=args.seed,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EventHit reproduction: regenerate the paper's tables "
        "and figures or evaluate individual algorithms.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tasks", help="print Table II (tasks TA1-TA16)")

    table1 = sub.add_parser("table1", help="print Table I dataset statistics")
    table1.add_argument("--scale", type=float, default=1.0)
    table1.add_argument("--seed", type=int, default=0)

    for name, default_task, description in (
        ("fig4", "TA1", "REC-SPL curves of all algorithms on one task"),
        ("fig5", "TA10", "C-CLASSIFY study: REC/SPL/REC_c vs c"),
        ("fig6", "TA10", "C-REGRESS study: REC/SPL/REC_r vs alpha"),
        ("fig8", "TA1", "monetary cost case study"),
        ("fig9", "TA10", "REC vs FPS for EHCR/COX/VQS"),
        ("fig10", "TA10", "pipeline stage-time breakdown"),
    ):
        cmd = sub.add_parser(name, help=description)
        _add_experiment_args(cmd, default_task)
        if name == "fig10":
            cmd.add_argument("--rec-target", type=float, default=0.9)

    for name, description in (
        ("evaluate", "evaluate one algorithm at one knob setting"),
        (
            "metrics",
            "run one instrumented evaluation and render the metrics "
            "registry and per-stage time shares",
        ),
    ):
        cmd = sub.add_parser(name, help=description)
        _add_experiment_args(cmd, "TA10")
        cmd.add_argument(
            "--algorithm",
            default="EHCR",
            choices=["EHO", "EHC", "EHR", "EHCR", "OPT", "BF", "COX", "VQS",
                     "APP-VAE"],
        )
        cmd.add_argument("--confidence", type=float, default=None,
                         help="C-CLASSIFY confidence c (EHC/EHCR)")
        cmd.add_argument("--alpha", type=float, default=None,
                         help="C-REGRESS coverage alpha (EHR/EHCR)")
        cmd.add_argument("--tau", type=float, default=None,
                         help="threshold for COX/VQS")
        if name == "metrics":
            cmd.add_argument(
                "--json-out",
                default=None,
                metavar="FILE",
                help="also dump the registry snapshot as JSON to FILE",
            )
            cmd.add_argument(
                "--from",
                dest="from_file",
                default=None,
                metavar="FILE",
                help="render a previously saved --json-out snapshot "
                "instead of running an evaluation",
            )
            cmd.add_argument(
                "--prom-out",
                default=None,
                metavar="FILE",
                help="also write the registry in Prometheus "
                "text-exposition format to FILE",
            )

    chaos = sub.add_parser(
        "chaos",
        help="fault-injection sweep: recall/cost/retry overhead of the "
        "marshalling deployment under an unreliable CI",
    )
    _add_experiment_args(chaos, "TA10")
    chaos.add_argument(
        "--fault-rates",
        default="0,0.05,0.1,0.2,0.4",
        help="comma-separated raising-fault rates to sweep",
    )
    chaos.add_argument(
        "--max-attempts",
        default="1,3,6",
        help="comma-separated retry attempt caps (one policy per value)",
    )
    chaos.add_argument(
        "--failure-policy",
        default="defer",
        choices=["raise", "skip", "defer"],
        help="what the marshaller does when retries are exhausted",
    )
    chaos.add_argument(
        "--fault-plan",
        default=None,
        metavar="FILE",
        help="load the base FaultPlan from FILE (JSON); its raising-fault "
        "rates are rescaled to each swept rate",
    )
    chaos.add_argument(
        "--fault-plan-out",
        default=None,
        metavar="FILE",
        help="write the resolved base FaultPlan to FILE (JSON) for reuse "
        "via --fault-plan",
    )
    chaos.add_argument("--breaker-threshold", type=int, default=5,
                       help="consecutive failures before the circuit opens")
    chaos.add_argument("--breaker-recovery", type=float, default=30.0,
                       help="simulated seconds the circuit stays open")
    chaos.add_argument("--max-horizons", type=int, default=None,
                       help="cap the marshalled horizons per cell")
    chaos.add_argument(
        "--ingest",
        action="store_true",
        help="sweep ingest faults (corrupted camera feeds + StreamGuard) "
        "instead of CI faults",
    )
    chaos.add_argument(
        "--ingest-fault-rates",
        default="0,0.05,0.1,0.2",
        help="comma-separated total ingest fault rates to sweep "
        "(with --ingest)",
    )
    chaos.add_argument(
        "--imputation",
        default=",".join(("none", "hold-last", "zero-fill", "linear-interp")),
        help="comma-separated guard policies per rate: 'none' (unguarded "
        "baseline) and/or imputation policies (with --ingest)",
    )
    chaos.add_argument(
        "--quarantine-policy",
        default="relay-all",
        choices=["relay-all", "skip"],
        help="fallback for quarantined horizons (with --ingest)",
    )
    chaos.add_argument(
        "--ingest-fault-plan",
        default=None,
        metavar="FILE",
        help="load the base IngestFaultPlan from FILE (JSON); its rates "
        "are rescaled to each swept rate (with --ingest)",
    )
    chaos.add_argument(
        "--ingest-fault-plan-out",
        default=None,
        metavar="FILE",
        help="write the resolved base IngestFaultPlan to FILE (JSON) for "
        "reuse via --ingest-fault-plan",
    )

    lifecycle = sub.add_parser(
        "lifecycle",
        help="model-lifecycle chaos sweep: drift-triggered retraining, "
        "canary gating, and crash-safe hot-swap under injected torn "
        "checkpoint writes, corrupt manifests, retrain blow-ups, and "
        "flaky canaries",
    )
    _add_experiment_args(lifecycle, "TA10")
    lifecycle.add_argument(
        "--lifecycle-fault-rates",
        default="0,0.5,1,2",
        help="comma-separated total lifecycle fault rates to sweep "
        "(spread uniformly over the four hazard hooks)",
    )
    lifecycle.add_argument(
        "--audit-rate",
        type=float,
        default=1.0,
        help="probability each decided horizon is audited",
    )
    lifecycle.add_argument(
        "--retrain-every",
        type=int,
        default=12,
        metavar="N",
        help="scheduled retraining: attempt a retrain every N audits "
        "(keeps the sweep deterministic even without drift signals)",
    )
    lifecycle.add_argument("--max-horizons", type=int, default=25,
                           help="horizons marshalled per cell")
    lifecycle.add_argument(
        "--lifecycle-fault-plan",
        default=None,
        metavar="FILE",
        help="JSON LifecycleFaultPlan to use as the base plan; its rates "
        "are rescaled to each swept rate",
    )
    lifecycle.add_argument(
        "--lifecycle-fault-plan-out",
        default=None,
        metavar="FILE",
        help="write the resolved base LifecycleFaultPlan to FILE (JSON) "
        "for reuse via --lifecycle-fault-plan",
    )

    fleet = sub.add_parser(
        "fleet",
        help="multi-stream batched marshalling over one shared CI account: "
        "run one fleet (per-stream report table) or sweep fleet sizes "
        "(throughput vs sequential serving)",
    )
    _add_experiment_args(fleet, "TA10")
    fleet.add_argument("--streams", type=int, default=4,
                       help="fleet size for a single run")
    _add_shard_args(fleet)
    fleet.add_argument(
        "--scheduler",
        default="round-robin",
        choices=sorted(SCHEDULERS),
        help="relay scheduling policy for the shared CI",
    )
    fleet.add_argument(
        "--budget-frames",
        type=int,
        default=None,
        metavar="N",
        help="global per-tick relay budget in frames (default: unlimited)",
    )
    fleet.add_argument(
        "--fleet-sizes",
        default=None,
        metavar="N1,N2,...",
        help="sweep mode: comma-separated fleet sizes; prints frames/s for "
        "batched-fleet vs sequential serving at each size",
    )
    fleet.add_argument("--max-horizons", type=int, default=6,
                       help="horizons marshalled per stream")
    fleet.add_argument("--confidence", type=float, default=0.9)
    fleet.add_argument("--alpha", type=float, default=0.9)
    _add_engine_args(fleet)
    fleet.add_argument(
        "--gate-deltas",
        default=None,
        metavar="D1,D2,...",
        help="gate-threshold sweep mode: serve the fleet at stride 1 "
        "through the gated engine at each threshold; prints speedup over "
        "windowed, gate hit rate, and max score drift per threshold",
    )

    watch = sub.add_parser(
        "watch",
        help="top-style live telemetry dashboard over a fleet run "
        "(optionally fault-injected): backpressure gauges, per-tick "
        "rates, SLO burn rates, flight-recorder trips",
    )
    _add_experiment_args(watch, "TA10")
    watch.add_argument("--streams", type=int, default=4)
    _add_shard_args(watch)
    watch.add_argument(
        "--scheduler",
        default="round-robin",
        choices=sorted(SCHEDULERS),
    )
    watch.add_argument("--budget-frames", type=int, default=None, metavar="N",
                       help="global per-tick relay budget in frames")
    watch.add_argument("--max-horizons", type=int, default=12,
                       help="horizons marshalled per stream")
    watch.add_argument("--confidence", type=float, default=0.9)
    watch.add_argument("--alpha", type=float, default=0.9)
    _add_engine_args(watch)
    watch.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="CI raising-fault rate; >0 wraps the service in a fault "
        "injector + resilient client (chaos mode)",
    )
    watch.add_argument(
        "--failure-policy",
        default="defer",
        choices=["raise", "skip", "defer"],
        help="marshaller fallback once retries are exhausted (chaos mode)",
    )
    watch.add_argument("--refresh-ticks", type=int, default=1, metavar="N",
                       help="redraw the dashboard every N ticks")
    watch.add_argument(
        "--plain",
        action="store_true",
        help="no ANSI colour/clear codes: append one frame per redraw "
        "(for logs, CI artifacts, and tests)",
    )
    watch.add_argument(
        "--slo-spec",
        default=None,
        metavar="FILE",
        help="JSON list of SLOSpec objects (default: built-in fleet SLOs)",
    )
    watch.add_argument("--history", type=int, default=240, metavar="TICKS",
                       help="time-series ring capacity")
    watch.add_argument("--timeseries-out", default=None, metavar="FILE",
                       help="dump the sampled time series as JSON")
    watch.add_argument("--flight-out", default=None, metavar="FILE",
                       help="dump the flight recorder as JSON")

    slo = sub.add_parser(
        "slo",
        help="evaluate SLO specs offline against a time-series dump "
        "(watch --timeseries-out) or a metrics snapshot "
        "(--metrics-out / metrics --json-out)",
    )
    slo.add_argument("--from", dest="from_file", required=True,
                     metavar="FILE", help="telemetry dump to evaluate")
    slo.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help="JSON list of SLOSpec objects (default: built-in fleet SLOs)",
    )
    slo.add_argument("--json-out", default=None, metavar="FILE",
                     help="also write timeline + final states as JSON")
    return parser


def _run_figure(args: argparse.Namespace, out) -> None:
    settings = _settings(args)
    experiment = run_experiment(args.task, settings=settings)
    if args.command == "fig4":
        rows = fig4_rec_spl(args.task, experiment=experiment)
        print(format_table(rows), file=out)
        print(file=out)
        print(summarize_frontier(rows), file=out)
    elif args.command == "fig5":
        print(format_table(fig5_cclassify(args.task, experiment=experiment)), file=out)
    elif args.command == "fig6":
        print(format_table(fig6_cregress(args.task, experiment=experiment)), file=out)
    elif args.command == "fig8":
        print(format_table(fig8_cost(args.task, experiment=experiment)), file=out)
    elif args.command == "fig9":
        print(format_table(fig9_fps(args.task, experiment=experiment)), file=out)
    elif args.command == "fig10":
        props = fig10_stage_breakdown(
            args.task, rec_target=args.rec_target, experiment=experiment
        )
        for key in sorted(props):
            print(f"{key}: {props[key]:.4f}", file=out)


def _knobs(args: argparse.Namespace) -> dict:
    knobs = {}
    if args.confidence is not None:
        knobs["confidence"] = args.confidence
    if args.alpha is not None:
        knobs["alpha"] = args.alpha
    if args.tau is not None:
        knobs["tau"] = args.tau
    return knobs


def _run_evaluate(args: argparse.Namespace, out) -> None:
    experiment = run_experiment(args.task, settings=_settings(args))
    summary = experiment.evaluate(args.algorithm, **_knobs(args))
    for key, value in summary.as_dict().items():
        print(f"{key}: {value}", file=out)


def _run_metrics(args: argparse.Namespace, out) -> None:
    """Instrumented evaluation + registry/stage-share rendering."""
    if args.from_file is not None:
        snapshot = obs.read_metrics_json(args.from_file)
    else:
        obs.configure(enabled=True)
        obs.get_registry().reset()  # fresh books for this run
        experiment = run_experiment(args.task, settings=_settings(args))
        experiment.evaluate(args.algorithm, **_knobs(args))
        snapshot = obs.get_registry().snapshot()
        if args.json_out is not None:
            obs.write_metrics_json(args.json_out)
    if args.prom_out is not None:
        with open(args.prom_out, "w", encoding="utf-8") as handle:
            handle.write(obs.render_prometheus(snapshot=snapshot))
    print(obs.render_registry(snapshot=snapshot), file=out)
    print(file=out)
    print("== stage time shares (analytic timing model) ==", file=out)
    print(obs.render_stage_shares(snapshot=snapshot), file=out)
    totals = obs.get_tracer().stage_totals()
    if totals:
        print(file=out)
        print("== span wall-clock totals ==", file=out)
        print(obs.render_trace_totals(), file=out)


def _parse_float_list(text: str) -> List[float]:
    return [float(item) for item in text.split(",") if item.strip()]


def _run_ingest_chaos(args: argparse.Namespace, out) -> None:
    """Ingest-fault × guard-policy sweep over one task's deployment."""
    if args.ingest_fault_plan is not None:
        with open(args.ingest_fault_plan, "r", encoding="utf-8") as handle:
            base_plan = IngestFaultPlan.from_json(handle.read())
    else:
        base_plan = IngestFaultPlan(seed=args.seed)
    if args.ingest_fault_plan_out is not None:
        with open(args.ingest_fault_plan_out, "w", encoding="utf-8") as handle:
            handle.write(base_plan.to_json() + "\n")
    rates = _parse_float_list(args.ingest_fault_rates)
    imputations = [item.strip() for item in args.imputation.split(",") if item.strip()]
    rows = ingest_chaos_experiment(
        args.task,
        fault_rates=rates,
        imputations=imputations,
        settings=_settings(args),
        base_plan=base_plan,
        quarantine_policy=args.quarantine_policy,
        seed=args.seed,
        max_horizons=args.max_horizons,
    )
    print(format_table(rows), file=out)


def _run_chaos(args: argparse.Namespace, out) -> None:
    """Fault-rate × retry-policy sweep over one task's deployment."""
    if args.ingest:
        _run_ingest_chaos(args, out)
        return
    if args.fault_plan is not None:
        with open(args.fault_plan, "r", encoding="utf-8") as handle:
            base_plan = FaultPlan.from_json(handle.read())
    else:
        base_plan = FaultPlan(seed=args.seed)
    if args.fault_plan_out is not None:
        with open(args.fault_plan_out, "w", encoding="utf-8") as handle:
            handle.write(base_plan.to_json() + "\n")
    rates = _parse_float_list(args.fault_rates)
    policies = [
        RetryPolicy(max_attempts=int(value), seed=args.seed)
        for value in _parse_float_list(args.max_attempts)
    ]
    breaker = BreakerConfig(
        failure_threshold=args.breaker_threshold,
        recovery_seconds=args.breaker_recovery,
    )
    rows = chaos_experiment(
        args.task,
        fault_rates=rates,
        policies=policies,
        settings=_settings(args),
        base_plan=base_plan,
        breaker=breaker,
        failure_policy=args.failure_policy,
        seed=args.seed,
        max_horizons=args.max_horizons,
    )
    print(format_table(rows), file=out)


def _run_lifecycle(args: argparse.Namespace, out) -> None:
    """Lifecycle fault sweep: retrain/publish/canary/swap under chaos."""
    if args.lifecycle_fault_plan is not None:
        with open(args.lifecycle_fault_plan, "r", encoding="utf-8") as handle:
            base_plan = LifecycleFaultPlan.from_json(handle.read())
    else:
        base_plan = LifecycleFaultPlan(seed=args.seed)
    if args.lifecycle_fault_plan_out is not None:
        with open(args.lifecycle_fault_plan_out, "w", encoding="utf-8") as handle:
            handle.write(base_plan.to_json() + "\n")
    rows = lifecycle_chaos_experiment(
        args.task,
        fault_rates=_parse_float_list(args.lifecycle_fault_rates),
        settings=_settings(args),
        base_plan=base_plan,
        audit_rate=args.audit_rate,
        retrain_every_audits=args.retrain_every,
        seed=args.seed,
        max_horizons=args.max_horizons,
    )
    print(format_table(rows), file=out)


def _run_fleet(args: argparse.Namespace, out) -> None:
    """One fleet run (per-stream table) or a fleet-size throughput sweep."""
    experiment = run_experiment(args.task, settings=_settings(args))
    if args.gate_deltas is not None:
        rows = continual_gate_sweep(
            experiment,
            deltas=_parse_float_list(args.gate_deltas),
            num_streams=args.streams,
            seed=args.seed,
        )
        print(format_table(rows), file=out)
        return
    if args.fleet_sizes is not None and args.shards > 1:
        sizes = [int(value) for value in _parse_float_list(args.fleet_sizes)]
        rows = sharded_throughput_sweep(
            experiment,
            stream_counts=sizes,
            num_shards=args.shards,
            max_horizons=args.max_horizons,
            seed=args.seed,
        )
        print(format_table(rows), file=out)
        return
    if args.fleet_sizes is not None:
        sizes = [int(value) for value in _parse_float_list(args.fleet_sizes)]
        rows = fleet_throughput_sweep(
            experiment,
            fleet_sizes=sizes,
            max_horizons=args.max_horizons,
            scheduler=args.scheduler,
            tick_budget_frames=args.budget_frames,
            confidence=args.confidence,
            alpha=args.alpha,
            seed=args.seed,
        )
        print(format_table(rows), file=out)
        return
    lanes = build_fleet_lanes(experiment, args.streams, seed=args.seed)
    if args.shards > 1:
        supervisor, shard_plan = _shard_supervision(args)
        sharded = sharded_fleet_marshaller(
            experiment,
            args.shards,
            confidence=args.confidence,
            alpha=args.alpha,
            scheduler=args.scheduler,
            tick_budget_frames=args.budget_frames,
            engine=args.engine,
            gate_delta=args.gate_delta,
            partition=args.partition,
            start_method=args.start_method,
            supervisor=supervisor,
            shard_fault_plan=shard_plan,
            startup_timeout=args.startup_timeout,
        )
        report = sharded.run(lanes, max_horizons=args.max_horizons)
    else:
        fleet = fleet_marshaller(
            experiment,
            confidence=args.confidence,
            alpha=args.alpha,
            scheduler=args.scheduler,
            tick_budget_frames=args.budget_frames,
            engine=args.engine,
            gate_delta=args.gate_delta,
        )
        service = FleetCIService([lane.stream for lane in lanes])
        report = fleet.run(lanes, service, max_horizons=args.max_horizons)
    rows = []
    for name, stream_report in report.per_stream.items():
        row = {"stream": name}
        row.update(
            (key, stream_report.to_dict()[key])
            for key in (
                "horizons_evaluated",
                "frames_relayed",
                "total_cost",
                "frame_recall",
                "relay_fraction",
            )
        )
        rows.append(row)
    print(format_table(rows), file=out)
    print(file=out)
    summary = report.to_dict()
    for key in (
        "num_streams",
        "scheduler",
        "ticks",
        "max_batch_size",
        "relays_flushed",
        "relays_postponed",
        "shared_cost",
        "attributed_cost",
    ):
        print(f"{key}: {summary[key]}", file=out)
    if args.shards > 1:
        print(f"num_shards: {report.num_shards}", file=out)
        print(f"shard_ticks: {report.shard_ticks}", file=out)
        print(
            f"critical_path_s: {report.critical_path_seconds:.4f}", file=out
        )
        print(
            f"ledger_frames: {report.ledger.frames_processed} "
            f"ledger_requests: {report.ledger.requests}",
            file=out,
        )
        _print_supervision(report, out)


def _print_supervision(report, out) -> None:
    """Render the supervisor's post-run summary (supervised runs only)."""
    supervision = getattr(report, "supervision", None)
    if not supervision:
        return
    print(file=out)
    print("== supervision ==", file=out)
    liveness = supervision["liveness"]
    print(
        "liveness: "
        + " ".join(f"shard{idx}={state}" for idx, state in liveness.items()),
        file=out,
    )
    print(f"restarts: {supervision['restarts']}", file=out)
    print(f"checkpoints: {supervision['checkpoints_taken']}", file=out)
    print(
        f"replay_divergences: {supervision['replay_divergences']}", file=out
    )
    if supervision.get("rescued_lanes"):
        print(f"rescued_lanes: {supervision['rescued_lanes']}", file=out)
    if supervision.get("degraded_lanes"):
        print(f"degraded_lanes: {supervision['degraded_lanes']}", file=out)
    events = supervision.get("events", [])
    if events:
        print(f"events ({len(events)}):", file=out)
        for event in events:
            print(
                f"  shard {event['shard']} attempt {event['attempt']}: "
                f"{event['kind']}"
                + (f" ({event['detail']})" if event.get("detail") else ""),
                file=out,
            )


def _run_watch(args: argparse.Namespace, out) -> None:
    """Live telemetry dashboard over one (optionally fault-injected) fleet run."""
    obs.configure(enabled=True)
    obs.get_registry().reset()
    store = obs.TimeSeriesStore(capacity=args.history)
    obs.set_timeseries(store)
    recorder = obs.FlightRecorder()
    obs.set_flight_recorder(recorder)
    specs = (
        obs.load_slo_specs(args.slo_spec)
        if args.slo_spec is not None
        else obs.default_fleet_slos()
    )
    board = obs.set_slo_specs(specs)

    experiment = run_experiment(args.task, settings=_settings(args))
    fleet = fleet_marshaller(
        experiment,
        confidence=args.confidence,
        alpha=args.alpha,
        scheduler=args.scheduler,
        tick_budget_frames=args.budget_frames,
        engine=args.engine,
        gate_delta=args.gate_delta,
    )
    lanes = build_fleet_lanes(experiment, args.streams, seed=args.seed)
    if args.shards > 1:
        _run_watch_sharded(args, out, experiment, lanes)
        return
    service = FleetCIService([lane.stream for lane in lanes])
    failure_policy = "raise"
    if args.fault_rate > 0:
        plan = FaultPlan(seed=args.seed).with_failure_rate(args.fault_rate)
        service = ResilientCIClient(
            FaultInjector(service, plan), policy=RetryPolicy(seed=args.seed)
        )
        failure_policy = args.failure_policy

    refresh = max(1, args.refresh_ticks)
    title = f"repro watch | {args.task} | {args.streams} streams"

    def redraw(tick: int) -> None:
        if tick % refresh:
            return
        frame = obs.render_dashboard(
            store,
            board=board,
            flight=recorder,
            tick=tick,
            title=title,
            color=not args.plain,
        )
        if args.plain:
            out.write(frame + "\n\n")
        else:
            out.write("\x1b[2J\x1b[H" + frame + "\n")
        flush = getattr(out, "flush", None)
        if flush is not None:
            flush()

    report = fleet.run(
        lanes,
        service,
        max_horizons=args.max_horizons,
        failure_policy=failure_policy,
        on_tick=redraw,
    )

    # Final still frame (covers refresh strides that skipped the last tick)
    # plus the run summary and the SLO alert timeline.
    final = obs.render_dashboard(
        store,
        board=board,
        flight=recorder,
        tick=max(report.ticks - 1, 0),
        title=title + " | done",
        color=not args.plain,
    )
    if args.plain:
        out.write(final + "\n")
    else:
        out.write("\x1b[2J\x1b[H" + final + "\n")
    print(file=out)
    print("== run summary ==", file=out)
    summary = report.to_dict()
    for key in (
        "num_streams",
        "scheduler",
        "ticks",
        "relays_flushed",
        "relays_postponed",
        "shared_cost",
    ):
        print(f"{key}: {summary[key]}", file=out)
    print(f"frame_recall: {report.fleet.frame_recall:.4f}", file=out)
    print(file=out)
    print("== SLO alert timeline ==", file=out)
    timeline = board.timeline()
    if timeline:
        print(format_table(timeline), file=out)
    else:
        print("(no alerts)", file=out)
    if recorder.dumps:
        print(file=out)
        print(
            f"== flight-recorder dumps ({len(recorder.dumps)}) ==",
            file=out,
        )
        for dump in recorder.dumps:
            print(
                f"tick {dump['tick']}: {dump['reason']}"
                + (f" (lane {dump['lane']})" if dump.get("lane") else ""),
                file=out,
            )
    if args.timeseries_out is not None:
        obs.write_timeseries_json(args.timeseries_out, store=store)
    if args.flight_out is not None:
        obs.write_flight_json(args.flight_out, recorder=recorder)


def _run_watch_sharded(args: argparse.Namespace, out, experiment, lanes) -> None:
    """Sharded watch: heartbeat progress stream plus the merged post-run
    summary.

    Shard workers own their telemetry (fresh registries/recorders per
    process, merged home when the run completes), so there is no live
    fleet-wide dashboard to redraw mid-run; the coordinator streams
    per-shard heartbeat lines instead and renders the merged state —
    run summary, shed/admission transitions, flight-recorder dumps —
    once every shard reports in.
    """
    supervisor, shard_plan = _shard_supervision(args)
    sharded = sharded_fleet_marshaller(
        experiment,
        args.shards,
        confidence=args.confidence,
        alpha=args.alpha,
        scheduler=args.scheduler,
        tick_budget_frames=args.budget_frames,
        engine=args.engine,
        gate_delta=args.gate_delta,
        partition=args.partition,
        fault_rate=args.fault_rate,
        seed=args.seed,
        start_method=args.start_method,
        heartbeat_every=max(1, args.refresh_ticks),
        supervisor=supervisor,
        shard_fault_plan=shard_plan,
        startup_timeout=args.startup_timeout,
    )
    failure_policy = args.failure_policy if args.fault_rate > 0 else "raise"
    title = (
        f"repro watch | {args.task} | {args.streams} streams "
        f"| {args.shards} shards"
        + (" | supervised" if supervisor is not None else "")
    )
    print(title, file=out)
    if shard_plan is not None and shard_plan.faults:
        for fault in shard_plan.faults:
            print(
                f"[fault plan] shard {fault.shard} attempt {fault.attempt}: "
                f"{fault.kind} @ tick {fault.tick}",
                file=out,
            )

    def _flush() -> None:
        flush = getattr(out, "flush", None)
        if flush is not None:
            flush()

    def progress(shard: int, tick: int) -> None:
        print(f"[shard {shard}] tick {tick}", file=out)
        _flush()

    def liveness(shard: int, state: str, detail: str) -> None:
        print(
            f"[shard {shard}] liveness {state}"
            + (f" ({detail})" if detail else ""),
            file=out,
        )
        _flush()

    report = sharded.run(
        lanes,
        max_horizons=args.max_horizons,
        failure_policy=failure_policy,
        on_heartbeat=progress,
        on_liveness=liveness if supervisor is not None else None,
    )

    print(file=out)
    print("== run summary ==", file=out)
    summary = report.to_dict()
    for key in (
        "num_streams",
        "num_shards",
        "scheduler",
        "ticks",
        "shard_ticks",
        "heartbeats",
        "relays_flushed",
        "relays_postponed",
        "shared_cost",
        "shed_transitions",
        "readmit_transitions",
    ):
        print(f"{key}: {summary[key]}", file=out)
    print(f"frame_recall: {report.fleet.frame_recall:.4f}", file=out)
    print(
        f"ledger: frames={report.ledger.frames_processed} "
        f"requests={report.ledger.requests} "
        f"cost={report.ledger.total_cost:.4f}",
        file=out,
    )
    _print_supervision(report, out)
    recorder = obs.get_flight_recorder()
    if recorder.dumps:
        print(file=out)
        print(
            f"== flight-recorder dumps ({len(recorder.dumps)}) ==",
            file=out,
        )
        for dump in recorder.dumps:
            shard = dump.get("shard")
            print(
                f"tick {dump['tick']}: {dump['reason']}"
                + (f" (lane {dump['lane']})" if dump.get("lane") else "")
                + (f" [shard {shard}]" if shard is not None else ""),
                file=out,
            )
    if args.timeseries_out is not None:
        print(file=out)
        print(
            "note: --timeseries-out is per-process state and is not "
            "merged across shards; rerun with --shards 1 to sample it",
            file=out,
        )
    if args.flight_out is not None:
        obs.write_flight_json(args.flight_out, recorder=recorder)


def _slo_snapshot_value(snapshot: dict, series: str) -> float:
    """Resolve a time-series name against a registry snapshot.

    Gauges and counters match by name; ``name.p99``-style series resolve
    into the histogram summary.  Unknown series come back as NaN (= no
    data), matching the tracker's no-data semantics.
    """
    if series in snapshot.get("gauges", {}):
        return float(snapshot["gauges"][series]["value"])
    if series in snapshot.get("counters", {}):
        return float(snapshot["counters"][series])
    base, _, stat = series.rpartition(".")
    hist = snapshot.get("histograms", {}).get(base)
    if hist is not None and stat in hist:
        return float(hist[stat])
    return float("nan")


def _run_slo(args: argparse.Namespace, out) -> None:
    """Evaluate SLO specs offline against a telemetry dump."""
    specs = (
        obs.load_slo_specs(args.spec)
        if args.spec is not None
        else obs.default_fleet_slos()
    )
    with open(args.from_file, "r", encoding="utf-8") as handle:
        data = json.load(handle)

    if isinstance(data, dict) and "series" in data:
        # Full time-series dump: replay the burn-rate FSM tick by tick.
        store = obs.TimeSeriesStore.from_dict(data)
        board = obs.evaluate_slos(specs, store)
        print("== SLO alert timeline ==", file=out)
        timeline = board.timeline()
        if timeline:
            print(format_table(timeline), file=out)
        else:
            print("(no alerts)", file=out)
        print(file=out)
        print("== final states ==", file=out)
        print(format_table(board.summaries()), file=out)
        payload = {
            "timeline": timeline,
            "states": board.states(),
            "worst_state": board.worst_state,
        }
        violated = board.worst_state == "page"
    else:
        # Metrics snapshot: one point-in-time check per spec.
        rows = []
        for spec in specs:
            value = _slo_snapshot_value(data, spec.series)
            rows.append(
                {
                    "slo": spec.name,
                    "series": spec.series,
                    "objective": spec.objective,
                    "target": spec.target,
                    "value": value,
                    "status": "violated" if spec.violated(value) else "ok",
                }
            )
        print("== SLO point check (metrics snapshot) ==", file=out)
        print(format_table(rows), file=out)
        payload = {"checks": rows}
        violated = any(row["status"] == "violated" for row in rows)
    if args.json_out is not None:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    print(file=out)
    print(f"result: {'VIOLATED' if violated else 'OK'}", file=out)


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code.

    Observability flags are applied before the command runs; any failure
    inside a command is logged as a structured ``cli.error`` event and
    surfaces as exit code 1 (argparse's own ``SystemExit`` codes pass
    through untouched).
    """
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    owns_output = (
        getattr(args, "trace_out", None) is not None
        or getattr(args, "metrics_out", None) is not None
    )
    try:
        obs.configure(
            log_level=getattr(args, "log_level", None),
            trace_out=getattr(args, "trace_out", None),
            metrics_out=getattr(args, "metrics_out", None),
        )
        if args.command == "tasks":
            print(format_table(table2_rows()), file=out)
        elif args.command == "table1":
            print(
                format_table(table1_rows(scale=args.scale, seed=args.seed)),
                file=out,
            )
        elif args.command in {"fig4", "fig5", "fig6", "fig8", "fig9", "fig10"}:
            _run_figure(args, out)
        elif args.command == "evaluate":
            _run_evaluate(args, out)
        elif args.command == "metrics":
            _run_metrics(args, out)
        elif args.command == "chaos":
            _run_chaos(args, out)
        elif args.command == "lifecycle":
            _run_lifecycle(args, out)
        elif args.command == "fleet":
            _run_fleet(args, out)
        elif args.command == "watch":
            _run_watch(args, out)
        elif args.command == "slo":
            _run_slo(args, out)
        else:  # pragma: no cover - argparse enforces choices
            raise SystemExit(f"unknown command {args.command!r}")
    except Exception as exc:
        obs.log_error(
            "cli.error",
            command=args.command,
            error=repr(exc),
            error_type=type(exc).__name__,
        )
        return 1
    finally:
        if owns_output:
            obs.shutdown()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
