"""Shared conformal-prediction machinery (paper §IV.A / §V.A).

Conformal prediction turns any model's scores into predictions with
marginal probabilistic guarantees, using only exchangeability of a
calibration set with the test point:

* classification: a *nonconformity measure* ranks how dissimilar a new
  example is from calibrated positives; the p-value is the fraction of
  calibration positives at least as nonconforming (Theorem 4.1);
* regression: the α-quantile of absolute calibration residuals gives a
  prediction band with coverage ≥ α (split conformal, Theorem 5.1).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = [
    "nonconformity_from_score",
    "margin_nonconformity",
    "conformal_p_values",
    "residual_quantile",
]


def nonconformity_from_score(scores: np.ndarray) -> np.ndarray:
    """The paper's measure: a = 1 − b (low score ⇒ high nonconformity)."""
    scores = np.asarray(scores, dtype=float)
    if np.any((scores < 0) | (scores > 1)):
        raise ValueError("scores must lie in [0, 1]")
    return 1.0 - scores


def margin_nonconformity(scores: np.ndarray) -> np.ndarray:
    """Alternative measure: (1−b) − b, the margin toward the negative class.

    Theorem 4.1 holds for any measure; this one is used by the
    nonconformity ablation benchmark.  It is a monotone transform of
    ``1 − b``, so validity is identical while efficiency may differ once
    measures are no longer comparable monotonically (e.g. per-class
    scaling); we include it to demonstrate measure-independence.
    """
    scores = np.asarray(scores, dtype=float)
    if np.any((scores < 0) | (scores > 1)):
        raise ValueError("scores must lie in [0, 1]")
    return (1.0 - scores) - scores


def conformal_p_values(
    test_nonconformity: np.ndarray, calibration_nonconformity: np.ndarray
) -> np.ndarray:
    """p_o = |{i : a_o ≤ a_i}| / (|Δ_c| + 1)  (paper §IV.A, Algorithm 1).

    Parameters
    ----------
    test_nonconformity:
        (B,) nonconformity scores of the new examples.
    calibration_nonconformity:
        (C,) nonconformity scores of the calibration positives.

    Returns
    -------
    (B,) p-values in [0, 1).  A small p-value means "being positive here is
    very nonconforming with past positive experience".
    """
    test = np.atleast_1d(np.asarray(test_nonconformity, dtype=float))
    calib = np.asarray(calibration_nonconformity, dtype=float)
    if calib.ndim != 1:
        raise ValueError("calibration scores must be 1-D")
    # Count calibration points with a_i >= a_o, vectorised via sorting.
    sorted_calib = np.sort(calib)
    # index of first element >= a_o  →  count = C - index
    idx = np.searchsorted(sorted_calib, test, side="left")
    counts = calib.size - idx
    return counts / (calib.size + 1.0)


def residual_quantile(residuals: Sequence[float], alpha: float) -> float:
    """The ⌈α·n⌉-th smallest residual (paper §V.A / Algorithm 2, lines 13–16).

    Defined for non-empty residual lists; α ∈ (0, 1].  With n residuals the
    returned value is residual_(⌈α·n⌉) in sorted order (1-indexed).
    """
    residuals = np.asarray(list(residuals), dtype=float)
    if residuals.size == 0:
        raise ValueError("residuals must be non-empty")
    if not 0.0 < alpha <= 1.0:
        raise ValueError("alpha must be in (0, 1]")
    if np.any(residuals < 0):
        raise ValueError("residuals must be non-negative")
    ordered = np.sort(residuals)
    rank = int(np.ceil(alpha * residuals.size))
    rank = min(max(rank, 1), residuals.size)
    return float(ordered[rank - 1])
