"""Online conformal calibration over sliding windows.

The batch calibrators of :mod:`repro.conformal` fix their calibration sets
once; under gradual drift the exchangeability premise erodes.  These
online variants maintain a *sliding window* of the most recent labelled
observations (from audit feedback), so the guarantee tracks the recent
past instead of the training epoch.  They expose the same ``p_values`` /
``predict`` / ``quantiles`` surface as their batch counterparts and can be
dropped into the marshaller or the adaptive loop.

The sliding window trades a little validity for adaptivity: strictly,
Theorem 4.1 applies to the window's draw; with slowly drifting data the
window is locally exchangeable and the guarantee degrades gracefully
(quantified in the drift benchmarks).
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import Callable, Deque, List, Optional

import numpy as np

from ..core.model import EventHit, EventHitOutput
from ..core.inference import PredictionBatch, extract_intervals
from ..data.records import RecordSet
from .base import conformal_p_values, nonconformity_from_score, residual_quantile

__all__ = ["SlidingScoreWindow", "OnlineConformalClassifier", "OnlineConformalRegressor"]


class SlidingScoreWindow:
    """A bounded FIFO of scores with an always-sorted view.

    Insertion and eviction are O(log n + n) via ``bisect`` on a sorted
    list — plenty for calibration windows of a few thousand entries.
    """

    def __init__(self, maxlen: int):
        if maxlen <= 0:
            raise ValueError("maxlen must be positive")
        self.maxlen = maxlen
        self._fifo: Deque[float] = deque()
        self._sorted: List[float] = []

    def __len__(self) -> int:
        return len(self._fifo)

    @property
    def is_full(self) -> bool:
        return len(self._fifo) >= self.maxlen

    def push(self, value: float) -> None:
        value = float(value)
        if len(self._fifo) >= self.maxlen:
            oldest = self._fifo.popleft()
            index = bisect.bisect_left(self._sorted, oldest)
            self._sorted.pop(index)
        self._fifo.append(value)
        bisect.insort(self._sorted, value)

    def sorted_values(self) -> np.ndarray:
        return np.asarray(self._sorted, dtype=float)

    def clear(self) -> None:
        self._fifo.clear()
        self._sorted.clear()


class OnlineConformalClassifier:
    """C-CLASSIFY over a sliding window of positive nonconformity scores.

    Parameters
    ----------
    model:
        Trained EventHit supplying existence scores.
    window:
        Per-event calibration window capacity.
    nonconformity:
        Score → nonconformity map (default: the paper's a = 1 − b).
    """

    def __init__(
        self,
        model: EventHit,
        window: int = 500,
        nonconformity: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ):
        self.model = model
        self.nonconformity = nonconformity or nonconformity_from_score
        self._windows = [
            SlidingScoreWindow(window) for _ in range(model.num_events)
        ]

    # ------------------------------------------------------------------
    @property
    def is_calibrated(self) -> bool:
        return all(len(w) > 0 for w in self._windows)

    def window_sizes(self) -> List[int]:
        return [len(w) for w in self._windows]

    def warm_start(self, calibration: RecordSet) -> "OnlineConformalClassifier":
        """Seed the windows from a batch calibration set."""
        if calibration.num_events != self.model.num_events:
            raise ValueError("calibration event count mismatch")
        output = self.model.predict(calibration.covariates)
        scores = self.nonconformity(output.scores)
        for k, window in enumerate(self._windows):
            positive = calibration.labels[:, k] > 0
            for value in scores[positive, k]:
                window.push(value)
        if not self.is_calibrated:
            raise ValueError("warm start produced no positives for some event")
        return self

    # Alias so the online classifier drops into code written for the batch
    # classifier (e.g. the marshaller's constructor check).
    calibrate = warm_start

    def observe(self, event_index: int, score: float) -> None:
        """Feed the existence score of one *observed-positive* horizon."""
        if not 0 <= event_index < len(self._windows):
            raise IndexError("event index out of range")
        value = self.nonconformity(np.asarray([score]))[0]
        self._windows[event_index].push(value)

    def observe_output(self, output: EventHitOutput, labels: np.ndarray) -> None:
        """Feed a batch of labelled outputs (only positives are recorded)."""
        labels = np.asarray(labels)
        if labels.shape != output.scores.shape:
            raise ValueError("labels must match (B, K) scores")
        scores = self.nonconformity(output.scores)
        for b, k in zip(*np.nonzero(labels > 0)):
            self._windows[k].push(scores[b, k])

    # ------------------------------------------------------------------
    def p_values(self, output: EventHitOutput) -> np.ndarray:
        if not self.is_calibrated:
            raise RuntimeError("observe or warm_start before predicting")
        test = self.nonconformity(output.scores)
        columns = []
        for k, window in enumerate(self._windows):
            columns.append(conformal_p_values(test[:, k], window.sorted_values()))
        return np.stack(columns, axis=1)

    def predict(self, output: EventHitOutput, confidence: float) -> np.ndarray:
        if not 0.0 <= confidence <= 1.0:
            raise ValueError("confidence must be in [0, 1]")
        return self.p_values(output) >= (1.0 - confidence)


class OnlineConformalRegressor:
    """C-REGRESS over sliding windows of start/end residuals."""

    def __init__(self, model: EventHit, window: int = 500, tau2: float = 0.5):
        if not 0.0 <= tau2 <= 1.0:
            raise ValueError("tau2 must be in [0, 1]")
        self.model = model
        self.tau2 = tau2
        self._start_windows = [
            SlidingScoreWindow(window) for _ in range(model.num_events)
        ]
        self._end_windows = [
            SlidingScoreWindow(window) for _ in range(model.num_events)
        ]

    @property
    def is_calibrated(self) -> bool:
        return all(len(w) > 0 for w in self._start_windows) and all(
            len(w) > 0 for w in self._end_windows
        )

    def warm_start(self, calibration: RecordSet) -> "OnlineConformalRegressor":
        if calibration.num_events != self.model.num_events:
            raise ValueError("calibration event count mismatch")
        output = self.model.predict(calibration.covariates)
        starts, ends = extract_intervals(output.frame_scores, self.tau2)
        for k in range(calibration.num_events):
            positive = calibration.labels[:, k] > 0
            for s_res, e_res in zip(
                np.abs(starts[positive, k] - calibration.starts[positive, k]),
                np.abs(ends[positive, k] - calibration.ends[positive, k]),
            ):
                self._start_windows[k].push(float(s_res))
                self._end_windows[k].push(float(e_res))
        if not self.is_calibrated:
            raise ValueError("warm start produced no positives for some event")
        return self

    calibrate = warm_start

    def observe(
        self, event_index: int, start_residual: float, end_residual: float
    ) -> None:
        """Feed one observed positive's |predicted − true| residuals."""
        if not 0 <= event_index < len(self._start_windows):
            raise IndexError("event index out of range")
        if start_residual < 0 or end_residual < 0:
            raise ValueError("residuals must be non-negative")
        self._start_windows[event_index].push(start_residual)
        self._end_windows[event_index].push(end_residual)

    def quantiles(self, alpha: float) -> np.ndarray:
        if not self.is_calibrated:
            raise RuntimeError("observe or warm_start before predicting")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        out = np.zeros((len(self._start_windows), 2))
        for k in range(len(self._start_windows)):
            out[k, 0] = residual_quantile(
                self._start_windows[k].sorted_values(), alpha
            )
            out[k, 1] = residual_quantile(
                self._end_windows[k].sorted_values(), alpha
            )
        return out

    def predict(
        self, output: EventHitOutput, exists: np.ndarray, alpha: float
    ) -> PredictionBatch:
        exists = np.asarray(exists, dtype=bool)
        if exists.shape != output.scores.shape:
            raise ValueError("exists must be shaped (B, K) like the scores")
        starts, ends = extract_intervals(output.frame_scores, self.tau2)
        q = self.quantiles(alpha)
        widened_starts = np.maximum(1, starts - q[None, :, 0].astype(int))
        widened_ends = np.minimum(
            output.horizon, ends + q[None, :, 1].astype(int)
        )
        return PredictionBatch(
            exists=exists,
            starts=np.where(exists, widened_starts, 0),
            ends=np.where(exists, widened_ends, 0),
            horizon=output.horizon,
        )
