"""C-CLASSIFY — conformal event-existence prediction (paper §IV, Algorithm 1).

C-CLASSIFY replaces the τ1 threshold of Eq. 4 with probability semantics:
for each event E_k independently, compute the nonconformity of the new
covariates (a = 1 − b_k) and compare against the nonconformity of the
*positive* calibration records (those with E_k ∈ L_n).  The event is
predicted present when the resulting p-value is at least 1 − c.

Theorem 4.2: under exchangeability, P(E_k ∉ L̂ | E_k ∈ L) ≤ 1 − c — the
confidence level c lower-bounds the per-event existence recall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..core.model import EventHit, EventHitOutput
from ..data.records import RecordSet
from ..obs import span
from .base import conformal_p_values, nonconformity_from_score

__all__ = ["ConformalClassifier"]

NonconformityFn = Callable[[np.ndarray], np.ndarray]


@dataclass
class _EventCalibration:
    """Sorted nonconformity scores of one event's calibration positives."""

    nonconformity: np.ndarray
    num_positives: int


class ConformalClassifier:
    """Per-event conformal existence predictor calibrated on D_c-calib.

    Parameters
    ----------
    model:
        A trained EventHit (only its existence scores b_k are used).
    nonconformity:
        Score → nonconformity mapping; defaults to the paper's a = 1 − b.
    """

    def __init__(
        self,
        model: EventHit,
        nonconformity: Optional[NonconformityFn] = None,
    ):
        self.model = model
        self.nonconformity = nonconformity or nonconformity_from_score
        self._calibrations: Optional[List[_EventCalibration]] = None

    # ------------------------------------------------------------------
    @property
    def is_calibrated(self) -> bool:
        return self._calibrations is not None

    def calibrate(self, calibration: RecordSet) -> "ConformalClassifier":
        """Score the calibration set and store per-event positive scores.

        Mirrors Algorithm 1 lines 4–6: nonconformity is computed for every
        calibration record; the p-value denominator uses only records with
        the event present.
        """
        if calibration.num_events != self.model.num_events:
            raise ValueError(
                f"calibration has {calibration.num_events} events, model "
                f"has {self.model.num_events}"
            )
        with span("calibrate.classify", records=len(calibration)):
            output = self.model.predict(calibration.covariates)
            scores = self.nonconformity(output.scores)  # (C, K)
            calibrations: List[_EventCalibration] = []
            for k in range(calibration.num_events):
                positive = calibration.labels[:, k] > 0
                if not positive.any():
                    raise ValueError(
                        f"calibration set has no positive records for event "
                        f"index {k}; cannot calibrate"
                    )
                calibrations.append(
                    _EventCalibration(
                        nonconformity=np.sort(scores[positive, k]),
                        num_positives=int(positive.sum()),
                    )
                )
            self._calibrations = calibrations
        return self

    # ------------------------------------------------------------------
    def p_values(self, output: EventHitOutput) -> np.ndarray:
        """(B, K) conformal p-values for a batch of EventHit outputs."""
        if self._calibrations is None:
            raise RuntimeError("call calibrate() before predicting")
        test_scores = self.nonconformity(output.scores)
        columns = []
        for k, calib in enumerate(self._calibrations):
            columns.append(
                conformal_p_values(test_scores[:, k], calib.nonconformity)
            )
        return np.stack(columns, axis=1)

    def predict(self, output: EventHitOutput, confidence: float) -> np.ndarray:
        """Eq. 9: L̂ = {E_k : p_k ≥ 1 − c}.  Returns a (B, K) bool array."""
        if not 0.0 <= confidence <= 1.0:
            raise ValueError("confidence must be in [0, 1]")
        return self.p_values(output) >= (1.0 - confidence)

    def predict_from_covariates(
        self, covariates: np.ndarray, confidence: float
    ) -> np.ndarray:
        """Convenience: run the model then :meth:`predict`."""
        return self.predict(self.model.predict(covariates), confidence)
