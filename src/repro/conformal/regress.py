"""C-REGRESS — conformal occurrence-interval prediction (paper §V, Alg. 2).

For each event E_k, evaluate EventHit on the calibration records where the
event occurs, compute the absolute residuals of the predicted start and end
offsets against ground truth, and take their α-quantiles q̂ˢ_k and q̂ᵉ_k.
At prediction time the estimated interval [T̂ˢ, T̂ᵉ] is widened to
[max(1, T̂ˢ − q̂ˢ), min(H, T̂ᵉ + q̂ᵉ)].

Theorem 5.2: under exchangeability the true start/end offsets fall inside
±q̂ of the estimates with probability ≥ α, so larger α trades extra relayed
frames (SPL) for recall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.inference import PredictionBatch, extract_intervals
from ..core.model import EventHit, EventHitOutput
from ..data.records import RecordSet
from ..obs import span
from .base import residual_quantile

__all__ = ["ConformalRegressor"]


@dataclass
class _EventResiduals:
    """Sorted start/end residuals of one event's calibration positives."""

    start_residuals: np.ndarray
    end_residuals: np.ndarray


class ConformalRegressor:
    """Per-event conformal interval widener calibrated on D_r-calib.

    Parameters
    ----------
    model:
        A trained EventHit.
    tau2:
        Threshold used to extract raw intervals from θ scores (Eq. 5);
        the paper's EHR/EHCR variants keep τ2 = 0.5.
    """

    def __init__(self, model: EventHit, tau2: float = 0.5):
        if not 0.0 <= tau2 <= 1.0:
            raise ValueError("tau2 must be in [0, 1]")
        self.model = model
        self.tau2 = tau2
        self._residuals: Optional[List[_EventResiduals]] = None

    @property
    def is_calibrated(self) -> bool:
        return self._residuals is not None

    # ------------------------------------------------------------------
    def calibrate(self, calibration: RecordSet) -> "ConformalRegressor":
        """Algorithm 2 lines 5–12: collect per-event start/end residuals."""
        if calibration.num_events != self.model.num_events:
            raise ValueError(
                f"calibration has {calibration.num_events} events, model "
                f"has {self.model.num_events}"
            )
        with span("calibrate.regress", records=len(calibration)):
            output = self.model.predict(calibration.covariates)
            pred_starts, pred_ends = extract_intervals(
                output.frame_scores, self.tau2
            )
            residuals: List[_EventResiduals] = []
            for k in range(calibration.num_events):
                positive = calibration.labels[:, k] > 0
                if not positive.any():
                    raise ValueError(
                        f"calibration set has no positive records for event "
                        f"index {k}; cannot calibrate"
                    )
                start_res = np.abs(
                    pred_starts[positive, k] - calibration.starts[positive, k]
                )
                end_res = np.abs(
                    pred_ends[positive, k] - calibration.ends[positive, k]
                )
                residuals.append(
                    _EventResiduals(
                        start_residuals=np.sort(start_res.astype(float)),
                        end_residuals=np.sort(end_res.astype(float)),
                    )
                )
            self._residuals = residuals
        return self

    # ------------------------------------------------------------------
    def quantiles(self, alpha: float) -> np.ndarray:
        """(K, 2) array of (q̂ˢ_k, q̂ᵉ_k) at coverage level α."""
        if self._residuals is None:
            raise RuntimeError("call calibrate() before predicting")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        out = np.zeros((len(self._residuals), 2))
        for k, res in enumerate(self._residuals):
            out[k, 0] = residual_quantile(res.start_residuals, alpha)
            out[k, 1] = residual_quantile(res.end_residuals, alpha)
        return out

    def widen(self, predictions: PredictionBatch, alpha: float) -> PredictionBatch:
        """Eq. 11: widen predicted intervals by the α-quantile residuals.

        Start offsets move earlier (clamped at 1), end offsets later
        (clamped at H); events predicted absent are untouched.
        """
        q = self.quantiles(alpha)
        widened_starts = np.maximum(
            1, predictions.starts - q[None, :, 0].astype(int)
        )
        widened_ends = np.minimum(
            predictions.horizon, predictions.ends + q[None, :, 1].astype(int)
        )
        starts = np.where(predictions.exists, widened_starts, 0)
        ends = np.where(predictions.exists, widened_ends, 0)
        return predictions.with_intervals(starts, ends)

    def predict(
        self,
        output: EventHitOutput,
        exists: np.ndarray,
        alpha: float,
    ) -> PredictionBatch:
        """Full C-REGRESS pass: extract raw intervals, then widen.

        Parameters
        ----------
        output:
            EventHit outputs for the batch.
        exists:
            (B, K) bool — the estimated existence set L̂ (from Eq. 4
            thresholding or from C-CLASSIFY).
        alpha:
            Coverage level α.
        """
        exists = np.asarray(exists, dtype=bool)
        if exists.shape != output.scores.shape:
            raise ValueError("exists must be shaped (B, K) like the scores")
        starts, ends = extract_intervals(output.frame_scores, self.tau2)
        raw = PredictionBatch(
            exists=exists,
            starts=np.where(exists, starts, 0),
            ends=np.where(exists, ends, 0),
            horizon=output.horizon,
        )
        return self.widen(raw, alpha)
