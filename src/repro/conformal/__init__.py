"""Conformal prediction layer: the paper's two novel optimizations.

* :class:`ConformalClassifier` — C-CLASSIFY (§IV, Algorithm 1), tunable
  existence recall via the confidence level c.
* :class:`ConformalRegressor` — C-REGRESS (§V, Algorithm 2), tunable
  interval coverage via the level α.
"""

from .base import (
    conformal_p_values,
    margin_nonconformity,
    nonconformity_from_score,
    residual_quantile,
)
from .classify import ConformalClassifier
from .regress import ConformalRegressor
from .online import (
    OnlineConformalClassifier,
    OnlineConformalRegressor,
    SlidingScoreWindow,
)

__all__ = [
    "conformal_p_values",
    "nonconformity_from_score",
    "margin_nonconformity",
    "residual_quantile",
    "ConformalClassifier",
    "ConformalRegressor",
    "OnlineConformalClassifier",
    "OnlineConformalRegressor",
    "SlidingScoreWindow",
]
