"""Survival-analysis views of event schedules and record sets.

Bridges the video substrate and the classical estimators: inter-arrival
gaps of an event type form a (fully observed) survival sample; §II records
form a right-censored one (time-to-onset within the horizon, censored at H
when the event does not occur).  The drift tooling uses the log-rank test
over two schedule windows as an offline drift check.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..data.records import RecordSet
from ..video.events import EventSchedule, EventType
from .estimators import KaplanMeier, LogRankResult, SurvivalData, logrank_test

__all__ = [
    "gaps_as_survival",
    "records_as_survival",
    "onset_drift_test",
    "expected_time_to_onset",
]


def gaps_as_survival(
    schedule: EventSchedule,
    event_type: EventType,
    start: int = 0,
    end: Optional[int] = None,
) -> SurvivalData:
    """Inter-onset gaps of one event type within [start, end) as survival data.

    The final gap (from the last onset to the window end) is censored —
    the next event had not happened yet when observation stopped.
    """
    end = end if end is not None else schedule.length
    if not 0 <= start < end <= schedule.length:
        raise ValueError("invalid observation window")
    onsets = [
        inst.start
        for inst in schedule.instances_of(event_type)
        if start <= inst.start < end
    ]
    if len(onsets) < 2:
        raise ValueError(
            f"need >= 2 onsets of {event_type.name} in the window, "
            f"got {len(onsets)}"
        )
    gaps = np.diff(onsets).astype(float)
    tail = float(end - onsets[-1])
    times = np.concatenate([gaps, [max(tail, 1.0)]])
    events = np.concatenate([np.ones(len(gaps)), [0.0]])
    return SurvivalData(times=times, events=events)


def records_as_survival(records: RecordSet, event_index: int) -> SurvivalData:
    """§II records of one event as right-censored time-to-onset data.

    Present events contribute their start offset (the COX baseline's
    response variable); absent events are censored at the horizon.
    """
    if not 0 <= event_index < records.num_events:
        raise IndexError(f"event index {event_index} out of range")
    present = records.labels[:, event_index] > 0
    times = np.where(
        present, records.starts[:, event_index], records.horizon
    ).astype(float)
    times = np.maximum(times, 1.0)
    return SurvivalData(times=times, events=present.astype(float))


def onset_drift_test(
    schedule_a: EventSchedule,
    schedule_b: EventSchedule,
    event_type: EventType,
) -> LogRankResult:
    """Log-rank test: did the inter-arrival distribution change between two
    observation periods?  An offline complement to the online CUSUM/KS
    detectors of :mod:`repro.drift`."""
    return logrank_test(
        gaps_as_survival(schedule_a, event_type),
        gaps_as_survival(schedule_b, event_type),
    )


def expected_time_to_onset(
    records: RecordSet, event_index: int
) -> Tuple[float, KaplanMeier]:
    """Restricted mean time-to-onset within the horizon (area under Ŝ).

    Returns the restricted mean and the fitted Kaplan–Meier curve; used by
    the harness to characterise how early events announce themselves.
    """
    data = records_as_survival(records, event_index)
    km = KaplanMeier(data)
    grid = np.arange(0, records.horizon + 1, dtype=float)
    survival = km.survival(grid)
    # Trapezoid integral of the step function over [0, H].
    trapezoid = getattr(np, "trapezoid", None) or np.trapz
    restricted_mean = float(trapezoid(survival, grid))
    return restricted_mean, km
