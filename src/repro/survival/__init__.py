"""Classical survival analysis — the methodological substrate EventHit and
the COX baseline draw on: Kaplan–Meier, Nelson–Aalen, log-rank tests, and
bridges from event schedules / §II records to survival samples."""

from .estimators import (
    KaplanMeier,
    LogRankResult,
    NelsonAalen,
    SurvivalData,
    logrank_test,
)
from .analysis import (
    expected_time_to_onset,
    gaps_as_survival,
    onset_drift_test,
    records_as_survival,
)

__all__ = [
    "SurvivalData",
    "KaplanMeier",
    "NelsonAalen",
    "LogRankResult",
    "logrank_test",
    "gaps_as_survival",
    "records_as_survival",
    "onset_drift_test",
    "expected_time_to_onset",
]
