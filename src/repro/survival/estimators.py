"""Classical survival-analysis estimators (paper §VII lineage).

EventHit is "inspired by survival analysis [17], [18]" and the COX baseline
is a survival regression; this module provides the classical nonparametric
toolkit those methods rest on, implemented from scratch:

* :class:`SurvivalData` — right-censored (time, event) samples;
* :class:`KaplanMeier` — product-limit estimator of the survival function
  S(t) with Greenwood variance;
* :class:`NelsonAalen` — cumulative-hazard estimator Λ(t);
* :func:`logrank_test` — two-sample log-rank test of survival-curve
  equality.

The experiment harness uses them to characterise event inter-arrival
distributions, and the Cox baseline's Breslow step function is the
covariate-adjusted sibling of :class:`NelsonAalen`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy import stats

__all__ = [
    "SurvivalData",
    "KaplanMeier",
    "NelsonAalen",
    "LogRankResult",
    "logrank_test",
]


@dataclass(frozen=True)
class SurvivalData:
    """Right-censored survival samples.

    Attributes
    ----------
    times:
        (N,) positive observation times (event or censoring).
    events:
        (N,) indicators — 1 if the event was observed at ``times[i]``,
        0 if the observation was censored there.
    """

    times: np.ndarray
    events: np.ndarray

    def __post_init__(self) -> None:
        times = np.asarray(self.times, dtype=float)
        events = np.asarray(self.events, dtype=float)
        if times.ndim != 1 or times.size == 0:
            raise ValueError("times must be a non-empty 1-D array")
        if events.shape != times.shape:
            raise ValueError("events must match times in shape")
        if np.any(times <= 0):
            raise ValueError("times must be positive")
        if not set(np.unique(events)) <= {0.0, 1.0}:
            raise ValueError("events must be binary indicators")
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "events", events)

    def __len__(self) -> int:
        return int(self.times.size)

    @property
    def num_events(self) -> int:
        return int(self.events.sum())

    def risk_table(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(distinct event times t_i, events d_i at t_i, at-risk n_i).

        ``n_i`` counts observations with time >= t_i, the standard
        risk-set definition.
        """
        event_times = np.unique(self.times[self.events > 0])
        deaths = np.array(
            [np.sum((self.times == t) & (self.events > 0)) for t in event_times]
        )
        at_risk = np.array([np.sum(self.times >= t) for t in event_times])
        return event_times, deaths.astype(float), at_risk.astype(float)


class KaplanMeier:
    """Product-limit estimator: Ŝ(t) = Π_{t_i ≤ t} (1 − d_i/n_i)."""

    def __init__(self, data: SurvivalData):
        self.data = data
        times, deaths, at_risk = data.risk_table()
        self.event_times = times
        with np.errstate(divide="ignore", invalid="ignore"):
            factors = 1.0 - deaths / at_risk
        self.survival_steps = np.cumprod(factors)
        # Greenwood's formula for Var[ln Ŝ]; guard the d == n boundary.
        denom = at_risk * (at_risk - deaths)
        terms = np.where(denom > 0, deaths / np.maximum(denom, 1e-300), np.inf)
        self._greenwood_cumsum = np.cumsum(terms)

    def survival(self, t) -> np.ndarray:
        """Ŝ(t) evaluated at arbitrary times (right-continuous step)."""
        t = np.atleast_1d(np.asarray(t, dtype=float))
        idx = np.searchsorted(self.event_times, t, side="right")
        steps = np.concatenate([[1.0], self.survival_steps])
        return steps[idx]

    def variance(self, t) -> np.ndarray:
        """Greenwood variance estimate of Ŝ(t)."""
        t = np.atleast_1d(np.asarray(t, dtype=float))
        idx = np.searchsorted(self.event_times, t, side="right")
        cumsum = np.concatenate([[0.0], self._greenwood_cumsum])
        s = self.survival(t)
        return s**2 * cumsum[idx]

    def confidence_band(self, t, level: float = 0.95):
        """Pointwise normal-approximation band for Ŝ(t)."""
        if not 0.0 < level < 1.0:
            raise ValueError("level must be in (0, 1)")
        s = self.survival(t)
        half = stats.norm.ppf(0.5 + level / 2) * np.sqrt(self.variance(t))
        return np.clip(s - half, 0, 1), np.clip(s + half, 0, 1)

    def median_survival_time(self) -> float:
        """Smallest event time with Ŝ(t) ≤ 0.5 (inf if never reached)."""
        below = self.survival_steps <= 0.5
        if not below.any():
            return float("inf")
        return float(self.event_times[np.argmax(below)])


class NelsonAalen:
    """Cumulative-hazard estimator: Λ̂(t) = Σ_{t_i ≤ t} d_i/n_i."""

    def __init__(self, data: SurvivalData):
        self.data = data
        times, deaths, at_risk = data.risk_table()
        self.event_times = times
        self.hazard_steps = np.cumsum(deaths / at_risk)

    def cumulative_hazard(self, t) -> np.ndarray:
        t = np.atleast_1d(np.asarray(t, dtype=float))
        idx = np.searchsorted(self.event_times, t, side="right")
        steps = np.concatenate([[0.0], self.hazard_steps])
        return steps[idx]

    def survival(self, t) -> np.ndarray:
        """The Breslow-type survival transform exp(−Λ̂(t))."""
        return np.exp(-self.cumulative_hazard(t))


@dataclass(frozen=True)
class LogRankResult:
    """Outcome of a two-sample log-rank test."""

    statistic: float
    p_value: float
    observed: Tuple[float, float]
    expected: Tuple[float, float]

    @property
    def significant(self) -> bool:
        return self.p_value < 0.05


def logrank_test(group_a: SurvivalData, group_b: SurvivalData) -> LogRankResult:
    """Two-sample log-rank test of H0: identical survival functions.

    Used by the drift tooling to compare pre/post-deployment inter-arrival
    distributions: a significant statistic is independent evidence of
    occurrence-distribution drift.
    """
    times = np.concatenate([group_a.times, group_b.times])
    events = np.concatenate([group_a.events, group_b.events])
    groups = np.concatenate(
        [np.zeros(len(group_a)), np.ones(len(group_b))]
    )
    event_times = np.unique(times[events > 0])

    observed_a = 0.0
    expected_a = 0.0
    variance = 0.0
    for t in event_times:
        at_risk = times >= t
        n = at_risk.sum()
        n_a = (at_risk & (groups == 0)).sum()
        d = ((times == t) & (events > 0)).sum()
        d_a = ((times == t) & (events > 0) & (groups == 0)).sum()
        observed_a += d_a
        expected_a += d * n_a / n
        if n > 1:
            variance += d * (n_a / n) * (1 - n_a / n) * (n - d) / (n - 1)
    total_events = float(events.sum())
    observed_b = total_events - observed_a
    expected_b = total_events - expected_a
    if variance <= 0:
        return LogRankResult(0.0, 1.0, (observed_a, observed_b),
                             (expected_a, expected_b))
    statistic = (observed_a - expected_a) ** 2 / variance
    p_value = float(stats.chi2.sf(statistic, df=1))
    return LogRankResult(
        statistic=float(statistic),
        p_value=p_value,
        observed=(float(observed_a), float(observed_b)),
        expected=(float(expected_a), float(expected_b)),
    )
