"""Ingest-path fault injection and graceful degradation.

The mirror image of :mod:`repro.cloud`'s fault/resilience layer for the
*input* side of the marshalling loop: a seeded, declarative
:class:`IngestFaultPlan` corrupts feature streams the way real camera
feeds fail (drops, freezes, NaN/Inf detector output, flapping, noise
bursts, out-of-order delivery), and a :class:`StreamGuard` sanitizes the
result — validation, pluggable imputation, and a per-stream
``HEALTHY → DEGRADED → QUARANTINED → RECOVERING`` health state machine
with hysteresis — so degraded input degrades the deployment gracefully
instead of silently zeroing its recall and voiding its conformal
guarantees.
"""

from .faults import (
    INGEST_FAULT_KINDS,
    IngestFaultInjector,
    IngestFaultPlan,
    IngestFaultStats,
)
from .guard import (
    DEGRADED,
    HEALTH_STATES,
    HEALTHY,
    IMPUTATION_POLICIES,
    QUARANTINE_POLICIES,
    QUARANTINED,
    RECOVERING,
    GuardConfig,
    GuardedStream,
    StreamGuard,
)

__all__ = [
    "INGEST_FAULT_KINDS",
    "IngestFaultPlan",
    "IngestFaultStats",
    "IngestFaultInjector",
    "HEALTH_STATES",
    "HEALTHY",
    "DEGRADED",
    "QUARANTINED",
    "RECOVERING",
    "IMPUTATION_POLICIES",
    "QUARANTINE_POLICIES",
    "GuardConfig",
    "GuardedStream",
    "StreamGuard",
]
