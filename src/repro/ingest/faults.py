"""Deterministic fault injection for the ingest path.

PR 2 made the *cloud* leg of the marshalling loop unreliable on purpose
(:mod:`repro.cloud.faults`); this module does the same for the *ingest*
leg — the ``repro.video`` → ``repro.features`` → EventHit feed that the
paper's loop assumes delivers a finite, well-formed covariate vector for
every frame, on time.  Real camera feeds do not: detectors flap, frames
drop, cameras freeze, encoders emit garbage.  An
:class:`IngestFaultInjector` applies a seeded, declarative
:class:`IngestFaultPlan` to a clean
:class:`~repro.features.extractors.FeatureMatrix` and returns the
corrupted copy the downstream pipeline would actually have seen, with
exact bookkeeping in :class:`IngestFaultStats`.

Fault taxonomy (what each does to frame ``i``'s feature vector):

* **drop** — the frame never arrives: the whole vector becomes NaN.
* **flap** — the detector returned nothing for the frame (whole-vector
  dropout): also all-NaN, booked separately from drops.
* **corrupt** — ``corrupt_dims`` randomly chosen dimensions become NaN or
  ``+inf`` (a flaky detector emitting non-finite values).
* **noise** — a burst of large-amplitude Gaussian noise is *added*; the
  vector stays finite, so value sanitization cannot catch it (it must be
  absorbed by the model / flagged statistically).
* **late** — out-of-order delivery: frames ``i`` and ``i+1`` swap places
  (``i+1`` arrived before ``i``).
* **stall** — declarative freeze windows ``[start, end)`` over the frame
  index: the camera repeats its last live frame for the whole window
  (what a frozen RTSP feed looks like — finite, plausible, and stale).

Determinism contract, mirroring the cloud injector: one RNG draw per
non-stalled frame, in frame order, resolved over cumulative rates in a
fixed kind order — so (plan, feature shape) fully determines the fault
sequence, and ``reset()`` replays it.  Plans round-trip through JSON for
the ``chaos --ingest-fault-plan`` CLI flag.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Dict, List, Tuple

import numpy as np

from ..features.extractors import FeatureMatrix
from ..obs import inc, log_debug, span

__all__ = [
    "INGEST_FAULT_KINDS",
    "IngestFaultPlan",
    "IngestFaultStats",
    "IngestFaultInjector",
]

#: Fault kinds in the order the injector's single RNG draw resolves them.
INGEST_FAULT_KINDS = ("drop", "flap", "corrupt", "noise", "late")


# ----------------------------------------------------------------------
# Declarative plan
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IngestFaultPlan:
    """Declarative description of the ingest faults one injector produces.

    Rates are per-frame probabilities resolved from a single uniform
    draw, so ``drop_rate + flap_rate + corrupt_rate + noise_rate +
    late_rate`` must not exceed 1.  ``stalls`` are half-open
    ``[start, end)`` freeze windows over the frame index — the frames
    inside repeat the last pre-window frame and consume no RNG draw.
    """

    drop_rate: float = 0.0
    flap_rate: float = 0.0
    corrupt_rate: float = 0.0
    noise_rate: float = 0.0
    late_rate: float = 0.0
    corrupt_dims: int = 1
    noise_sigma: float = 5.0
    stalls: Tuple[Tuple[int, int], ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        for kind in INGEST_FAULT_KINDS:
            rate = getattr(self, f"{kind}_rate")
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{kind}_rate must be in [0, 1], got {rate}")
        if self.total_rate > 1.0 + 1e-12:
            raise ValueError("ingest fault rates must sum to at most 1")
        if self.corrupt_dims < 1:
            raise ValueError("corrupt_dims must be >= 1")
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")
        normalized = []
        for window in self.stalls:
            start, end = int(window[0]), int(window[1])
            if start < 0 or end <= start:
                raise ValueError(f"invalid stall window [{start}, {end})")
            normalized.append((start, end))
        object.__setattr__(self, "stalls", tuple(normalized))

    # ------------------------------------------------------------------
    @property
    def total_rate(self) -> float:
        """Probability a frame is faulted by the per-frame draw."""
        return sum(getattr(self, f"{kind}_rate") for kind in INGEST_FAULT_KINDS)

    @property
    def is_empty(self) -> bool:
        """True when the plan injects nothing at all."""
        return self.total_rate == 0.0 and not self.stalls

    @classmethod
    def uniform(
        cls, fault_rate: float, seed: int = 0, **overrides
    ) -> "IngestFaultPlan":
        """A plan spreading ``fault_rate`` evenly over the random kinds."""
        if not 0.0 <= fault_rate <= 1.0:
            raise ValueError("fault_rate must be in [0, 1]")
        share = fault_rate / len(INGEST_FAULT_KINDS)
        rates = {f"{kind}_rate": share for kind in INGEST_FAULT_KINDS}
        rates.update(overrides)
        return cls(seed=seed, **rates)

    def with_fault_rate(self, fault_rate: float) -> "IngestFaultPlan":
        """This plan rescaled so its random kinds sum to ``fault_rate``."""
        if not 0.0 <= fault_rate <= 1.0:
            raise ValueError("fault_rate must be in [0, 1]")
        current = self.total_rate
        if current <= 0.0:
            share = fault_rate / len(INGEST_FAULT_KINDS)
            return replace(
                self, **{f"{kind}_rate": share for kind in INGEST_FAULT_KINDS}
            )
        scale = fault_rate / current
        return replace(
            self,
            **{
                f"{kind}_rate": getattr(self, f"{kind}_rate") * scale
                for kind in INGEST_FAULT_KINDS
            },
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        out = asdict(self)
        out["stalls"] = [list(window) for window in self.stalls]
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "IngestFaultPlan":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown IngestFaultPlan fields: {sorted(unknown)}")
        kwargs = dict(data)
        if "stalls" in kwargs:
            kwargs["stalls"] = tuple(tuple(window) for window in kwargs["stalls"])
        return cls(**kwargs)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "IngestFaultPlan":
        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Bookkeeping
# ----------------------------------------------------------------------
@dataclass
class IngestFaultStats:
    """Exact books of what one injector did to one feature matrix."""

    frames: int = 0
    faults: Dict[str, int] = field(default_factory=dict)
    frames_dropped: int = 0
    frames_flapped: int = 0
    frames_corrupted: int = 0
    values_corrupted: int = 0
    noise_bursts: int = 0
    frames_late: int = 0
    frames_stalled: int = 0

    def record_fault(self, kind: str) -> None:
        self.faults[kind] = self.faults.get(kind, 0) + 1

    @property
    def frames_faulted(self) -> int:
        """Frames touched by any fault (stalls included)."""
        return sum(self.faults.values())

    def as_dict(self) -> Dict[str, object]:
        out = asdict(self)
        out["frames_faulted"] = self.frames_faulted
        return out


# ----------------------------------------------------------------------
# The injector
# ----------------------------------------------------------------------
class IngestFaultInjector:
    """Apply a seeded :class:`IngestFaultPlan` to a feature matrix.

    ``inject`` is a pure function of (plan, input shape, input values):
    calling it twice with the same inputs yields bitwise-identical
    corrupted matrices.  ``frame_kinds`` records the fault kind applied
    to each frame of the last injection (``""`` for clean frames) — test
    and harness introspection only; the :class:`~repro.ingest.guard.StreamGuard`
    never sees it and must detect trouble from the data alone.
    """

    def __init__(self, plan: IngestFaultPlan):
        self.plan = plan
        self.stats = IngestFaultStats()
        self.frame_kinds: List[str] = []
        self._rng = np.random.default_rng(plan.seed)

    def reset(self) -> None:
        """Replay the fault sequence from the seed."""
        self.stats = IngestFaultStats()
        self.frame_kinds = []
        self._rng = np.random.default_rng(self.plan.seed)

    # ------------------------------------------------------------------
    def _stalled(self, frame: int) -> bool:
        return any(start <= frame < end for start, end in self.plan.stalls)

    def inject(self, features: FeatureMatrix) -> FeatureMatrix:
        """The corrupted copy of ``features`` this plan produces.

        The input is never mutated; with an empty plan the *same object*
        is returned, so the zero-fault path costs nothing and downstream
        memoization (``CovariatePipeline._prepared``) keys stay stable.
        """
        plan = self.plan
        num_frames = features.num_frames
        self.stats = IngestFaultStats()
        self.stats.frames = num_frames
        self.frame_kinds = [""] * num_frames
        if plan.is_empty:
            return features

        with span("ingest.inject", frames=num_frames):
            values = features.values.copy()
            num_dims = features.num_channels

            # Freeze windows first: the camera repeats its last live frame
            # (frame start-1; a window opening at frame 0 repeats frame 0).
            for start, end in plan.stalls:
                if start >= num_frames:
                    continue
                stop = min(end, num_frames)
                source = max(start - 1, 0)
                values[start:stop] = values[source]
                for frame in range(start, stop):
                    self.frame_kinds[frame] = "stall"
                    self.stats.record_fault("stall")
                self.stats.frames_stalled += stop - start

            rng = self._rng
            for frame in range(num_frames):
                if self.frame_kinds[frame] == "stall":
                    continue  # frozen frames consume no RNG draw
                draw = float(rng.random())
                threshold = 0.0
                kind = None
                for candidate in INGEST_FAULT_KINDS:
                    threshold += getattr(plan, f"{candidate}_rate")
                    if draw < threshold:
                        kind = candidate
                        break
                if kind is None:
                    continue

                if kind == "drop":
                    values[frame] = np.nan
                    self.stats.frames_dropped += 1
                elif kind == "flap":
                    values[frame] = np.nan
                    self.stats.frames_flapped += 1
                elif kind == "corrupt":
                    count = min(plan.corrupt_dims, num_dims)
                    dims = rng.choice(num_dims, size=count, replace=False)
                    poison = np.where(rng.random(count) < 0.5, np.nan, np.inf)
                    values[frame, dims] = poison
                    self.stats.frames_corrupted += 1
                    self.stats.values_corrupted += count
                elif kind == "noise":
                    values[frame] += rng.normal(0.0, plan.noise_sigma, num_dims)
                    self.stats.noise_bursts += 1
                else:  # late: out-of-order delivery swaps i and i+1
                    if frame + 1 < num_frames:
                        values[[frame, frame + 1]] = values[[frame + 1, frame]]
                    else:
                        # Nothing to swap with at the stream tail: the
                        # frame simply misses its deadline and is lost.
                        values[frame] = np.nan
                    self.stats.frames_late += 1
                self.frame_kinds[frame] = kind
                self.stats.record_fault(kind)
                inc("ingest.faults.injected")
                inc(f"ingest.faults.{kind}")
                log_debug("ingest.fault", kind=kind, frame=frame)

            inc("ingest.frames_stalled", self.stats.frames_stalled)
        return FeatureMatrix(values, list(features.channel_names))
