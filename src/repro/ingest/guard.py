"""Graceful degradation between the feature pipeline and inference.

The marshalling loop assumes every frame contributes a finite,
well-formed covariate vector; one NaN from a flaky detector poisons the
whole LSTM window (every score of every horizon that window touches goes
NaN, the decision rule sees ``NaN >= τ`` = ``False``, and nothing is
relayed — a silent recall collapse).  Worse, the C-CLASSIFY / C-REGRESS
coverage guarantees are calibrated on clean, exchangeable data: any
imputed or degraded window silently voids them.

:class:`StreamGuard` makes both problems explicit.  ``sanitize`` runs a
validation pass over a :class:`~repro.features.extractors.FeatureMatrix`
— finite-check, dimension check, staleness check (a frozen camera
repeats bit-identical vectors) — applies a pluggable imputation policy
to the invalid frames, and drives a per-stream health state machine::

    HEALTHY → DEGRADED → QUARANTINED → RECOVERING → HEALTHY

with hysteresis thresholds, so momentary blips neither quarantine a
stream nor flap it in and out of service.  The marshaller consults the
resulting :class:`GuardedStream` each horizon: quarantined horizons fall
back to a conservative policy (relay everything, or skip with
accounting), and every horizon whose collection window touched an
invalid frame — or whose stream was not HEALTHY — is charged to
``guarantee_voided_frames`` in the report, marking exactly where the
conformal guarantees no longer hold.

The zero-fault path is byte-identical to running without the guard:
clean frames are never touched (``sanitize`` returns the *same* feature
object), the machine stays HEALTHY, and every new report counter stays
zero — pinned by ``tests/ingest``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..features.extractors import FeatureMatrix
from ..obs import inc, log_info, set_gauge, span

__all__ = [
    "HEALTH_STATES",
    "HEALTHY",
    "DEGRADED",
    "QUARANTINED",
    "RECOVERING",
    "IMPUTATION_POLICIES",
    "QUARANTINE_POLICIES",
    "GuardConfig",
    "GuardedStream",
    "StreamGuard",
]

#: Health states in code order (the ``GuardedStream.health`` int8 codes).
HEALTH_STATES = ("HEALTHY", "DEGRADED", "QUARANTINED", "RECOVERING")
HEALTHY, DEGRADED, QUARANTINED, RECOVERING = range(4)

#: Valid ``StreamGuard(imputation=...)`` values.
IMPUTATION_POLICIES = ("hold-last", "zero-fill", "linear-interp")

#: Valid ``StreamGuard(quarantine_policy=...)`` values.
QUARANTINE_POLICIES = ("relay-all", "skip")


@dataclass(frozen=True)
class GuardConfig:
    """Thresholds of the validation pass and the health state machine.

    ``degrade_rate`` / ``quarantine_rate`` / ``recover_rate`` are invalid
    -frame fractions over a sliding ``window``; ``recover_rate`` sits
    strictly below ``degrade_rate`` so the machine has hysteresis — a
    stream that just degraded needs to get *cleaner* than the degrade
    trigger before it is trusted again.  A gap of more than ``max_gap``
    consecutive invalid frames quarantines immediately (no imputation
    policy is trusted across a long outage), and a quarantined stream
    must survive ``recovery_frames`` consecutive valid frames in
    RECOVERING before it is HEALTHY again.
    """

    window: int = 30
    degrade_rate: float = 0.10
    quarantine_rate: float = 0.40
    recover_rate: float = 0.02
    recovery_frames: int = 15
    max_gap: int = 8
    stale_after: int = 12
    expected_dim: Optional[int] = None

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        for name in ("degrade_rate", "quarantine_rate", "recover_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if not self.recover_rate < self.degrade_rate <= self.quarantine_rate:
            raise ValueError(
                "hysteresis requires recover_rate < degrade_rate "
                "<= quarantine_rate"
            )
        if self.recovery_frames < 1:
            raise ValueError("recovery_frames must be >= 1")
        if self.max_gap < 1:
            raise ValueError("max_gap must be >= 1")
        if self.stale_after < 1:
            raise ValueError("stale_after must be >= 1")
        if self.expected_dim is not None and self.expected_dim < 1:
            raise ValueError("expected_dim must be >= 1")

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "GuardConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown GuardConfig fields: {sorted(unknown)}")
        return cls(**data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "GuardConfig":
        return cls.from_dict(json.loads(text))


class GuardedStream:
    """The outcome of one ``StreamGuard.sanitize`` pass.

    Holds the sanitized feature matrix plus per-frame verdicts: which
    frames failed validation (and why), which were imputed, the health
    state at every frame, and the transition log.  Range queries are
    prefix-sum backed so the marshaller pays O(1) per horizon.
    """

    def __init__(
        self,
        features: FeatureMatrix,
        invalid: np.ndarray,
        nonfinite: np.ndarray,
        stale: np.ndarray,
        imputed: np.ndarray,
        health: np.ndarray,
        transitions: List[Tuple[int, str, str]],
    ):
        self.features = features
        self.invalid = invalid
        self.nonfinite = nonfinite
        self.stale = stale
        self.imputed = imputed
        self.health = health
        self.transitions = transitions
        # Prefix sums: _cum_x[i] = count of x in frames [0, i).
        self._cum_invalid = np.concatenate(([0], np.cumsum(invalid)))
        self._cum_imputed = np.concatenate(([0], np.cumsum(imputed)))
        self._transition_frames = np.array(
            [frame for frame, _, _ in transitions], dtype=int
        )

    # ------------------------------------------------------------------
    @property
    def num_frames(self) -> int:
        return self.features.num_frames

    @property
    def num_invalid(self) -> int:
        return int(self._cum_invalid[-1])

    @property
    def num_imputed(self) -> int:
        return int(self._cum_imputed[-1])

    @property
    def any_invalid(self) -> bool:
        return self.num_invalid > 0

    def _clip(self, start: int, stop: int) -> Tuple[int, int]:
        return max(0, start), min(self.num_frames, stop)

    def invalid_count(self, start: int, stop: int) -> int:
        """Invalid frames in the half-open range ``[start, stop)``."""
        start, stop = self._clip(start, stop)
        if start >= stop:
            return 0
        return int(self._cum_invalid[stop] - self._cum_invalid[start])

    def imputed_count(self, start: int, stop: int) -> int:
        """Imputed frames in the half-open range ``[start, stop)``."""
        start, stop = self._clip(start, stop)
        if start >= stop:
            return 0
        return int(self._cum_imputed[stop] - self._cum_imputed[start])

    def transitions_in(self, start: int, stop: int) -> int:
        """Health transitions whose frame falls in ``[start, stop)``."""
        if self._transition_frames.size == 0:
            return 0
        frames = self._transition_frames
        return int(((frames >= start) & (frames < stop)).sum())

    def state_at(self, frame: int) -> int:
        """Health state code at ``frame`` (clamped to the stream)."""
        frame = min(max(frame, 0), self.num_frames - 1)
        return int(self.health[frame])

    def health_at(self, frame: int) -> str:
        """Health state name at ``frame``."""
        return HEALTH_STATES[self.state_at(frame)]


def _stale_mask(values: np.ndarray, stale_after: int) -> np.ndarray:
    """Frames that are the (stale_after+1)-th or later bitwise repeat.

    A frozen feed repeats its last live frame exactly; genuinely clean
    synthetic features carry per-frame observation noise and never tie
    bitwise, so exact whole-vector equality is a safe staleness signal.
    NaN never equals NaN, so missing frames cannot masquerade as stale.
    """
    num_frames = values.shape[0]
    if num_frames <= stale_after:
        return np.zeros(num_frames, dtype=bool)
    same_as_prev = (values[1:] == values[:-1]).all(axis=1)
    # Position of each frame within its run of consecutive repeats.
    run_break = np.concatenate(([True], ~same_as_prev))
    run_starts = np.flatnonzero(run_break)
    run_id = np.cumsum(run_break) - 1
    position = np.arange(num_frames) - run_starts[run_id]
    return position >= stale_after


def _gap_lengths(invalid: np.ndarray) -> np.ndarray:
    """Length of the consecutive-invalid run ending at each frame."""
    num_frames = invalid.shape[0]
    if num_frames == 0:
        return np.zeros(0, dtype=int)
    run_break = np.concatenate(([True], ~invalid[:-1]))
    run_starts = np.flatnonzero(run_break)
    run_id = np.cumsum(run_break) - 1
    position = np.arange(num_frames) - run_starts[run_id]
    return np.where(invalid, position + 1, 0)


class StreamGuard:
    """Sanitize feature streams and track per-stream health.

    Parameters
    ----------
    imputation:
        Gap-filling policy for invalid frames: ``"hold-last"`` repeats
        the last valid vector (the frame-to-frame-redundancy bet Event
        Neural Networks make), ``"zero-fill"`` writes zeros (cheap,
        pessimistic), ``"linear-interp"`` interpolates each channel
        between the surrounding valid frames (needs lookahead; edges
        clamp).  A leading gap has no last value — every policy
        zero-fills it.
    quarantine_policy:
        What the marshaller does with a QUARANTINED horizon:
        ``"relay-all"`` relays the entire horizon (conservative: spend
        money, miss nothing), ``"skip"`` relays nothing and charges the
        frames to the report's quarantine accounting.
    config:
        Thresholds (:class:`GuardConfig`).

    The guard itself is stateless and reusable across streams; all
    per-stream state lives in the :class:`GuardedStream` that
    ``sanitize`` returns, so one guard can serve a whole fleet.
    """

    def __init__(
        self,
        imputation: str = "hold-last",
        quarantine_policy: str = "relay-all",
        config: Optional[GuardConfig] = None,
    ):
        if imputation not in IMPUTATION_POLICIES:
            raise ValueError(
                f"imputation must be one of {IMPUTATION_POLICIES}, "
                f"got {imputation!r}"
            )
        if quarantine_policy not in QUARANTINE_POLICIES:
            raise ValueError(
                f"quarantine_policy must be one of {QUARANTINE_POLICIES}, "
                f"got {quarantine_policy!r}"
            )
        self.imputation = imputation
        self.quarantine_policy = quarantine_policy
        self.config = config if config is not None else GuardConfig()

    # ------------------------------------------------------------------
    def _impute(
        self, values: np.ndarray, valid: np.ndarray
    ) -> np.ndarray:
        """Replacement values for the invalid frames (policy-dependent)."""
        num_frames = values.shape[0]
        out = values.copy()
        if self.imputation == "zero-fill":
            out[~valid] = 0.0
            return out
        valid_idx = np.flatnonzero(valid)
        if valid_idx.size == 0:
            out[:] = 0.0
            return out
        if self.imputation == "hold-last":
            # Index of the most recent valid frame at or before each
            # frame; frames before the first valid one zero-fill.
            last = np.where(valid, np.arange(num_frames), -1)
            last = np.maximum.accumulate(last)
            fillable = ~valid & (last >= 0)
            out[fillable] = values[last[fillable]]
            out[~valid & (last < 0)] = 0.0
            return out
        # linear-interp: per-channel interpolation over the valid frames.
        frames = np.arange(num_frames, dtype=float)
        for channel in range(values.shape[1]):
            out[~valid, channel] = np.interp(
                frames[~valid], frames[valid], values[valid, channel]
            )
        return out

    def _health_pass(
        self, invalid: np.ndarray
    ) -> Tuple[np.ndarray, List[Tuple[int, str, str]]]:
        """Run the hysteresis state machine over the per-frame verdicts."""
        config = self.config
        num_frames = invalid.shape[0]
        health = np.zeros(num_frames, dtype=np.int8)
        transitions: List[Tuple[int, str, str]] = []
        if not invalid.any():
            return health, transitions

        cum = np.concatenate(([0], np.cumsum(invalid)))
        gaps = _gap_lengths(invalid)
        window = config.window
        state = HEALTHY
        clean_streak = 0
        for frame in range(num_frames):
            start = max(0, frame + 1 - window)
            rate = (cum[frame + 1] - cum[start]) / (frame + 1 - start)
            gap = gaps[frame]
            new_state = state
            if state == HEALTHY:
                if gap > config.max_gap or rate >= config.quarantine_rate:
                    new_state = QUARANTINED
                elif rate >= config.degrade_rate:
                    new_state = DEGRADED
            elif state == DEGRADED:
                if gap > config.max_gap or rate >= config.quarantine_rate:
                    new_state = QUARANTINED
                elif rate <= config.recover_rate:
                    new_state = HEALTHY
            elif state == QUARANTINED:
                if not invalid[frame] and rate <= config.recover_rate:
                    new_state = RECOVERING
                    clean_streak = 1
            else:  # RECOVERING
                if invalid[frame]:
                    new_state = QUARANTINED
                else:
                    clean_streak += 1
                    if clean_streak >= config.recovery_frames:
                        new_state = HEALTHY
            if new_state != state:
                transitions.append(
                    (frame, HEALTH_STATES[state], HEALTH_STATES[new_state])
                )
                state = new_state
            health[frame] = state
        return health, transitions

    def sanitize(self, features: FeatureMatrix) -> GuardedStream:
        """Validate, impute, and grade ``features``.

        Raises ``ValueError`` on a dimension mismatch (the stream is
        structurally wrong — no imputation policy can paper over a
        detector emitting the wrong number of channels).  Returns the
        input object untouched when every frame is clean, so the guarded
        zero-fault path is bitwise the unguarded one.
        """
        config = self.config
        if (
            config.expected_dim is not None
            and features.num_channels != config.expected_dim
        ):
            raise ValueError(
                f"feature dimension check failed: expected "
                f"{config.expected_dim} channels, got {features.num_channels}"
            )
        with span("ingest.sanitize", frames=features.num_frames):
            values = features.values
            nonfinite = ~np.isfinite(values).all(axis=1)
            stale = _stale_mask(values, config.stale_after) & ~nonfinite
            invalid = nonfinite | stale

            if not invalid.any():
                set_gauge("ingest.invalid_rate", 0.0)
                health = np.zeros(features.num_frames, dtype=np.int8)
                return GuardedStream(
                    features,
                    invalid,
                    nonfinite,
                    stale,
                    np.zeros(features.num_frames, dtype=bool),
                    health,
                    [],
                )

            sanitized_values = self._impute(values, ~invalid)
            sanitized = FeatureMatrix(
                sanitized_values, list(features.channel_names)
            )
            health, transitions = self._health_pass(invalid)
            imputed = invalid.copy()

            inc("ingest.frames_invalid", int(invalid.sum()))
            inc("ingest.frames_nonfinite", int(nonfinite.sum()))
            inc("ingest.frames_stale", int(stale.sum()))
            inc("ingest.frames_imputed", int(imputed.sum()))
            set_gauge(
                "ingest.invalid_rate", float(invalid.mean())
            )
            for frame, old, new in transitions:
                inc("stream.health.transitions")
                inc(f"stream.health.to_{new.lower()}")
                log_info(
                    "stream.health.transition",
                    frame=frame,
                    from_state=old,
                    to_state=new,
                )
            return GuardedStream(
                sanitized, invalid, nonfinite, stale, imputed, health, transitions
            )
