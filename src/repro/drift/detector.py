"""Drift detection for event-occurrence distributions (paper §VIII).

The paper's conclusions: *"we have assumed that the occurrence of each type
of event follows a stationary underlying distribution.  For future work, it
would be interesting to investigate how to detect and adapt to changes in
the occurrence distribution over time."*  This module implements that
future work on top of the conformal machinery.

Two complementary detectors:

* :class:`PValueDriftDetector` — under exchangeability, the conformal
  p-values of *positive* records are (super-)uniform on [0, 1].  When the
  occurrence distribution drifts, EventHit's scores degrade and the
  p-values of true positives collapse toward 0.  A two-sample
  Kolmogorov–Smirnov test between a reference window (collected right
  after calibration) and a recent window flags the change.

* :class:`MissRateCusum` — a CUSUM control chart on the audited miss
  indicator stream.  C-CLASSIFY guarantees a miss rate ≤ 1 − c under
  exchangeability; auditing (fully relaying a random fraction of horizons,
  see :class:`~repro.drift.adapter.AdaptiveMarshaller`) yields unbiased
  miss observations, and the CUSUM accumulates evidence that the true miss
  rate exceeds the budget.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

import numpy as np
from scipy import stats

__all__ = ["DriftVerdict", "PValueDriftDetector", "MissRateCusum"]


@dataclass(frozen=True)
class DriftVerdict:
    """Outcome of one drift check."""

    drifted: bool
    statistic: float
    threshold: float
    samples: int

    def __bool__(self) -> bool:
        return self.drifted


class PValueDriftDetector:
    """KS test between reference and recent conformal p-value windows.

    Parameters
    ----------
    window:
        Number of recent p-values compared against the reference window.
    significance:
        KS-test significance level; lower = fewer false alarms.
    min_samples:
        Both windows must hold at least this many points before a verdict
        other than "no drift" can be issued.
    """

    def __init__(
        self,
        window: int = 50,
        significance: float = 0.01,
        min_samples: int = 10,
    ):
        if window <= 0:
            raise ValueError("window must be positive")
        if not 0.0 < significance < 1.0:
            raise ValueError("significance must be in (0, 1)")
        if min_samples <= 1:
            raise ValueError("min_samples must be > 1")
        self.window = window
        self.significance = significance
        self.min_samples = min_samples
        self._reference: Deque[float] = deque(maxlen=window)
        self._recent: Deque[float] = deque(maxlen=window)
        self._reference_frozen = False

    # ------------------------------------------------------------------
    @property
    def reference_size(self) -> int:
        return len(self._reference)

    @property
    def recent_size(self) -> int:
        return len(self._recent)

    def freeze_reference(self) -> None:
        """Stop filling the reference window; subsequent points go to
        the recent window.  Called automatically once the reference fills."""
        self._reference_frozen = True

    def observe(self, p_value: float) -> None:
        """Feed one conformal p-value of a *positive* (audited) record."""
        if not 0.0 <= p_value <= 1.0:
            raise ValueError("p-values lie in [0, 1]")
        if not self._reference_frozen and len(self._reference) < self.window:
            self._reference.append(p_value)
            if len(self._reference) == self.window:
                self._reference_frozen = True
        else:
            self._recent.append(p_value)

    def observe_many(self, p_values) -> None:
        for p in np.atleast_1d(np.asarray(p_values, dtype=float)):
            self.observe(float(p))

    def check(self) -> DriftVerdict:
        """KS verdict comparing recent p-values with the reference."""
        n = min(len(self._reference), len(self._recent))
        if n < self.min_samples:
            return DriftVerdict(False, 0.0, self.significance, n)
        result = stats.ks_2samp(list(self._reference), list(self._recent))
        return DriftVerdict(
            drifted=bool(result.pvalue < self.significance),
            statistic=float(result.statistic),
            threshold=self.significance,
            samples=n,
        )

    def reset(self, keep_recent_as_reference: bool = False) -> None:
        """Clear state after adaptation.

        With ``keep_recent_as_reference`` the recent window becomes the new
        post-drift reference (the world has changed; recalibrate to it).
        The carried reference freezes as soon as it can support a verdict
        (``min_samples``), not only when completely full: a partially full
        reference that kept absorbing post-reset points would mix the two
        regimes into one baseline and stall the next verdict by a whole
        window (regression-pinned in ``tests/drift``).
        """
        if keep_recent_as_reference:
            self._reference = deque(self._recent, maxlen=self.window)
            self._reference_frozen = len(self._reference) >= self.min_samples
        else:
            self._reference = deque(maxlen=self.window)
            self._reference_frozen = False
        self._recent = deque(maxlen=self.window)

    def rebase(self, p_values) -> None:
        """Hand the detector over to a new model/calibration regime.

        Seeds the reference window from ``p_values`` — the buffered
        positives' p-values *recomputed under the new regime* — so
        detection resumes immediately instead of restarting cold, and
        without carrying stale p-values that were computed against the
        old calibration set.  The newest ``window`` values are kept, and
        the reference freezes once it can support a verdict.
        """
        values = np.atleast_1d(np.asarray(p_values, dtype=float)).ravel()
        if values.size and (values.min() < 0.0 or values.max() > 1.0):
            raise ValueError("p-values lie in [0, 1]")
        self._reference = deque(values[-self.window:], maxlen=self.window)
        self._reference_frozen = len(self._reference) >= self.min_samples
        self._recent = deque(maxlen=self.window)


class MissRateCusum:
    """One-sided CUSUM on audited miss indicators.

    Tracks S_t = max(0, S_{t-1} + (x_t − budget − slack)) where x_t ∈ {0,1}
    is "the audited horizon contained an event we failed to predict".
    Signals when S_t crosses ``threshold``.

    Parameters
    ----------
    budget:
        The guaranteed miss rate 1 − c the marshaller runs at.
    slack:
        Extra allowance before evidence accumulates (reduces false alarms
        from guarantee-level misses).
    threshold:
        Accumulated-evidence level that triggers the drift signal;
        roughly "this many excess misses beyond budget+slack".
    """

    def __init__(self, budget: float, slack: float = 0.05, threshold: float = 3.0):
        if not 0.0 <= budget < 1.0:
            raise ValueError("budget must be in [0, 1)")
        if slack < 0:
            raise ValueError("slack must be non-negative")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.budget = budget
        self.slack = slack
        self.threshold = threshold
        self._statistic = 0.0
        self._observations = 0
        self._misses = 0

    @property
    def statistic(self) -> float:
        return self._statistic

    @property
    def observed_miss_rate(self) -> float:
        if self._observations == 0:
            return float("nan")
        return self._misses / self._observations

    def observe(self, missed: bool) -> DriftVerdict:
        """Feed one audited horizon outcome; returns the current verdict."""
        self._observations += 1
        self._misses += int(bool(missed))
        increment = float(bool(missed)) - (self.budget + self.slack)
        self._statistic = max(0.0, self._statistic + increment)
        return self.check()

    def check(self) -> DriftVerdict:
        return DriftVerdict(
            drifted=self._statistic >= self.threshold,
            statistic=self._statistic,
            threshold=self.threshold,
            samples=self._observations,
        )

    def reset(self) -> None:
        self._statistic = 0.0
        self._observations = 0
        self._misses = 0
