"""Online adaptation: audit sampling + recalibration (paper §VIII).

:class:`AdaptiveMarshaller` extends the Fig. 1 runtime loop with the
feedback machinery drift handling needs:

* **audit sampling** — a random fraction of horizons is relayed to the CI
  *in full* regardless of the prediction.  Audited horizons provide
  unbiased ground truth (the CI is accurate), at a bounded extra cost.
* **drift detection** — audited outcomes feed a
  :class:`~repro.drift.detector.MissRateCusum` (did we miss an event the
  CI found?) and a :class:`~repro.drift.detector.PValueDriftDetector`
  (have positives' conformal p-values collapsed?).
* **recalibration** — on a drift signal, the conformal calibration sets
  are rebuilt from a sliding buffer of audited records (the network itself
  is kept; conformal layers are cheap to refresh online) and the detectors
  reset.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Sequence, Tuple

import numpy as np

from ..cloud.service import CloudInferenceService
from ..conformal.classify import ConformalClassifier
from ..conformal.regress import ConformalRegressor
from ..core.inference import extract_intervals
from ..core.model import EventHit
from ..data.records import RecordSet
from ..features.extractors import FeatureMatrix
from ..features.pipeline import CovariatePipeline
from ..video.events import EventType
from ..video.stream import VideoStream
from .detector import MissRateCusum, PValueDriftDetector

__all__ = ["AdaptiveReport", "AuditBuffer", "AdaptiveMarshaller"]


@dataclass
class AdaptiveReport:
    """Outcome of one adaptive marshalling run."""

    horizons_evaluated: int = 0
    horizons_audited: int = 0
    frames_covered: int = 0
    frames_relayed: int = 0
    total_cost: float = 0.0
    true_event_frames: int = 0
    detected_event_frames: int = 0
    audited_misses: int = 0
    drift_signals: List[int] = field(default_factory=list)  # horizon indices
    recalibrations: int = 0

    @property
    def frame_recall(self) -> float:
        if self.true_event_frames == 0:
            return float("nan")
        return self.detected_event_frames / self.true_event_frames

    @property
    def audit_fraction(self) -> float:
        if self.horizons_evaluated == 0:
            return float("nan")
        return self.horizons_audited / self.horizons_evaluated


class AuditBuffer:
    """Sliding buffer of audited horizons, convertible to a RecordSet."""

    def __init__(self, event_types: Sequence[EventType], horizon: int, maxlen: int = 200):
        if maxlen <= 0:
            raise ValueError("maxlen must be positive")
        self.event_types = list(event_types)
        self.horizon = horizon
        self._rows: Deque[Tuple] = deque(maxlen=maxlen)

    def __len__(self) -> int:
        return len(self._rows)

    def add(
        self,
        frame: int,
        covariates: np.ndarray,
        labels: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
        censored: np.ndarray,
    ) -> None:
        self._rows.append(
            (frame, covariates.copy(), labels.copy(), starts.copy(),
             ends.copy(), censored.copy())
        )

    def positives_per_event(self) -> np.ndarray:
        if not self._rows:
            return np.zeros(len(self.event_types), dtype=int)
        return np.sum([row[2] for row in self._rows], axis=0).astype(int)

    def ready_for_calibration(self, min_positives: int = 3) -> bool:
        """Every event has enough audited positives to recalibrate."""
        if not self._rows:
            return False
        return bool((self.positives_per_event() >= min_positives).all())

    def to_records(self) -> RecordSet:
        if not self._rows:
            raise ValueError("audit buffer is empty")
        frames, covs, labels, starts, ends, censored = zip(*self._rows)
        return RecordSet(
            event_types=self.event_types,
            horizon=self.horizon,
            frames=np.asarray(frames),
            covariates=np.stack(covs),
            labels=np.stack(labels),
            starts=np.stack(starts),
            ends=np.stack(ends),
            censored=np.stack(censored),
        )


class AdaptiveMarshaller:
    """Marshalling loop with audit sampling, drift detection, recalibration.

    Parameters
    ----------
    model / event_types / pipeline:
        As in :class:`~repro.cloud.StreamMarshaller`.
    classifier / regressor:
        Calibrated conformal components (both required — adaptation is
        about keeping their guarantees honest under drift).
    confidence / alpha:
        The knobs c and α.
    audit_rate:
        Probability a horizon is fully relayed for ground truth.
    buffer_size:
        Sliding audit-buffer capacity (recent records used to recalibrate).
    min_positives:
        Audited positives per event required before recalibrating.
    seed:
        Seed of the audit coin-flips.
    """

    def __init__(
        self,
        model: EventHit,
        event_types: Sequence[EventType],
        pipeline: CovariatePipeline,
        classifier: ConformalClassifier,
        regressor: ConformalRegressor,
        confidence: float = 0.95,
        alpha: float = 0.9,
        audit_rate: float = 0.1,
        buffer_size: int = 200,
        min_positives: int = 3,
        seed: int = 0,
        cusum: Optional[MissRateCusum] = None,
        pvalue_detector: Optional[PValueDriftDetector] = None,
    ):
        if len(event_types) != model.num_events:
            raise ValueError("event_types count must match model heads")
        if not classifier.is_calibrated or not regressor.is_calibrated:
            raise ValueError("classifier and regressor must be calibrated")
        if not 0.0 <= confidence <= 1.0:
            raise ValueError("confidence must be in [0, 1]")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if not 0.0 <= audit_rate <= 1.0:
            raise ValueError("audit_rate must be in [0, 1]")
        if min_positives < 1:
            raise ValueError("min_positives must be >= 1")
        self.model = model
        self.event_types = list(event_types)
        self.pipeline = pipeline
        self.classifier = classifier
        self.regressor = regressor
        self.confidence = confidence
        self.alpha = alpha
        self.audit_rate = audit_rate
        self.min_positives = min_positives
        self.horizon = model.config.horizon
        self.buffer = AuditBuffer(event_types, self.horizon, maxlen=buffer_size)
        self.cusum = cusum or MissRateCusum(budget=1.0 - confidence)
        self.pvalue_detector = pvalue_detector or PValueDriftDetector()
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def _ground_truth(self, stream: VideoStream, frame: int):
        """Per-event (label, start, end, censored) in this horizon."""
        k = len(self.event_types)
        labels = np.zeros(k)
        starts = np.zeros(k, dtype=int)
        ends = np.zeros(k, dtype=int)
        censored = np.zeros(k)
        for j, event_type in enumerate(self.event_types):
            event = stream.schedule.first_event_in_horizon(
                event_type, frame, self.horizon
            )
            if event is None:
                continue
            labels[j] = 1.0
            starts[j] = event.start_offset
            ends[j] = event.end_offset
            censored[j] = float(event.censored)
        return labels, starts, ends, censored

    def _recalibrate(self) -> None:
        records = self.buffer.to_records()
        self.classifier.calibrate(records)
        self.regressor.calibrate(records)
        self.cusum.reset()
        # Hand the KS detector over to the new calibration: its retained
        # p-values were computed against the *old* calibration set, so
        # keeping them verbatim would poison the post-adaptation baseline.
        # Recompute the buffered positives' p-values under the fresh
        # calibration and rebase the reference window on those.
        output = self.model.predict(records.covariates)
        p_values = self.classifier.p_values(output)
        self.pvalue_detector.rebase(p_values[records.labels > 0])

    # ------------------------------------------------------------------
    def run(
        self,
        stream: VideoStream,
        features: FeatureMatrix,
        service: CloudInferenceService,
        max_horizons: Optional[int] = None,
    ) -> AdaptiveReport:
        """Marshal ``stream`` adaptively through ``service``."""
        if features.num_frames != stream.length:
            raise ValueError("feature matrix length != stream length")
        if service.stream is not stream:
            raise ValueError("service must be bound to the same stream")
        report = AdaptiveReport()
        horizon = self.horizon
        frame = self.pipeline.min_frame()

        while frame + horizon < stream.length:
            if max_horizons is not None and report.horizons_evaluated >= max_horizons:
                break
            window = self.pipeline.covariates_at(features, frame)
            output = self.model.predict(window[None])
            exists = self.classifier.predict(output, self.confidence)
            batch = self.regressor.predict(output, exists, self.alpha)
            truth_labels, truth_starts, truth_ends, truth_censored = (
                self._ground_truth(stream, frame)
            )

            audited = bool(self._rng.random() < self.audit_rate)
            if audited:
                report.horizons_audited += 1
                # Full relay per event: unbiased ground truth + billing.
                for j, event_type in enumerate(self.event_types):
                    segment = stream.segment(frame + 1, frame + horizon)
                    detections = service.detect(segment, event_type)
                    report.frames_relayed += segment.num_frames
                    covered = set()
                    for det in detections:
                        covered.update(range(det.start, det.end + 1))
                    truth_frames = self._truth_frames(stream, frame, event_type)
                    report.true_event_frames += len(truth_frames)
                    report.detected_event_frames += len(covered & truth_frames)

                # Feedback: drift statistics + calibration buffer.
                missed = bool(np.any((truth_labels > 0) & ~exists[0]))
                report.audited_misses += int(missed)
                cusum_verdict = self.cusum.observe(missed)
                p_values = self.classifier.p_values(output)[0]
                for j in range(len(self.event_types)):
                    if truth_labels[j] > 0:
                        self.pvalue_detector.observe(float(p_values[j]))
                ks_verdict = self.pvalue_detector.check()
                self.buffer.add(
                    frame, window, truth_labels, truth_starts, truth_ends,
                    truth_censored,
                )
                if (cusum_verdict.drifted or ks_verdict.drifted) and (
                    self.buffer.ready_for_calibration(self.min_positives)
                ):
                    report.drift_signals.append(report.horizons_evaluated)
                    self._recalibrate()
                    report.recalibrations += 1
            else:
                for j, event_type in enumerate(self.event_types):
                    truth_frames = self._truth_frames(stream, frame, event_type)
                    report.true_event_frames += len(truth_frames)
                    if not exists[0, j]:
                        continue
                    segment = stream.segment(
                        frame + int(batch.starts[0, j]),
                        frame + int(batch.ends[0, j]),
                    )
                    detections = service.detect(segment, event_type)
                    report.frames_relayed += segment.num_frames
                    covered = set()
                    for det in detections:
                        covered.update(range(det.start, det.end + 1))
                    report.detected_event_frames += len(covered & truth_frames)

            report.horizons_evaluated += 1
            report.frames_covered += horizon
            frame += horizon

        report.total_cost = service.ledger.total_cost
        return report

    def _truth_frames(self, stream: VideoStream, frame: int, event_type) -> set:
        out = set()
        for ev in stream.schedule.events_in_horizon(event_type, frame, self.horizon):
            out.update(range(frame + ev.start_offset, frame + ev.end_offset + 1))
        return out
