"""Drift detection and online adaptation — the paper's §VIII future work.

* :class:`PValueDriftDetector` — KS test on positives' conformal p-values.
* :class:`MissRateCusum` — CUSUM chart on audited miss indicators against
  the 1 − c guarantee budget.
* :class:`AdaptiveMarshaller` — the Fig. 1 loop with audit sampling,
  drift signals, and online recalibration of the conformal layers.
"""

from .detector import DriftVerdict, MissRateCusum, PValueDriftDetector
from .adapter import AdaptiveMarshaller, AdaptiveReport, AuditBuffer

__all__ = [
    "DriftVerdict",
    "PValueDriftDetector",
    "MissRateCusum",
    "AdaptiveMarshaller",
    "AdaptiveReport",
    "AuditBuffer",
]
