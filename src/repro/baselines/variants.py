"""The four EventHit decision-rule variants compared in §VI.B:

* **EHO** — raw EventHit output with thresholds τ1/τ2 (Eqs. 4–6);
* **EHC** — C-CLASSIFY existence (knob c) + Eq. 5 intervals;
* **EHR** — Eq. 4 existence + C-REGRESS intervals (knob α);
* **EHCR** — C-CLASSIFY + C-REGRESS (knobs c and α).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..conformal.classify import ConformalClassifier
from ..conformal.regress import ConformalRegressor
from ..core.inference import PredictionBatch, extract_intervals, threshold_predictions
from ..core.model import EventHit
from ..data.records import RecordSet
from .base import OutputCache

__all__ = ["EHO", "EHC", "EHR", "EHCR"]


class _EventHitVariant:
    """Shared plumbing: a trained model plus a forward-pass cache."""

    def __init__(self, model: EventHit):
        self.model = model
        self._cache = OutputCache(model)

    def _raw_intervals(self, records: RecordSet, exists: np.ndarray, tau2: float):
        output = self._cache.output_for(records)
        starts, ends = extract_intervals(output.frame_scores, tau2)
        return PredictionBatch(
            exists=exists,
            starts=np.where(exists, starts, 0),
            ends=np.where(exists, ends, 0),
            horizon=output.horizon,
        )


class EHO(_EventHitVariant):
    """EventHit output only; both thresholds default to 0.5 (§VI.B item 1)."""

    name = "EHO"

    def __init__(self, model: EventHit, tau1: float = 0.5, tau2: float = 0.5):
        super().__init__(model)
        self.tau1 = tau1
        self.tau2 = tau2

    def predict(self, records: RecordSet, **knobs) -> PredictionBatch:
        tau1 = knobs.pop("tau1", self.tau1)
        tau2 = knobs.pop("tau2", self.tau2)
        if knobs:
            raise TypeError(f"unexpected knobs {sorted(knobs)}")
        output = self._cache.output_for(records)
        return threshold_predictions(output, tau1, tau2)


class EHC(_EventHitVariant):
    """C-CLASSIFY existence + EventHit intervals (§VI.B item 2).

    The classifier must already be calibrated on D_c-calib.
    """

    name = "EHC"

    def __init__(
        self,
        model: EventHit,
        classifier: ConformalClassifier,
        confidence: float = 0.9,
        tau2: float = 0.5,
    ):
        super().__init__(model)
        if not classifier.is_calibrated:
            raise ValueError("classifier must be calibrated")
        self.classifier = classifier
        self.confidence = confidence
        self.tau2 = tau2

    def predict(self, records: RecordSet, **knobs) -> PredictionBatch:
        confidence = knobs.pop("confidence", self.confidence)
        tau2 = knobs.pop("tau2", self.tau2)
        if knobs:
            raise TypeError(f"unexpected knobs {sorted(knobs)}")
        output = self._cache.output_for(records)
        exists = self.classifier.predict(output, confidence)
        return self._raw_intervals(records, exists, tau2)


class EHR(_EventHitVariant):
    """EventHit existence + C-REGRESS intervals (§VI.B item 3)."""

    name = "EHR"

    def __init__(
        self,
        model: EventHit,
        regressor: ConformalRegressor,
        alpha: float = 0.9,
        tau1: float = 0.5,
    ):
        super().__init__(model)
        if not regressor.is_calibrated:
            raise ValueError("regressor must be calibrated")
        self.regressor = regressor
        self.alpha = alpha
        self.tau1 = tau1

    def predict(self, records: RecordSet, **knobs) -> PredictionBatch:
        alpha = knobs.pop("alpha", self.alpha)
        tau1 = knobs.pop("tau1", self.tau1)
        if knobs:
            raise TypeError(f"unexpected knobs {sorted(knobs)}")
        output = self._cache.output_for(records)
        exists = output.scores >= tau1
        return self.regressor.predict(output, exists, alpha)


class EHCR(_EventHitVariant):
    """C-CLASSIFY + C-REGRESS: the full proposal (§VI.B item 4)."""

    name = "EHCR"

    def __init__(
        self,
        model: EventHit,
        classifier: ConformalClassifier,
        regressor: ConformalRegressor,
        confidence: float = 0.9,
        alpha: float = 0.9,
    ):
        super().__init__(model)
        if not classifier.is_calibrated:
            raise ValueError("classifier must be calibrated")
        if not regressor.is_calibrated:
            raise ValueError("regressor must be calibrated")
        self.classifier = classifier
        self.regressor = regressor
        self.confidence = confidence
        self.alpha = alpha

    def predict(self, records: RecordSet, **knobs) -> PredictionBatch:
        confidence = knobs.pop("confidence", self.confidence)
        alpha = knobs.pop("alpha", self.alpha)
        if knobs:
            raise TypeError(f"unexpected knobs {sorted(knobs)}")
        output = self._cache.output_for(records)
        exists = self.classifier.predict(output, confidence)
        return self.regressor.predict(output, exists, alpha)
