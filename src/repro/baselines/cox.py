"""COX — Cox proportional-hazards survival baseline (§VI.B item 7).

The paper adapts Cox's model [39]: fit a survival regression on the
covariates where the "survival time" is the offset of the next event onset
within the horizon (records without the event are right-censored at H).
At prediction time, scan the horizon for the first frame whose cumulative
event probability crosses a threshold τ_cox and assume the event runs from
that frame to the end of the horizon (the paper notes the Cox model can
only regress one variable, so the end point is not modelled).

Everything is implemented from scratch: Newton–Raphson maximisation of the
ridge-penalised Breslow partial likelihood, then the Breslow estimator of
the baseline cumulative hazard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.inference import PredictionBatch
from ..data.records import RecordSet

__all__ = ["CoxModel", "CoxPredictor"]


def _window_features(records: RecordSet) -> np.ndarray:
    """Collapse (B, M, D) covariates to (B, D) by window mean.

    The Cox model is linear in a fixed-size covariate vector; the mean of
    the collection window is the standard summary.
    """
    return records.covariates.mean(axis=1)


@dataclass
class CoxModel:
    """A fitted Cox PH model for one event type."""

    beta: np.ndarray  # (D,)
    baseline_times: np.ndarray  # (T,) sorted distinct event times
    baseline_hazard: np.ndarray  # (T,) Breslow increments dΛ0
    feature_mean: np.ndarray  # centring used at fit time

    def risk(self, x: np.ndarray) -> np.ndarray:
        """exp(xβ) for (B, D) covariates."""
        x = np.atleast_2d(x) - self.feature_mean
        return np.exp(np.clip(x @ self.beta, -30, 30))

    def cumulative_hazard(self, t: np.ndarray) -> np.ndarray:
        """Λ0(t) via the Breslow step function."""
        t = np.atleast_1d(t)
        idx = np.searchsorted(self.baseline_times, t, side="right")
        cum = np.concatenate([[0.0], np.cumsum(self.baseline_hazard)])
        return cum[idx]

    def survival(self, x: np.ndarray, t: np.ndarray) -> np.ndarray:
        """S(t | x) = exp(−Λ0(t)·exp(xβ)) for (B, D) x and (T,) t → (B, T)."""
        risk = self.risk(x)  # (B,)
        lam = self.cumulative_hazard(t)  # (T,)
        return np.exp(-np.outer(risk, lam))


def fit_cox(
    features: np.ndarray,
    times: np.ndarray,
    events: np.ndarray,
    ridge: float = 1e-3,
    max_iter: int = 50,
    tol: float = 1e-7,
) -> CoxModel:
    """Fit Cox PH by Newton–Raphson on the Breslow partial likelihood.

    Parameters
    ----------
    features:
        (B, D) covariates.
    times:
        (B,) event/censoring times (positive ints).
    events:
        (B,) 1 if the event was observed at ``times``, 0 if censored.
    ridge:
        L2 penalty keeping the Hessian well conditioned.
    """
    features = np.asarray(features, dtype=float)
    times = np.asarray(times, dtype=float)
    events = np.asarray(events, dtype=float)
    if features.ndim != 2:
        raise ValueError("features must be (B, D)")
    b, d = features.shape
    if times.shape != (b,) or events.shape != (b,):
        raise ValueError("times and events must be (B,)")
    if np.any(times <= 0):
        raise ValueError("times must be positive")
    if not set(np.unique(events)) <= {0.0, 1.0}:
        raise ValueError("events must be binary")

    mean = features.mean(axis=0)
    x = features - mean
    order = np.argsort(times)
    x, times_sorted, events_sorted = x[order], times[order], events[order]

    beta = np.zeros(d)
    for _ in range(max_iter):
        eta = np.clip(x @ beta, -30, 30)
        w = np.exp(eta)
        # Reverse cumulative sums give the risk-set aggregates at each time.
        s0 = np.cumsum(w[::-1])[::-1]  # Σ_{j in R(t_i)} w_j
        s1 = np.cumsum((w[:, None] * x)[::-1], axis=0)[::-1]  # (B, D)
        grad = np.zeros(d)
        hess = np.zeros((d, d))
        for i in np.flatnonzero(events_sorted > 0):
            xbar = s1[i] / s0[i]
            grad += x[i] - xbar
            # E[xx^T] over risk set, computed lazily below.
            risk_slice = slice(i, b)
            xw = x[risk_slice] * w[risk_slice, None]
            s2 = x[risk_slice].T @ xw / s0[i]
            hess -= s2 - np.outer(xbar, xbar)
        grad -= ridge * beta
        hess -= ridge * np.eye(d)
        try:
            step = np.linalg.solve(hess, grad)
        except np.linalg.LinAlgError:
            step = np.linalg.lstsq(hess, grad, rcond=None)[0]
        beta_new = beta - step
        if np.max(np.abs(beta_new - beta)) < tol:
            beta = beta_new
            break
        beta = beta_new

    # Breslow baseline hazard increments at distinct event times.
    eta = np.clip(x @ beta, -30, 30)
    w = np.exp(eta)
    s0 = np.cumsum(w[::-1])[::-1]
    event_times = times_sorted[events_sorted > 0]
    distinct = np.unique(event_times)
    increments = np.zeros(distinct.size)
    for j, t in enumerate(distinct):
        at_t = (times_sorted == t) & (events_sorted > 0)
        first_idx = np.searchsorted(times_sorted, t, side="left")
        increments[j] = at_t.sum() / s0[first_idx]
    return CoxModel(
        beta=beta,
        baseline_times=distinct,
        baseline_hazard=increments,
        feature_mean=mean,
    )


class CoxPredictor:
    """The §VI.B COX strategy: one Cox model per event type.

    Fit with :meth:`fit` on training records, then sweep ``tau`` in
    :meth:`predict` for the REC–SPL curve.
    """

    name = "COX"

    def __init__(self, ridge: float = 1e-3):
        self.ridge = ridge
        self._models: Optional[List[CoxModel]] = None
        self._horizon: Optional[int] = None

    @property
    def is_fitted(self) -> bool:
        return self._models is not None

    def fit(self, train: RecordSet) -> "CoxPredictor":
        features = _window_features(train)
        models = []
        for k in range(train.num_events):
            present = train.labels[:, k] > 0
            times = np.where(present, train.starts[:, k], train.horizon).astype(float)
            times = np.maximum(times, 1.0)
            models.append(
                fit_cox(features, times, present.astype(float), ridge=self.ridge)
            )
        self._models = models
        self._horizon = train.horizon
        return self

    def predict(self, records: RecordSet, **knobs) -> PredictionBatch:
        """Threshold scan: start = first t with 1 − S(t|x) ≥ τ; end = H."""
        tau = knobs.pop("tau", 0.5)
        if knobs:
            raise TypeError(f"unexpected knobs {sorted(knobs)}")
        if self._models is None:
            raise RuntimeError("call fit() before predict()")
        if not 0.0 < tau < 1.0:
            raise ValueError("tau must be in (0, 1)")
        if records.horizon != self._horizon:
            raise ValueError("records horizon differs from the fitted horizon")
        features = _window_features(records)
        horizon = records.horizon
        grid = np.arange(1, horizon + 1, dtype=float)
        b, k = records.labels.shape
        exists = np.zeros((b, k), dtype=bool)
        starts = np.zeros((b, k), dtype=int)
        ends = np.zeros((b, k), dtype=int)
        for j, model in enumerate(self._models):
            survival = model.survival(features, grid)  # (B, H)
            crossed = (1.0 - survival) >= tau
            any_cross = crossed.any(axis=1)
            first = np.where(crossed, grid[None, :], horizon + 1).min(axis=1)
            exists[:, j] = any_cross
            starts[:, j] = np.where(any_cross, first.astype(int), 0)
            ends[:, j] = np.where(any_cross, horizon, 0)
        return PredictionBatch(exists=exists, starts=starts, ends=ends, horizon=horizon)
