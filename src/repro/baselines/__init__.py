"""All algorithms compared in §VI.B.

EventHit decision rules: :class:`EHO`, :class:`EHC`, :class:`EHR`,
:class:`EHCR`.  Reference points: :class:`Oracle` (OPT) and
:class:`BruteForce` (BF).  External baselines: :class:`CoxPredictor`
(survival regression), :class:`VQSPredictor` (BlazeIt-style filter), and
:class:`PointProcessPredictor` (APP-VAE surrogate).
"""

from .base import OutputCache, Predictor
from .variants import EHC, EHCR, EHO, EHR
from .oracle import Oracle
from .brute_force import BruteForce
from .cox import CoxModel, CoxPredictor, fit_cox
from .vqs import TrainedVQSPredictor, VQSPredictor
from .appvae import PointProcessPredictor

__all__ = [
    "Predictor",
    "OutputCache",
    "EHO",
    "EHC",
    "EHR",
    "EHCR",
    "Oracle",
    "BruteForce",
    "CoxPredictor",
    "CoxModel",
    "fit_cox",
    "VQSPredictor",
    "TrainedVQSPredictor",
    "PointProcessPredictor",
]
