"""OPT — the theoretical optimum (§VI.B item 5): full knowledge of every
true event interval; relays exactly the event frames.  REC = 1, SPL = 0."""

from __future__ import annotations

import numpy as np

from ..core.inference import PredictionBatch
from ..data.records import RecordSet

__all__ = ["Oracle"]


class Oracle:
    """Relay the true occurrence intervals and nothing else."""

    name = "OPT"

    def predict(self, records: RecordSet, **knobs) -> PredictionBatch:
        if knobs:
            raise TypeError(f"unexpected knobs {sorted(knobs)}")
        exists = records.labels > 0
        return PredictionBatch(
            exists=exists,
            starts=np.where(exists, records.starts, 0),
            ends=np.where(exists, records.ends, 0),
            horizon=records.horizon,
        )
