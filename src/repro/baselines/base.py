"""Common predictor interface for all §VI.B algorithms.

Every algorithm consumes a :class:`~repro.data.records.RecordSet` and emits
a :class:`~repro.core.inference.PredictionBatch`; tunable knobs (c, α,
τ_cox, τ_vqs, ...) are keyword arguments of :meth:`predict` so the harness
can sweep them to trace REC–SPL curves.
"""

from __future__ import annotations

from typing import Dict, Protocol, runtime_checkable

import numpy as np

from ..core.inference import PredictionBatch
from ..core.model import EventHit, EventHitOutput
from ..data.records import RecordSet

__all__ = ["Predictor", "OutputCache"]


@runtime_checkable
class Predictor(Protocol):
    """An algorithm that predicts event existence + occurrence intervals."""

    name: str

    def predict(self, records: RecordSet, **knobs) -> PredictionBatch:
        ...


class OutputCache:
    """Memoise EventHit forward passes per RecordSet.

    Knob sweeps call ``predict`` dozens of times on the same records; the
    network output does not depend on the knobs, so it is computed once.
    The cache is keyed by object identity — RecordSets are treated as
    immutable snapshots throughout the harness.
    """

    def __init__(self, model: EventHit):
        self.model = model
        self._store: Dict[int, EventHitOutput] = {}

    def output_for(self, records: RecordSet) -> EventHitOutput:
        key = id(records)
        if key not in self._store:
            self._store[key] = self.model.predict(records.covariates)
        return self._store[key]

    def clear(self) -> None:
        self._store.clear()
