"""BF — brute force (§VI.B item 6): relay every frame of every horizon to
the CI.  REC = 1, SPL = 1; the cost ceiling every other algorithm is
measured against."""

from __future__ import annotations

import numpy as np

from ..core.inference import PredictionBatch
from ..data.records import RecordSet

__all__ = ["BruteForce"]


class BruteForce:
    """Relay the entire horizon for every event of every record."""

    name = "BF"

    def predict(self, records: RecordSet, **knobs) -> PredictionBatch:
        if knobs:
            raise TypeError(f"unexpected knobs {sorted(knobs)}")
        shape = records.labels.shape
        return PredictionBatch(
            exists=np.ones(shape, dtype=bool),
            starts=np.ones(shape, dtype=int),
            ends=np.full(shape, records.horizon, dtype=int),
            horizon=records.horizon,
        )
