"""APP-VAE surrogate — a temporal point-process predictor (§VI.B item 9).

The paper compares against APP-VAE [41], a variational point-process model
that encodes the past sequence of action units and predicts which action
occurs next and when.  The generative VAE machinery is not reproducible
offline, but its *decision surface* for this task is: a renewal point
process per event type over the observed onset history, predicting the next
onset time and typical duration.  We implement exactly that:

* fit a log-normal inter-onset gap distribution and an empirical duration
  mean per event type from the training stream's action-unit history;
* at prediction time, condition on the elapsed time u since the last onset
  (visible in the record's collection window history) and compute
  ``P(next onset within H | gap > u)``; if it clears ``p_threshold`` the
  event is predicted, with the interval centred on the conditional median
  remaining time.

As in the paper, the model needs a *large* collection window (it must reach
back to the previous onset) — modelled by the ``history_window`` parameter,
which also drives its feature-extraction cost in the timing benchmarks
(APP-VAE_200 vs APP-VAE_1500).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np
from scipy import stats

from ..core.inference import PredictionBatch
from ..data.records import RecordSet
from ..video.events import EventType
from ..video.stream import VideoStream

__all__ = ["PointProcessPredictor"]


@dataclass
class _EventProcess:
    """Fitted renewal process of one event type."""

    log_gap_mean: float
    log_gap_std: float
    duration_mean: float

    def gap_cdf(self, t: np.ndarray) -> np.ndarray:
        """P(gap ≤ t) under the fitted log-normal."""
        t = np.maximum(np.asarray(t, dtype=float), 1e-9)
        return stats.norm.cdf(
            (np.log(t) - self.log_gap_mean) / max(self.log_gap_std, 1e-6)
        )

    def prob_onset_within(self, elapsed: np.ndarray, horizon: int) -> np.ndarray:
        """P(next onset ≤ elapsed + H | gap > elapsed)."""
        elapsed = np.asarray(elapsed, dtype=float)
        upper = self.gap_cdf(elapsed + horizon)
        lower = self.gap_cdf(elapsed)
        denom = np.maximum(1.0 - lower, 1e-9)
        return np.clip((upper - lower) / denom, 0.0, 1.0)

    def conditional_median_remaining(
        self, elapsed: np.ndarray, horizon: int
    ) -> np.ndarray:
        """Median of (gap − elapsed) conditioned on the onset landing in H."""
        elapsed = np.asarray(elapsed, dtype=float)
        lower = self.gap_cdf(elapsed)
        upper = self.gap_cdf(elapsed + horizon)
        target = lower + 0.5 * np.maximum(upper - lower, 1e-9)
        target = np.clip(target, 1e-9, 1 - 1e-9)
        quantile = np.exp(
            self.log_gap_mean + self.log_gap_std * stats.norm.ppf(target)
        )
        return np.maximum(1.0, quantile - elapsed)


class PointProcessPredictor:
    """Per-event renewal-process predictor over onset history.

    Parameters
    ----------
    history_window:
        How far back (frames) the model can see past onsets — the
        APP-VAE collection window M (200 or 1500 in the paper).  Records
        whose last onset lies beyond the window fall back to the prior
        (elapsed = mean gap), which is what makes the small-window variant
        weak, as the paper observes.
    """

    name = "APP-VAE"

    def __init__(self, history_window: int = 200):
        if history_window <= 0:
            raise ValueError("history_window must be positive")
        self.history_window = history_window
        self._processes: Optional[List[_EventProcess]] = None
        self._event_types: Optional[List[EventType]] = None

    @property
    def is_fitted(self) -> bool:
        return self._processes is not None

    # ------------------------------------------------------------------
    def fit(
        self, stream: VideoStream, event_types: Sequence[EventType]
    ) -> "PointProcessPredictor":
        """MLE of the log-normal gap and mean duration per event type."""
        if not event_types:
            raise ValueError("event_types must be non-empty")
        processes: List[_EventProcess] = []
        for event_type in event_types:
            instances = stream.schedule.instances_of(event_type)
            if len(instances) < 3:
                raise ValueError(
                    f"need >= 3 instances of {event_type.name} to fit gaps"
                )
            onsets = np.array([inst.start for inst in instances], dtype=float)
            gaps = np.diff(onsets)
            log_gaps = np.log(np.maximum(gaps, 1.0))
            durations = np.array([inst.duration for inst in instances], dtype=float)
            processes.append(
                _EventProcess(
                    log_gap_mean=float(log_gaps.mean()),
                    log_gap_std=float(max(log_gaps.std(), 1e-3)),
                    duration_mean=float(durations.mean()),
                )
            )
        self._processes = processes
        self._event_types = list(event_types)
        return self

    # ------------------------------------------------------------------
    def _elapsed_since_last_onset(
        self, stream: VideoStream, frames: np.ndarray, event_type: EventType
    ) -> np.ndarray:
        """Elapsed frames since the last onset visible in the history window.

        Falls back to the fitted mean gap when no onset is visible.
        """
        onsets = np.array(
            [inst.start for inst in stream.schedule.instances_of(event_type)]
        )
        k = self._event_types.index(event_type)
        prior = float(np.exp(self._processes[k].log_gap_mean))
        elapsed = np.full(frames.shape, prior, dtype=float)
        if onsets.size == 0:
            return elapsed
        idx = np.searchsorted(onsets, frames, side="right") - 1
        visible = idx >= 0
        gap = np.where(visible, frames - onsets[np.maximum(idx, 0)], np.inf)
        in_window = visible & (gap <= self.history_window)
        elapsed[in_window] = gap[in_window]
        return elapsed

    def predict(
        self, records: RecordSet, stream: Optional[VideoStream] = None, **knobs
    ) -> PredictionBatch:
        """Predict onsets from the renewal process.

        Parameters
        ----------
        records:
            Test records (frames + horizon).
        stream:
            The stream the records came from (supplies onset history).
        knobs:
            ``p_threshold`` — existence probability cut (default 0.5,
            the paper treats APP-VAE as a fixed operating point).
        """
        p_threshold = knobs.pop("p_threshold", 0.5)
        if knobs:
            raise TypeError(f"unexpected knobs {sorted(knobs)}")
        if self._processes is None:
            raise RuntimeError("call fit() before predict()")
        if stream is None:
            raise ValueError("PointProcessPredictor.predict requires the stream")
        if records.num_events != len(self._processes):
            raise ValueError("records' event count differs from the fitted one")
        horizon = records.horizon
        b, k = records.labels.shape
        exists = np.zeros((b, k), dtype=bool)
        starts = np.zeros((b, k), dtype=int)
        ends = np.zeros((b, k), dtype=int)
        for j, (process, event_type) in enumerate(
            zip(self._processes, self._event_types)
        ):
            elapsed = self._elapsed_since_last_onset(
                stream, records.frames, event_type
            )
            prob = process.prob_onset_within(elapsed, horizon)
            hit = prob >= p_threshold
            remaining = process.conditional_median_remaining(elapsed, horizon)
            start = np.clip(np.round(remaining).astype(int), 1, horizon)
            end = np.clip(
                start + int(round(process.duration_mean)), 1, horizon
            )
            exists[:, j] = hit
            starts[:, j] = np.where(hit, start, 0)
            ends[:, j] = np.where(hit, end, 0)
        return PredictionBatch(exists=exists, starts=starts, ends=ends, horizon=horizon)
