"""VQS — BlazeIt-style video-query-system baselines (§VI.B item 8).

BlazeIt/NoScope filter frames with cheap *specialized* models before the
heavy reference model.  Two adaptations to the marshalling problem:

* :class:`VQSPredictor` — thresholds raw detector object counts per
  horizon, the literal reading of §VI.B ("the number of frames containing
  target object types exceeds the threshold");
* :class:`TrainedVQSPredictor` — the NoScope/BlazeIt-faithful variant: a
  tiny per-event neural filter trained on cheap per-frame features to
  predict event-frame membership, whose positive-frame counts are then
  thresholded per horizon.

Both relay *whole horizons* — they filter but cannot predict *when* within
the horizon the event occurs, which is why their REC–SPL curves sit far
from EventHit's.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .. import nn
from ..core.inference import PredictionBatch
from ..data.records import RecordSet
from ..features.detectors import SimulatedObjectDetector
from ..features.extractors import FeatureMatrix
from ..video.events import EventType
from ..video.stream import VideoStream

__all__ = ["VQSPredictor", "TrainedVQSPredictor"]


class VQSPredictor:
    """Threshold filter on per-horizon target-object frame counts.

    Parameters
    ----------
    stream:
        The (test) stream whose frames the cheap detector scans.
    event_types:
        Event types in the record column order.
    detector:
        Cheap detector supplying per-frame object counts.
    min_objects:
        A frame "contains target objects" when the detector count is at
        least this.
    """

    name = "VQS"

    def __init__(
        self,
        stream: VideoStream,
        event_types: Sequence[EventType],
        detector: Optional[SimulatedObjectDetector] = None,
        min_objects: int = 2,
    ):
        if not event_types:
            raise ValueError("event_types must be non-empty")
        if min_objects < 1:
            raise ValueError("min_objects must be >= 1")
        detector = detector or SimulatedObjectDetector()
        self.stream = stream
        self.event_types = list(event_types)
        # Precompute per-frame "contains objects" indicators per event, then
        # a prefix sum for O(1) horizon counting.
        self._prefix: List[np.ndarray] = []
        for event_type in self.event_types:
            counts = detector.counts(stream, event_type)
            contains = (counts >= min_objects).astype(np.int64)
            self._prefix.append(np.concatenate([[0], np.cumsum(contains)]))

    def horizon_counts(self, records: RecordSet) -> np.ndarray:
        """(B, K): frames containing target objects in each record's horizon."""
        frames = records.frames
        horizon = records.horizon
        if frames.max() + horizon >= self.stream.length:
            raise ValueError("records' horizons exceed the bound stream")
        out = np.zeros((len(records), len(self.event_types)), dtype=int)
        for k, prefix in enumerate(self._prefix):
            # horizon frames are (frame, frame + H]
            out[:, k] = prefix[frames + horizon + 1] - prefix[frames + 1]
        return out

    def predict(self, records: RecordSet, **knobs) -> PredictionBatch:
        """Relay full horizons whose object-frame count ≥ τ."""
        tau = knobs.pop("tau", 1)
        if knobs:
            raise TypeError(f"unexpected knobs {sorted(knobs)}")
        if tau < 0:
            raise ValueError("tau must be non-negative")
        if records.num_events != len(self.event_types):
            raise ValueError(
                f"records have {records.num_events} events; VQS was built "
                f"for {len(self.event_types)}"
            )
        counts = self.horizon_counts(records)
        exists = counts >= tau
        shape = exists.shape
        return PredictionBatch(
            exists=exists,
            starts=np.where(exists, 1, 0),
            ends=np.where(exists, records.horizon, 0),
            horizon=records.horizon,
        )


class TrainedVQSPredictor:
    """Specialized-NN filter (NoScope/BlazeIt style).

    One tiny MLP per event type is trained on per-frame feature vectors to
    predict "this frame belongs to an event occurrence", using the ground
    truth of a training stream (in BlazeIt the labels come from running the
    reference model once, which is equivalent here since the simulated CI
    is accurate).  At query time the filter classifies every frame of the
    bound test stream; horizons whose predicted-positive frame count
    reaches τ are relayed in full.

    Usage: ``fit(train_stream, train_features, event_types)`` →
    ``bind(test_stream, test_features)`` → ``predict(records, tau=...)``.
    """

    name = "VQS-NN"

    def __init__(
        self,
        hidden: int = 8,
        epochs: int = 10,
        learning_rate: float = 1e-2,
        batch_size: int = 256,
        max_train_frames: int = 20_000,
        seed: int = 0,
    ):
        if hidden <= 0 or epochs <= 0 or batch_size <= 0:
            raise ValueError("hidden, epochs and batch_size must be positive")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if max_train_frames <= 0:
            raise ValueError("max_train_frames must be positive")
        self.hidden = hidden
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.max_train_frames = max_train_frames
        self.seed = seed
        self._filters: Optional[List[nn.MLP]] = None
        self._event_types: Optional[List[EventType]] = None
        self._prefix: Optional[List[np.ndarray]] = None
        self._bound_length: Optional[int] = None

    @property
    def is_fitted(self) -> bool:
        return self._filters is not None

    @property
    def is_bound(self) -> bool:
        return self._prefix is not None

    # ------------------------------------------------------------------
    def fit(
        self,
        stream: VideoStream,
        features: FeatureMatrix,
        event_types: Sequence[EventType],
    ) -> "TrainedVQSPredictor":
        """Train one frame filter per event type on ``stream``'s truth."""
        if not event_types:
            raise ValueError("event_types must be non-empty")
        if features.num_frames != stream.length:
            raise ValueError("feature matrix length != stream length")
        rng = np.random.default_rng(self.seed)
        filters: List[nn.MLP] = []
        for event_type in event_types:
            labels = stream.schedule.occupancy_mask(event_type).astype(float)
            # Class-balanced frame subsample keeps training cheap & stable.
            positives = np.flatnonzero(labels > 0)
            negatives = np.flatnonzero(labels == 0)
            if positives.size == 0:
                raise ValueError(
                    f"training stream has no frames of {event_type.name}"
                )
            per_class = min(
                self.max_train_frames // 2, positives.size, negatives.size
            )
            chosen = np.concatenate([
                rng.choice(positives, size=per_class, replace=False),
                rng.choice(negatives, size=per_class, replace=False),
            ])
            x = features.values[chosen]
            y = labels[chosen].reshape(-1, 1)

            model = nn.MLP(
                x.shape[1], [self.hidden], 1,
                activation="tanh", output_activation="sigmoid", rng=rng,
            )
            optimizer = nn.Adam(model.parameters(), lr=self.learning_rate)
            n = x.shape[0]
            for _ in range(self.epochs):
                order = rng.permutation(n)
                for lo in range(0, n, self.batch_size):
                    batch = order[lo : lo + self.batch_size]
                    optimizer.zero_grad()
                    pred = model(nn.Tensor(x[batch]))
                    loss = nn.functional.binary_cross_entropy(pred, y[batch])
                    loss.backward()
                    optimizer.step()
            model.eval()
            filters.append(model)
        self._filters = filters
        self._event_types = list(event_types)
        return self

    def bind(self, stream: VideoStream, features: FeatureMatrix) -> "TrainedVQSPredictor":
        """Classify every frame of the query stream; cache prefix sums."""
        if self._filters is None:
            raise RuntimeError("fit() before bind()")
        if features.num_frames != stream.length:
            raise ValueError("feature matrix length != stream length")
        prefix: List[np.ndarray] = []
        with nn.no_grad():
            for model in self._filters:
                scores = model(nn.Tensor(features.values)).data.ravel()
                positive = (scores >= 0.5).astype(np.int64)
                prefix.append(np.concatenate([[0], np.cumsum(positive)]))
        self._prefix = prefix
        self._bound_length = stream.length
        return self

    def predict(self, records: RecordSet, **knobs) -> PredictionBatch:
        """Relay full horizons whose predicted-positive frame count ≥ τ."""
        tau = knobs.pop("tau", 1)
        if knobs:
            raise TypeError(f"unexpected knobs {sorted(knobs)}")
        if tau < 0:
            raise ValueError("tau must be non-negative")
        if self._prefix is None:
            raise RuntimeError("bind() before predict()")
        if records.num_events != len(self._filters):
            raise ValueError("records' event count differs from the fitted one")
        frames = records.frames
        horizon = records.horizon
        if frames.max() + horizon >= self._bound_length:
            raise ValueError("records' horizons exceed the bound stream")
        counts = np.zeros((len(records), records.num_events), dtype=int)
        for k, prefix in enumerate(self._prefix):
            counts[:, k] = prefix[frames + horizon + 1] - prefix[frames + 1]
        exists = counts >= tau
        return PredictionBatch(
            exists=exists,
            starts=np.where(exists, 1, 0),
            ends=np.where(exists, horizon, 0),
            horizon=horizon,
        )
