"""Multi-event monitoring: one EventHit, several events of interest.

The paper's §VI.D observation for multi-event tasks (TA7–TA9): a single
shared encoder serves all event heads, and the task's overall accuracy is
bound by its hardest constituent event.  This example trains on TA7
({E1, E5} — one easy Group 1 event and one hard Group 2 event), prints the
per-event existence/interval quality, and shows the binding effect against
the single-event tasks TA1 ({E1}) and TA5 ({E5}).

Usage::

    python examples/multi_event_monitoring.py
"""

import numpy as np

from repro import ExperimentSettings, run_experiment
from repro.harness import format_table


def per_event_rows(experiment, confidence=0.95, alpha=0.9):
    """Evaluate EHCR separately for each event of a multi-event task."""
    from repro.metrics import per_event_summaries

    prediction = experiment._predict("EHCR", confidence=confidence, alpha=alpha)
    summaries = per_event_summaries(prediction, experiment.data.test)
    return [
        {"event": name, **summary.as_dict()}
        for name, summary in summaries.items()
    ]


def main() -> None:
    settings = ExperimentSettings(scale=0.06, max_records=300, epochs=20, seed=0)

    print("Training the joint model for TA7 = {E1, E5}...")
    ta7 = run_experiment("TA7", settings=settings)
    print()
    print("Per-event quality inside the joint task (EHCR, c=0.95, a=0.9):")
    print(format_table(per_event_rows(ta7)))

    joint = ta7.evaluate("EHCR", confidence=0.95, alpha=0.9)
    print()
    print(f"Joint TA7 REC = {joint.rec:.3f}, SPL = {joint.spl:.3f}")

    print()
    print("Single-event reference tasks:")
    rows = []
    for task_id in ("TA1", "TA5"):
        experiment = run_experiment(task_id, settings=settings)
        summary = experiment.evaluate("EHCR", confidence=0.95, alpha=0.9)
        rows.append({"task": task_id, **summary.as_dict()})
    print(format_table(rows))

    print()
    print(
        "Expected shape (paper §VI.D): E1 (short, regular — Group 1) scores "
        "well; E5 (long, high-variance — Group 2) drags the joint task, so "
        "TA7 sits between TA1 and TA5 and is bound by its worst event."
    )


if __name__ == "__main__":
    main()
