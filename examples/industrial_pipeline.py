"""Industrial automation: defective products on a pipeline (§I, example 2).

The paper's second motivating scenario: "recognizing defective products in
industrial pipelines, which may be i.i.d. based on a Poisson or geometric
distribution, and triggering automated removal".  A camera watches the
belt; defects arrive *geometrically* (each product is independently
defective with small probability); the cloud model confirms defects and an
actuator removes them.  Missing a defect ships a bad product, so the
operator runs C-CLASSIFY at a high confidence level and treats the
guarantee as a quality-control budget.

Usage::

    python examples/industrial_pipeline.py
"""

import numpy as np

from repro.cloud import CloudInferenceService, StreamMarshaller
from repro.conformal import ConformalClassifier, ConformalRegressor
from repro.core import EventHitConfig, train_eventhit
from repro.data import DatasetBuilder
from repro.features import CovariatePipeline, FeatureExtractor, Standardizer
from repro.video.arrivals import GeometricArrivals
from repro.video.events import EventInstance, EventSchedule, EventType
from repro.video.stream import VideoStream

# A defect is visible while the faulty product crosses the inspection zone.
DEFECT = EventType("defect", duration_mean=30, duration_std=4, lead_time=120,
                   predictability=0.88)
WINDOW, HORIZON = 10, 150
DEFECT_PROBABILITY = 1 / 2200  # per-frame chance a defective item enters


def build_line(length, seed):
    """Geometric defect arrivals along the belt."""
    rng = np.random.default_rng(seed)
    onsets = GeometricArrivals(DEFECT_PROBABILITY).sample(length, rng)
    instances, last_end = [], -1
    for onset in onsets:
        if onset <= last_end:
            continue
        end = min(onset + DEFECT.sample_duration(rng) - 1, length - 1)
        instances.append(EventInstance(onset, end, DEFECT))
        last_end = end
    return VideoStream(length, EventSchedule(length, instances), seed=seed)


def main() -> None:
    extractor = FeatureExtractor()
    train_line = build_line(60_000, seed=11)
    calib_line = build_line(60_000, seed=12)
    shift_line = build_line(100_000, seed=13)  # one production shift
    print(
        f"Lines ready: {train_line.schedule.occurrence_count(DEFECT)} training "
        f"defects, {shift_line.schedule.occurrence_count(DEFECT)} defects in "
        f"the monitored shift "
        f"({shift_line.occupancy_fraction(DEFECT):.2%} of frames)."
    )

    train_features = extractor.extract(train_line, [DEFECT])
    standardizer = Standardizer.fit(train_features.values)
    pipeline = CovariatePipeline(WINDOW, standardizer=standardizer)
    builder = DatasetBuilder(WINDOW, HORIZON, stride=WINDOW, pipeline=pipeline)
    rng = np.random.default_rng(0)
    train_records = builder.build(train_line, train_features, [DEFECT],
                                  max_records=350, rng=rng)
    calib_features = extractor.extract(calib_line, [DEFECT])
    calib_records = builder.build(calib_line, calib_features, [DEFECT],
                                  max_records=250, rng=rng)

    config = EventHitConfig(
        window_size=WINDOW, horizon=HORIZON, lstm_hidden=16,
        shared_hidden=(16,), head_hidden=(32,), dropout=0.0,
        learning_rate=5e-3, epochs=18, batch_size=32, seed=0,
    )
    print("Training EventHit on the inspection features...")
    model, _ = train_eventhit(train_records, config=config)
    classifier = ConformalClassifier(model).calibrate(calib_records)
    regressor = ConformalRegressor(model).calibrate(calib_records)

    shift_features = extractor.extract(shift_line, [DEFECT])

    print()
    print(f"{'c':>5} {'recall':>8} {'relayed':>9} {'bill':>8}  guarantee")
    for confidence in (0.80, 0.90, 0.97):
        service = CloudInferenceService(shift_line)
        marshaller = StreamMarshaller(
            model, [DEFECT], pipeline,
            classifier=classifier, regressor=regressor,
            confidence=confidence, alpha=0.9,
        )
        report = marshaller.run(shift_line, shift_features, service)
        print(
            f"{confidence:>5.2f} {report.frame_recall:>8.1%} "
            f"{report.relay_fraction:>9.1%} ${report.total_cost:>7.2f}  "
            f"miss rate <= {1 - confidence:.0%} (Thm 4.2)"
        )

    print()
    print(
        "Raising c buys defect recall with a calibrated guarantee; the "
        "residual miss budget (1 - c) is the quality-control number the "
        "line manager signs off on, and the bill stays a fraction of the "
        f"${shift_line.length * 0.001:,.0f} brute-force cost."
    )


if __name__ == "__main__":
    main()
