"""Surveillance automation: the paper's motivating scenario end to end.

A construction-site camera watches for trucks approaching a gate (Poisson
arrivals, §I).  The cloud service charges $0.001 per analysed frame, so
sending the raw stream is expensive.  This example builds the scenario from
library primitives — a custom event type, a Poisson schedule, simulated
detector features — then deploys the trained EventHit behind a
:class:`~repro.cloud.StreamMarshaller` and reports the monthly bill with
and without marshalling.

Usage::

    python examples/surveillance_gate.py
"""

import numpy as np

from repro.cloud import CloudInferenceService, FlatPricing, StreamMarshaller
from repro.conformal import ConformalClassifier, ConformalRegressor
from repro.core import EventHitConfig, train_eventhit
from repro.data import DatasetBuilder
from repro.features import CovariatePipeline, FeatureExtractor, Standardizer
from repro.video.arrivals import PoissonArrivals
from repro.video.events import EventInstance, EventSchedule, EventType
from repro.video.stream import VideoStream

TRUCK = EventType(
    name="truck-at-gate",
    duration_mean=90,
    duration_std=15,
    lead_time=260,  # the truck is visible on the access road before the gate
    predictability=0.9,
)

HORIZON = 240
WINDOW = 20


def build_stream(length: int, seed: int) -> VideoStream:
    """Poisson truck arrivals (≈ one per 2500 frames), gamma durations."""
    rng = np.random.default_rng(seed)
    onsets = PoissonArrivals(rate=1 / 2500).sample(length, rng)
    instances = []
    last_end = -1
    for onset in onsets:
        if onset <= last_end:
            continue
        duration = TRUCK.sample_duration(rng)
        end = min(onset + duration - 1, length - 1)
        instances.append(EventInstance(onset, end, TRUCK))
        last_end = end
    return VideoStream(length, EventSchedule(length, instances), seed=seed)


def main() -> None:
    extractor = FeatureExtractor()
    train_stream = build_stream(60_000, seed=1)
    calib_stream = build_stream(60_000, seed=2)
    live_stream = build_stream(120_000, seed=3)
    print(
        f"Streams ready: {train_stream.schedule.occurrence_count(TRUCK)} "
        f"training arrivals, {live_stream.schedule.occurrence_count(TRUCK)} "
        f"live arrivals, occupancy "
        f"{live_stream.occupancy_fraction(TRUCK):.1%} of frames."
    )

    # ------------------------------------------------------------------
    # Training data: §II triplets from the training stream.
    # ------------------------------------------------------------------
    train_features = extractor.extract(train_stream, [TRUCK])
    standardizer = Standardizer.fit(train_features.values)
    pipeline = CovariatePipeline(WINDOW, standardizer=standardizer)
    builder = DatasetBuilder(
        window_size=WINDOW, horizon=HORIZON, stride=WINDOW, pipeline=pipeline
    )
    rng = np.random.default_rng(0)
    train_records = builder.build(
        train_stream, train_features, [TRUCK], max_records=400, rng=rng
    )
    calib_features = extractor.extract(calib_stream, [TRUCK])
    calib_records = builder.build(
        calib_stream, calib_features, [TRUCK], max_records=300, rng=rng
    )

    config = EventHitConfig(
        window_size=WINDOW,
        horizon=HORIZON,
        lstm_hidden=16,
        shared_hidden=(16,),
        head_hidden=(32,),
        dropout=0.0,
        learning_rate=5e-3,
        epochs=20,
        batch_size=32,
        seed=0,
    )
    print("Training EventHit...")
    model, history = train_eventhit(train_records, config=config)
    print(
        f"  {history.epochs_run} epochs, final loss "
        f"{history.final_train_loss:.4f} ({history.seconds:.1f}s)"
    )

    classifier = ConformalClassifier(model).calibrate(calib_records)
    regressor = ConformalRegressor(model).calibrate(calib_records)

    # ------------------------------------------------------------------
    # Deployment: marshal the live stream through the paid CI.
    # ------------------------------------------------------------------
    pricing = FlatPricing(price_per_frame=0.001)
    live_features = extractor.extract(live_stream, [TRUCK])

    service = CloudInferenceService(live_stream, pricing=pricing)
    marshaller = StreamMarshaller(
        model,
        [TRUCK],
        pipeline,
        classifier=classifier,
        regressor=regressor,
        confidence=0.97,
        alpha=0.95,
    )
    report = marshaller.run(live_stream, live_features, service)

    brute_force_cost = report.frames_covered * pricing.price_per_frame
    print()
    print(f"Horizons evaluated   : {report.horizons_evaluated}")
    print(f"Frames covered       : {report.frames_covered}")
    print(f"Frames relayed to CI : {report.frames_relayed} "
          f"({report.relay_fraction:.1%})")
    print(f"Truck-frame recall   : {report.frame_recall:.1%}")
    print(f"Gate events detected : "
          f"{len({(d.start, d.end) for d in report.detections})}")
    print(f"Marshalled bill      : ${report.total_cost:,.2f}")
    print(f"Brute-force bill     : ${brute_force_cost:,.2f}")
    print(f"Savings              : "
          f"${report.cost_saving_vs_brute_force(pricing.price_per_frame):,.2f}")


if __name__ == "__main__":
    main()
