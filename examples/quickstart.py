"""Quickstart: train EventHit on one task and compare the decision rules.

Runs the full pipeline on task TA10 (THUMOS "Volleyball Spiking") at a
small synthetic scale: generate streams, extract covariates, train the
network, calibrate C-CLASSIFY / C-REGRESS, and print the §VI.C measures of
every algorithm the paper compares.

Usage::

    python examples/quickstart.py
"""

from repro import ExperimentSettings, run_experiment
from repro.harness import format_table


def main() -> None:
    settings = ExperimentSettings(scale=0.08, max_records=300, epochs=20, seed=0)
    print("Preparing experiment for task TA10 (this trains EventHit)...")
    experiment = run_experiment("TA10", settings=settings)

    rows = []
    rows.append({"algorithm": "OPT", **experiment.evaluate("OPT").as_dict()})
    rows.append({"algorithm": "BF", **experiment.evaluate("BF").as_dict()})
    rows.append({"algorithm": "EHO", **experiment.evaluate("EHO").as_dict()})
    rows.append(
        {
            "algorithm": "EHC (c=0.95)",
            **experiment.evaluate("EHC", confidence=0.95).as_dict(),
        }
    )
    rows.append(
        {
            "algorithm": "EHR (a=0.9)",
            **experiment.evaluate("EHR", alpha=0.9).as_dict(),
        }
    )
    rows.append(
        {
            "algorithm": "EHCR (c=0.95, a=0.9)",
            **experiment.evaluate("EHCR", confidence=0.95, alpha=0.9).as_dict(),
        }
    )
    rows.append(
        {"algorithm": "COX (tau=0.3)", **experiment.evaluate("COX", tau=0.3).as_dict()}
    )
    rows.append(
        {"algorithm": "VQS (tau=10)", **experiment.evaluate("VQS", tau=10).as_dict()}
    )

    print()
    print(format_table(rows))
    print()
    print(
        "Reading guide: REC is frame-level recall of true event frames; "
        "SPL is the fraction of non-event frames wastefully relayed to the "
        "cloud.  OPT/BF are the ideal and brute-force corners; EHCR should "
        "trade a little SPL for near-complete REC."
    )


if __name__ == "__main__":
    main()
