"""Live deployment: frame-by-frame marshalling with a ring buffer.

The other examples evaluate on batched record sets; this one mimics the
production loop of Fig. 1 as a camera would drive it:

1. train EventHit offline on *track-derived* covariates (the paper's
   VIRAT feature recipe: approach distance, motion, object counts) and
   save a checkpoint;
2. reload the checkpoint in a fresh "edge process";
3. consume the live stream one frame at a time through a
   :class:`~repro.features.StreamingCovariateBuffer`, predicting a horizon
   whenever one elapses and relaying only the predicted intervals.

Usage::

    python examples/live_deployment.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.cloud import CloudInferenceService, FlatPricing
from repro.conformal import ConformalClassifier, ConformalRegressor
from repro.core import (
    EventHitConfig,
    load_checkpoint,
    save_checkpoint,
    train_eventhit,
)
from repro.data import DatasetBuilder
from repro.features import (
    CovariatePipeline,
    Standardizer,
    StreamingCovariateBuffer,
    TrackFeatureExtractor,
)
from repro.video.arrivals import PoissonArrivals
from repro.video.events import EventInstance, EventSchedule, EventType
from repro.video.stream import VideoStream

TRUCK = EventType("truck", duration_mean=60, duration_std=8, lead_time=150,
                  predictability=0.9)
WINDOW, HORIZON = 12, 160


def build_stream(length, seed):
    rng = np.random.default_rng(seed)
    onsets = PoissonArrivals(rate=1 / 1800).sample(length, rng)
    instances, last_end = [], -1
    for onset in onsets:
        if onset <= last_end:
            continue
        end = min(onset + TRUCK.sample_duration(rng) - 1, length - 1)
        instances.append(EventInstance(onset, end, TRUCK))
        last_end = end
    return VideoStream(length, EventSchedule(length, instances), seed=seed)


def main() -> None:
    extractor = TrackFeatureExtractor()

    # ------------------------------------------------------------------
    # Offline training + checkpoint.
    # ------------------------------------------------------------------
    print("Training offline on track-derived covariates...")
    train_stream = build_stream(50_000, seed=1)
    calib_stream = build_stream(50_000, seed=2)
    train_features = extractor.extract(train_stream, [TRUCK])
    standardizer = Standardizer.fit(train_features.values)
    pipeline = CovariatePipeline(WINDOW, standardizer=standardizer)
    builder = DatasetBuilder(WINDOW, HORIZON, stride=WINDOW, pipeline=pipeline)
    rng = np.random.default_rng(0)
    train_records = builder.build(train_stream, train_features, [TRUCK],
                                  max_records=350, rng=rng)
    calib_features = extractor.extract(calib_stream, [TRUCK])
    calib_records = builder.build(calib_stream, calib_features, [TRUCK],
                                  max_records=250, rng=rng)
    config = EventHitConfig(
        window_size=WINDOW, horizon=HORIZON, lstm_hidden=16,
        shared_hidden=(16,), head_hidden=(32,), dropout=0.0,
        learning_rate=5e-3, epochs=18, batch_size=32, seed=0,
    )
    model, history = train_eventhit(train_records, config=config)
    print(f"  trained {history.epochs_run} epochs, "
          f"loss {history.final_train_loss:.4f}")

    checkpoint = Path(tempfile.gettempdir()) / "eventhit_live_demo.npz"
    save_checkpoint(model, checkpoint)
    print(f"  checkpoint written to {checkpoint}")

    # ------------------------------------------------------------------
    # Edge process: reload + calibrate + consume the live stream.
    # ------------------------------------------------------------------
    edge_model = load_checkpoint(checkpoint)
    classifier = ConformalClassifier(edge_model).calibrate(calib_records)
    regressor = ConformalRegressor(edge_model).calibrate(calib_records)

    live_stream = build_stream(80_000, seed=3)
    live_features = extractor.extract(live_stream, [TRUCK])
    service = CloudInferenceService(live_stream, pricing=FlatPricing(0.001))
    buffer = StreamingCovariateBuffer(WINDOW, live_features.num_channels,
                                      standardizer=standardizer)

    print("Consuming the live stream frame by frame...")
    confidence, alpha = 0.95, 0.9
    frames_relayed = 0
    truth_frames = 0
    detected_frames = 0
    horizons = 0
    next_decision = WINDOW - 1

    for frame in range(live_stream.length - HORIZON):
        buffer.push(live_features.values[frame])
        if frame != next_decision:
            continue
        # One horizon decision: predict, relay, skip ahead.
        output = edge_model.predict(buffer.window()[None])
        exists = classifier.predict(output, confidence)
        batch = regressor.predict(output, exists, alpha)
        truth = set()
        for ev in live_stream.schedule.events_in_horizon(TRUCK, frame, HORIZON):
            truth.update(range(frame + ev.start_offset,
                               frame + ev.end_offset + 1))
        truth_frames += len(truth)
        if exists[0, 0]:
            segment = live_stream.segment(
                frame + int(batch.starts[0, 0]), frame + int(batch.ends[0, 0])
            )
            detections = service.detect(segment, TRUCK)
            frames_relayed += segment.num_frames
            covered = set()
            for det in detections:
                covered.update(range(det.start, det.end + 1))
            detected_frames += len(covered & truth)
        horizons += 1
        next_decision = frame + HORIZON

    covered_frames = horizons * HORIZON
    print()
    print(f"Horizon decisions   : {horizons}")
    print(f"Frames covered      : {covered_frames}")
    print(f"Frames relayed      : {frames_relayed} "
          f"({frames_relayed / covered_frames:.1%})")
    recall = detected_frames / truth_frames if truth_frames else float("nan")
    print(f"Truck-frame recall  : {recall:.1%}")
    print(f"Live bill           : ${service.ledger.total_cost:,.2f} "
          f"(brute force would be ${covered_frames * 0.001:,.2f})")


if __name__ == "__main__":
    main()
