"""Tuning the accuracy/cost trade-off with the conformal knobs (c and α).

The paper's central usability claim is that c (C-CLASSIFY confidence) and
α (C-REGRESS coverage) give *probabilistically calibrated* control over
recall vs cloud spend.  This example sweeps both knobs on the surveillance
task TA1 and prints the REC / SPL / dollar-expense frontier, ending with
the cheapest settings that reach several recall targets — exactly how an
operator would pick an operating point.

Usage::

    python examples/cost_tradeoff.py
"""

from repro import ExperimentSettings, run_experiment
from repro.harness import format_table
from repro.metrics import brute_force_expense, expense, optimal_expense


def main() -> None:
    settings = ExperimentSettings(scale=0.06, max_records=300, epochs=20, seed=0)
    print("Preparing experiment for task TA1 (VIRAT: person opening a vehicle)...")
    experiment = run_experiment("TA1", settings=settings)
    records = experiment.data.test

    confidences = (0.6, 0.8, 0.9, 0.95, 0.99, 1.0)
    alphas = (0.3, 0.6, 0.9, 1.0)

    rows = []
    for c in confidences:
        for a in alphas:
            prediction = experiment._predict("EHCR", confidence=c, alpha=a)
            summary = experiment.evaluate("EHCR", confidence=c, alpha=a)
            rows.append(
                {
                    "c": c,
                    "alpha": a,
                    "REC": summary.rec,
                    "SPL": summary.spl,
                    "expense_$": expense(prediction),
                }
            )

    print()
    print(format_table(rows))

    opt_cost = optimal_expense(records)
    bf_cost = brute_force_expense(records)
    print()
    print(f"Reference points: OPT ${opt_cost:.2f}  |  BF ${bf_cost:.2f}")

    print()
    print("Cheapest settings reaching each recall target:")
    for target in (0.7, 0.8, 0.9, 0.95):
        eligible = [r for r in rows if r["REC"] >= target]
        if not eligible:
            print(f"  REC >= {target:.2f}: unreachable with this grid")
            continue
        best = min(eligible, key=lambda r: r["expense_$"])
        print(
            f"  REC >= {target:.2f}: c={best['c']}, alpha={best['alpha']} "
            f"-> REC={best['REC']:.3f}, SPL={best['SPL']:.3f}, "
            f"${best['expense_$']:.2f} "
            f"({best['expense_$'] / bf_cost:.0%} of brute force)"
        )


if __name__ == "__main__":
    main()
