"""Adapting to occurrence-distribution drift (the paper's §VIII future work).

A model is trained on one world (trucks announce themselves 440 frames
ahead), then deployed on a *drifted* world (a layout change cut the warning
to 60 frames and muddied the precursor).  The frozen deployment silently
loses recall; the adaptive deployment audits a fraction of horizons, its
CUSUM chart notices the misses exceeding the conformal budget, and it
recalibrates the conformal layers online from the audited ground truth.

Usage::

    python examples/drift_adaptation.py
"""

import numpy as np

from repro.cloud import CloudInferenceService
from repro.conformal import ConformalClassifier, ConformalRegressor
from repro.core import EventHitConfig, train_eventhit
from repro.data import build_experiment_data
from repro.drift import AdaptiveMarshaller, MissRateCusum
from repro.features import CovariatePipeline, FeatureExtractor
from repro.video import make_thumos
from repro.video.arrivals import FixedCountArrivals
from repro.video.datasets import EVENT_TYPES
from repro.video.events import EventInstance, EventSchedule, EventType
from repro.video.stream import VideoStream


def drifted_stream(spec, seed=9):
    """Same arrival process, changed observability (lead 440 → 60)."""
    drifted_type = EventType(
        name="E7",
        duration_mean=EVENT_TYPES["E7"].duration_mean,
        duration_std=EVENT_TYPES["E7"].duration_std,
        lead_time=60,
        predictability=0.35,
    )
    rng = np.random.default_rng(seed)
    count = spec.occurrences["E7"]
    min_gap = int(drifted_type.duration_mean + 3 * drifted_type.duration_std) + 2
    onsets = FixedCountArrivals(count, min_gap).sample(spec.length, rng)
    instances = []
    for i, onset in enumerate(onsets):
        duration = drifted_type.sample_duration(rng)
        nxt = onsets[i + 1] if i + 1 < len(onsets) else spec.length
        end = min(onset + duration - 1, nxt - 1, spec.length - 1)
        if end >= onset:
            instances.append(EventInstance(onset, end, drifted_type))
    stream = VideoStream(
        spec.length, EventSchedule(spec.length, instances), seed=seed,
        name="drifted-world",
    )
    return stream, drifted_type


def main() -> None:
    spec = make_thumos(scale=0.25).with_events(["E7"])
    print("Training EventHit on the original world...")
    data = build_experiment_data(spec, seed=0, max_records=300, stride=10)
    config = EventHitConfig(
        window_size=spec.window_size, horizon=spec.horizon,
        lstm_hidden=16, shared_hidden=(16,), head_hidden=(32,),
        dropout=0.0, learning_rate=5e-3, epochs=20, batch_size=32, seed=0,
    )
    model, _ = train_eventhit(data.train, config=config)
    pipeline = CovariatePipeline(spec.window_size, standardizer=data.standardizer)

    stream, drifted_type = drifted_stream(spec)
    features = FeatureExtractor().extract(stream, [drifted_type])
    print(f"Deploying on the drifted world "
          f"({stream.schedule.occurrence_count(drifted_type)} events, "
          f"lead time 440 -> 60 frames)...")

    def deploy(audit_rate):
        classifier = ConformalClassifier(model).calibrate(data.calibration)
        regressor = ConformalRegressor(model).calibrate(data.calibration)
        service = CloudInferenceService(stream)
        marshaller = AdaptiveMarshaller(
            model, data.event_types, pipeline, classifier, regressor,
            confidence=0.95, alpha=0.9, audit_rate=audit_rate,
            min_positives=3, seed=3,
            cusum=MissRateCusum(budget=0.05, slack=0.05, threshold=2.0),
        )
        return marshaller.run(stream, features, service)

    frozen = deploy(audit_rate=0.0)
    adaptive = deploy(audit_rate=0.25)

    print()
    print(f"{'':24}{'frozen':>10}{'adaptive':>10}")
    print(f"{'horizons evaluated':24}{frozen.horizons_evaluated:>10}"
          f"{adaptive.horizons_evaluated:>10}")
    print(f"{'horizons audited':24}{frozen.horizons_audited:>10}"
          f"{adaptive.horizons_audited:>10}")
    print(f"{'audited misses':24}{frozen.audited_misses:>10}"
          f"{adaptive.audited_misses:>10}")
    print(f"{'drift recalibrations':24}{frozen.recalibrations:>10}"
          f"{adaptive.recalibrations:>10}")
    print(f"{'frame recall':24}{frozen.frame_recall:>10.3f}"
          f"{adaptive.frame_recall:>10.3f}")
    print(f"{'frames relayed':24}{frozen.frames_relayed:>10}"
          f"{adaptive.frames_relayed:>10}")
    print(f"{'cost ($)':24}{frozen.total_cost:>10.2f}"
          f"{adaptive.total_cost:>10.2f}")
    print()
    print(
        "The frozen deployment keeps the pre-drift calibration and misses "
        "events silently; the adaptive one pays a bounded audit overhead, "
        "detects the broken guarantee, recalibrates, and recovers recall."
    )


if __name__ == "__main__":
    main()
