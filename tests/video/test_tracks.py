"""Tests for simulated object tracks."""

import numpy as np
import pytest

from repro.video import Track, TrackSet, simulate_tracks
from repro.video.events import EventInstance, EventSchedule, EventType
from repro.video.stream import VideoStream
from repro.video.tracks import SCENE_RADIUS

ET = EventType("gate", duration_mean=40, duration_std=4, lead_time=100,
               predictability=0.9)


def make_stream(seed=0):
    instances = [EventInstance(500, 539, ET), EventInstance(1500, 1539, ET)]
    return VideoStream(2500, EventSchedule(2500, instances), seed=seed)


class TestTrack:
    def make(self):
        positions = np.stack([np.linspace(10, 0, 11), np.zeros(11)], axis=1)
        return Track(0, "actor", start=5, end=15, positions=positions,
                     event_name="gate")

    def test_validation(self):
        with pytest.raises(ValueError):
            Track(0, "actor", start=5, end=4, positions=np.zeros((1, 2)))
        with pytest.raises(ValueError):
            Track(0, "actor", start=0, end=4, positions=np.zeros((3, 2)))

    def test_alive_and_position(self):
        track = self.make()
        assert track.alive_at(5) and track.alive_at(15)
        assert not track.alive_at(4) and not track.alive_at(16)
        np.testing.assert_allclose(track.position_at(5), [10, 0])
        np.testing.assert_allclose(track.position_at(15), [0, 0])
        with pytest.raises(ValueError):
            track.position_at(100)

    def test_speed(self):
        track = self.make()
        assert track.speed_at(5) == 0.0  # birth frame
        assert track.speed_at(6) == pytest.approx(1.0)

    def test_distance_to_anchor(self):
        track = self.make()
        assert track.distance_to_anchor_at(5) == pytest.approx(10.0)
        assert track.distance_to_anchor_at(15) == pytest.approx(0.0)

    def test_duration(self):
        assert self.make().duration == 11


class TestTrackSet:
    def test_validation(self):
        track = Track(0, "actor", 0, 4, np.zeros((5, 2)))
        with pytest.raises(ValueError):
            TrackSet(3, [track])
        with pytest.raises(ValueError):
            TrackSet(0, [])

    def test_alive_at_and_filter(self):
        a = Track(0, "actor", 0, 10, np.zeros((11, 2)))
        c = Track(1, "clutter", 5, 20, np.zeros((16, 2)))
        ts = TrackSet(30, [a, c])
        assert len(ts.alive_at(7)) == 2
        assert len(ts.alive_at(7, label="actor")) == 1
        assert len(ts.alive_at(15)) == 1
        with pytest.raises(ValueError):
            ts.alive_at(99)

    def test_count_series(self):
        a = Track(0, "actor", 0, 4, np.zeros((5, 2)))
        ts = TrackSet(10, [a])
        counts = ts.count_series()
        np.testing.assert_array_equal(counts[:5], np.ones(5))
        np.testing.assert_array_equal(counts[5:], np.zeros(5))

    def test_min_anchor_distance_series_default(self):
        ts = TrackSet(5, [])
        np.testing.assert_array_equal(
            ts.min_anchor_distance_series(), np.full(5, SCENE_RADIUS)
        )

    def test_mean_speed_series_zero_when_empty(self):
        ts = TrackSet(5, [])
        np.testing.assert_array_equal(ts.mean_speed_series(), np.zeros(5))


class TestSimulateTracks:
    def test_one_actor_per_instance(self):
        stream = make_stream()
        tracks = simulate_tracks(stream, [ET], clutter_per_10k_frames=0)
        actors = [t for t in tracks.tracks if t.label == "actor"]
        assert len(actors) == 2
        assert all(t.event_name == "gate" for t in actors)

    def test_actor_approaches_anchor_before_onset(self):
        stream = make_stream()
        tracks = simulate_tracks(stream, [ET], clutter_per_10k_frames=0)
        actor = next(t for t in tracks.tracks if t.start <= 500 <= t.end)
        far = actor.distance_to_anchor_at(max(actor.start, 500 - 90))
        near = actor.distance_to_anchor_at(505)
        assert near < far
        assert near < 10.0  # dwelling at the anchor during the event

    def test_clutter_density(self):
        stream = make_stream()
        tracks = simulate_tracks(stream, [ET], clutter_per_10k_frames=20)
        clutter = [t for t in tracks.tracks if t.label == "clutter"]
        assert len(clutter) == round(20 * 2500 / 10_000)

    def test_deterministic(self):
        a = simulate_tracks(make_stream(seed=4), [ET])
        b = simulate_tracks(make_stream(seed=4), [ET])
        np.testing.assert_array_equal(a.tracks[0].positions,
                                      b.tracks[0].positions)

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_tracks(make_stream(), [])
        with pytest.raises(ValueError):
            simulate_tracks(make_stream(), [ET], clutter_per_10k_frames=-1)
