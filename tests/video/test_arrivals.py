"""Tests for event arrival processes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.video import (
    FixedCountArrivals,
    GeometricArrivals,
    PoissonArrivals,
    RegularArrivals,
)


class TestPoisson:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)

    def test_count_close_to_expectation(self):
        process = PoissonArrivals(rate=0.01)
        rng = np.random.default_rng(0)
        counts = [len(process.sample(10_000, rng)) for _ in range(50)]
        assert abs(np.mean(counts) - 100) < 10

    def test_onsets_sorted_and_in_range(self):
        onsets = PoissonArrivals(0.05).sample(1000, np.random.default_rng(1))
        assert onsets == sorted(onsets)
        assert all(0 <= t < 1000 for t in onsets)

    def test_exponential_gaps(self):
        """Inter-arrival gaps should have std ≈ mean (exponential)."""
        onsets = PoissonArrivals(0.02).sample(500_000, np.random.default_rng(2))
        gaps = np.diff(onsets)
        assert abs(gaps.mean() - 50) < 5
        assert abs(gaps.std() / gaps.mean() - 1.0) < 0.1

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.1).sample(0, np.random.default_rng(0))


class TestGeometric:
    def test_p_validation(self):
        for bad in (0.0, 1.0, -0.1, 2.0):
            with pytest.raises(ValueError):
                GeometricArrivals(bad)

    def test_count_close_to_expectation(self):
        process = GeometricArrivals(p=0.01)
        rng = np.random.default_rng(0)
        onsets = process.sample(100_000, rng)
        assert abs(len(onsets) - 1000) < 100

    def test_expected_count(self):
        assert GeometricArrivals(0.1).expected_count(100) == pytest.approx(10)


class TestFixedCount:
    def test_exact_count(self):
        process = FixedCountArrivals(count=54, min_gap=100)
        onsets = process.sample(60_000, np.random.default_rng(0))
        assert len(onsets) == 54

    def test_min_gap_respected(self):
        process = FixedCountArrivals(count=50, min_gap=80)
        onsets = process.sample(10_000, np.random.default_rng(0))
        gaps = np.diff(onsets)
        assert gaps.min() >= 80 - 80  # cell-based placement guarantees order
        assert all(b > a for a, b in zip(onsets, onsets[1:]))

    def test_gap_guarantee_with_slack(self):
        """With cells wider than min_gap every gap is at least min_gap."""
        process = FixedCountArrivals(count=10, min_gap=50)
        for seed in range(10):
            onsets = process.sample(1000, np.random.default_rng(seed))
            assert np.diff(onsets).min() >= 50

    def test_infeasible_raises(self):
        with pytest.raises(ValueError):
            FixedCountArrivals(count=100, min_gap=100).sample(
                500, np.random.default_rng(0)
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedCountArrivals(count=0)
        with pytest.raises(ValueError):
            FixedCountArrivals(count=1, min_gap=0)

    @given(count=st.integers(1, 30), seed=st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_count_always_exact(self, count, seed):
        onsets = FixedCountArrivals(count, min_gap=2).sample(
            1000, np.random.default_rng(seed)
        )
        assert len(onsets) == count
        assert all(0 <= t < 1000 for t in onsets)


class TestRegular:
    def test_periodic(self):
        onsets = RegularArrivals(period=100, offset=10).sample(
            350, np.random.default_rng(0)
        )
        assert onsets == [10, 110, 210, 310]

    def test_validation(self):
        with pytest.raises(ValueError):
            RegularArrivals(period=0)
        with pytest.raises(ValueError):
            RegularArrivals(period=10, offset=-1)
