"""Tests for VideoStream, StreamSegment, and Table I-calibrated datasets."""

import numpy as np
import pytest

from repro.video import (
    EVENT_TYPES,
    GROUP1_EVENTS,
    GROUP2_EVENTS,
    StreamSegment,
    TABLE1_ROWS,
    VideoStream,
    build_schedule,
    make_breakfast,
    make_dataset,
    make_stream,
    make_thumos,
    make_virat,
    table1_stats,
)
from repro.video.events import EventInstance, EventSchedule, EventType

ET = EventType("x", duration_mean=10, duration_std=2)


class TestStreamSegment:
    def test_num_frames_inclusive(self):
        assert StreamSegment(5, 9).num_frames == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamSegment(-1, 5)
        with pytest.raises(ValueError):
            StreamSegment(5, 4)

    def test_intersect(self):
        a, b = StreamSegment(0, 10), StreamSegment(5, 20)
        inter = a.intersect(b)
        assert (inter.start, inter.end) == (5, 10)
        assert StreamSegment(0, 4).intersect(StreamSegment(5, 9)) is None

    def test_frames(self):
        assert list(StreamSegment(2, 4).frames()) == [2, 3, 4]


class TestVideoStream:
    def make(self):
        sched = EventSchedule(1000, [EventInstance(100, 199, ET)])
        return VideoStream(1000, sched, fps=25.0, seed=3, name="s")

    def test_validation(self):
        sched = EventSchedule(10, [])
        with pytest.raises(ValueError):
            VideoStream(20, sched)
        with pytest.raises(ValueError):
            VideoStream(10, sched, fps=0)

    def test_len_and_repr(self):
        stream = self.make()
        assert len(stream) == 1000
        assert "s" in repr(stream)

    def test_observation_rng_deterministic(self):
        stream = self.make()
        a = stream.observation_rng(1).normal(size=5)
        b = stream.observation_rng(1).normal(size=5)
        np.testing.assert_array_equal(a, b)

    def test_observation_rng_salt_differs(self):
        stream = self.make()
        a = stream.observation_rng(1).normal(size=5)
        b = stream.observation_rng(2).normal(size=5)
        assert not np.allclose(a, b)

    def test_segment_clamped(self):
        seg = self.make().segment(-5, 5000)
        assert (seg.start, seg.end) == (0, 999)

    def test_segment_rejects_inverted(self):
        with pytest.raises(ValueError):
            self.make().segment(10, 5)

    def test_occupancy_fraction(self):
        assert self.make().occupancy_fraction(ET) == pytest.approx(0.1)

    def test_duration_seconds(self):
        assert self.make().duration_seconds() == pytest.approx(40.0)


class TestDatasetSpecs:
    def test_paper_defaults(self):
        virat = make_virat(scale=1.0)
        assert virat.window_size == 25 and virat.horizon == 500
        thumos = make_thumos(scale=1.0)
        assert thumos.window_size == 10 and thumos.horizon == 200
        breakfast = make_breakfast(scale=1.0)
        assert breakfast.window_size == 50 and breakfast.horizon == 500

    def test_event_ids(self):
        assert make_virat().event_ids == ("E1", "E2", "E3", "E4", "E5", "E6")
        assert make_thumos().event_ids == ("E7", "E8", "E9")
        assert make_breakfast().event_ids == ("E10", "E11", "E12")

    def test_scale_shrinks_counts_and_length(self):
        full, small = make_virat(1.0), make_virat(0.1)
        assert small.length < full.length
        assert small.occurrences["E1"] < full.occurrences["E1"]

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            make_virat(scale=0.0)
        with pytest.raises(ValueError):
            make_virat(scale=1.5)

    def test_with_events_subsets(self):
        spec = make_virat(0.1).with_events(["E1", "E5"])
        assert spec.event_ids == ("E1", "E5")
        assert set(spec.occurrences) == {"E1", "E5"}

    def test_with_events_rejects_foreign(self):
        with pytest.raises(ValueError):
            make_thumos(0.1).with_events(["E1"])

    def test_make_dataset_factory(self):
        assert make_dataset("VIRAT", 0.1).name == "virat"
        with pytest.raises(ValueError):
            make_dataset("imagenet")

    def test_group_partitions_cover_all_events(self):
        all_ids = {row.event_id for row in TABLE1_ROWS}
        assert GROUP1_EVENTS | GROUP2_EVENTS == all_ids
        assert not GROUP1_EVENTS & GROUP2_EVENTS

    def test_group2_has_lower_predictability(self):
        g1 = min(EVENT_TYPES[e].predictability for e in GROUP1_EVENTS)
        g2 = max(EVENT_TYPES[e].predictability for e in GROUP2_EVENTS)
        assert g1 > g2


class TestBuildScheduleAndStream:
    def test_exact_occurrence_counts(self):
        spec = make_virat(scale=0.1)
        stream = make_stream(spec, seed=0)
        for event_id in spec.event_ids:
            assert (
                stream.schedule.occurrence_count(EVENT_TYPES[event_id])
                == spec.occurrences[event_id]
            )

    def test_duration_stats_close_to_table1(self):
        spec = make_virat(scale=0.5).with_events(["E4"])
        stream = make_stream(spec, seed=1)
        mean, std = stream.schedule.duration_stats(EVENT_TYPES["E4"])
        assert abs(mean - 145.1) / 145.1 < 0.15
        assert abs(std - 35.1) / 35.1 < 0.5

    def test_streams_reproducible(self):
        spec = make_thumos(scale=0.2)
        a = make_stream(spec, seed=5)
        b = make_stream(spec, seed=5)
        assert [i.start for i in a.schedule.all_instances()] == [
            i.start for i in b.schedule.all_instances()
        ]

    def test_different_seeds_differ(self):
        spec = make_thumos(scale=0.2)
        a = make_stream(spec, seed=1)
        b = make_stream(spec, seed=2)
        assert [i.start for i in a.schedule.all_instances()] != [
            i.start for i in b.schedule.all_instances()
        ]

    def test_no_same_type_overlap(self):
        spec = make_virat(scale=0.3)
        schedule = build_schedule(spec, np.random.default_rng(0))
        for event_id in spec.event_ids:
            insts = schedule.instances_of(EVENT_TYPES[event_id])
            for prev, cur in zip(insts, insts[1:]):
                assert cur.start > prev.end

    def test_needle_in_haystack_occupancy(self):
        """Every single event type occupies a minority of the stream."""
        for factory in (make_virat, make_thumos, make_breakfast):
            spec = factory(scale=0.2)
            stream = make_stream(spec, seed=0)
            for event_id in spec.event_ids:
                assert stream.occupancy_fraction(EVENT_TYPES[event_id]) < 0.5


class TestTable1Stats:
    def test_rows_cover_all_events(self):
        rows = table1_stats(scale=0.2)
        assert {r["event"] for r in rows} == {row.event_id for row in TABLE1_ROWS}

    def test_full_scale_counts_match_paper(self):
        rows = table1_stats(scale=1.0)
        for row in rows:
            assert row["measured_occurrences"] == row["paper_occurrences"]

    def test_full_scale_duration_means_close(self):
        rows = table1_stats(scale=1.0)
        for row in rows:
            rel = abs(row["measured_duration_avg"] - row["paper_duration_avg"])
            rel /= row["paper_duration_avg"]
            assert rel < 0.2, row
