"""Tests for the Markov-modulated Poisson arrival process."""

import numpy as np
import pytest

from repro.video import MarkovModulatedPoissonArrivals


class TestMMPP:
    def test_validation(self):
        with pytest.raises(ValueError):
            MarkovModulatedPoissonArrivals(quiet_rate=0, busy_rate=0.1)
        with pytest.raises(ValueError):
            MarkovModulatedPoissonArrivals(quiet_rate=0.2, busy_rate=0.1)
        with pytest.raises(ValueError):
            MarkovModulatedPoissonArrivals(0.01, 0.1, switch_prob=0.0)
        with pytest.raises(ValueError):
            MarkovModulatedPoissonArrivals(0.01, 0.1).sample(
                0, np.random.default_rng(0)
            )

    def test_states_and_onsets_consistent(self):
        process = MarkovModulatedPoissonArrivals(
            quiet_rate=0.001, busy_rate=0.05, switch_prob=5e-4
        )
        rng = np.random.default_rng(0)
        onsets, busy = process.sample_with_states(50_000, rng)
        assert busy.shape == (50_000,)
        assert all(0 <= t < 50_000 for t in onsets)
        # Busy regime must produce a far higher empirical rate.
        onset_mask = np.zeros(50_000, dtype=bool)
        onset_mask[onsets] = True
        busy_rate = onset_mask[busy].mean() if busy.any() else 0
        quiet_rate = onset_mask[~busy].mean() if (~busy).any() else 0
        assert busy_rate > 5 * max(quiet_rate, 1e-6)

    def test_burstiness_exceeds_poisson(self):
        """MMPP inter-arrival CV should exceed the exponential's CV of 1."""
        process = MarkovModulatedPoissonArrivals(
            quiet_rate=0.0005, busy_rate=0.05, switch_prob=2e-4
        )
        rng = np.random.default_rng(1)
        onsets = process.sample(400_000, rng)
        gaps = np.diff(onsets)
        cv = gaps.std() / gaps.mean()
        assert cv > 1.3

    def test_start_busy_changes_prefix(self):
        quiet_first = MarkovModulatedPoissonArrivals(
            0.0001, 0.05, switch_prob=1e-6, start_busy=False
        )
        busy_first = MarkovModulatedPoissonArrivals(
            0.0001, 0.05, switch_prob=1e-6, start_busy=True
        )
        rng_a, rng_b = np.random.default_rng(2), np.random.default_rng(2)
        few = quiet_first.sample(10_000, rng_a)
        many = busy_first.sample(10_000, rng_b)
        assert len(many) > len(few) * 5

    def test_expected_count(self):
        process = MarkovModulatedPoissonArrivals(0.01, 0.03)
        assert process.expected_count(1000) == pytest.approx(20.0)

    def test_regime_shift_breaks_stationarity(self):
        """A slow chain yields long epochs with very different rates —
        the non-stationary workload the drift tooling needs."""
        process = MarkovModulatedPoissonArrivals(
            quiet_rate=0.0005, busy_rate=0.02, switch_prob=5e-5,
        )
        rng = np.random.default_rng(3)
        onsets, busy = process.sample_with_states(200_000, rng)
        # The chain actually switched at least once.
        assert busy.any() and (~busy).any()
