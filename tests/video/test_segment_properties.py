"""Property-based tests for segment algebra.

``StreamSegment.intersect`` and ``merge_segments`` are the primitives the
relay path's billing and recall accounting stand on; Hypothesis pins the
algebraic laws (idempotence, commutativity, frame conservation, pairwise
disjointness) that example-based tests cannot exhaust.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud import merge_segments
from repro.video import StreamSegment


@st.composite
def segments(draw, max_frame=200):
    start = draw(st.integers(min_value=0, max_value=max_frame))
    length = draw(st.integers(min_value=0, max_value=max_frame))
    return StreamSegment(start, start + length)


segment_lists = st.lists(segments(), min_size=0, max_size=12)


def frames_of(segs):
    covered = set()
    for seg in segs:
        covered.update(seg.frames())
    return covered


class TestIntersectProperties:
    @given(segments(), segments())
    def test_commutative(self, a, b):
        assert a.intersect(b) == b.intersect(a)

    @given(segments())
    def test_idempotent(self, a):
        assert a.intersect(a) == a

    @given(segments(), segments())
    def test_result_contained_in_both(self, a, b):
        result = a.intersect(b)
        if result is not None:
            assert a.start <= result.start <= result.end <= a.end
            assert b.start <= result.start <= result.end <= b.end

    @given(segments(), segments())
    def test_none_iff_frame_sets_disjoint(self, a, b):
        result = a.intersect(b)
        shared = set(a.frames()) & set(b.frames())
        if result is None:
            assert not shared
        else:
            assert set(result.frames()) == shared

    @given(segments(), segments(), segments())
    @settings(max_examples=50)
    def test_associative(self, a, b, c):
        def chain(x, y, z):
            first = x.intersect(y)
            return None if first is None else first.intersect(z)

        assert chain(a, b, c) == chain(c, b, a)


class TestMergeSegmentsProperties:
    @given(segment_lists)
    def test_frame_conservation(self, segs):
        assert frames_of(merge_segments(segs)) == frames_of(segs)

    @given(segment_lists)
    def test_idempotent(self, segs):
        once = merge_segments(segs)
        assert merge_segments(once) == once

    @given(segment_lists)
    def test_permutation_invariant(self, segs):
        assert merge_segments(list(reversed(segs))) == merge_segments(segs)

    @given(segment_lists)
    def test_output_sorted_disjoint_non_adjacent(self, segs):
        merged = merge_segments(segs)
        for before, after in zip(merged, merged[1:]):
            # Strictly ordered with a real gap: adjacent inputs must have
            # coalesced, so consecutive outputs are separated by >= 1
            # uncovered frame.
            assert before.end + 1 < after.start

    @given(segment_lists)
    def test_never_bills_more_frames_than_input(self, segs):
        merged = merge_segments(segs)
        assert sum(s.num_frames for s in merged) <= sum(
            s.num_frames for s in segs
        ) or not segs
        assert sum(s.num_frames for s in merged) == len(frames_of(segs))

    @given(segments())
    def test_singleton_fixed_point(self, seg):
        assert merge_segments([seg]) == [seg]

    def test_empty_input(self):
        assert merge_segments([]) == []
