"""Tests for event types, instances, and schedules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.video import EventInstance, EventSchedule, EventType, HorizonEvent

ET = EventType(name="truck", duration_mean=20, duration_std=5)
ET2 = EventType(name="crowd", duration_mean=40, duration_std=2)


class TestEventType:
    def test_validation(self):
        with pytest.raises(ValueError):
            EventType("x", duration_mean=0, duration_std=1)
        with pytest.raises(ValueError):
            EventType("x", duration_mean=1, duration_std=-1)
        with pytest.raises(ValueError):
            EventType("x", duration_mean=1, duration_std=1, lead_time=0)
        with pytest.raises(ValueError):
            EventType("x", duration_mean=1, duration_std=1, predictability=1.5)

    def test_sample_duration_at_least_two(self):
        et = EventType("x", duration_mean=2, duration_std=50)
        rng = np.random.default_rng(0)
        durations = [et.sample_duration(rng) for _ in range(200)]
        assert min(durations) >= 2

    def test_sample_duration_matches_mean(self):
        et = EventType("x", duration_mean=100, duration_std=10)
        rng = np.random.default_rng(0)
        durations = [et.sample_duration(rng) for _ in range(2000)]
        assert abs(np.mean(durations) - 100) < 2


class TestEventInstance:
    def test_duration_inclusive(self):
        assert EventInstance(5, 9, ET).duration == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            EventInstance(-1, 3, ET)
        with pytest.raises(ValueError):
            EventInstance(5, 4, ET)

    def test_overlaps(self):
        inst = EventInstance(10, 20, ET)
        assert inst.overlaps(20, 30)
        assert inst.overlaps(0, 10)
        assert inst.overlaps(12, 15)
        assert not inst.overlaps(21, 30)
        assert not inst.overlaps(0, 9)

    def test_frames(self):
        assert list(EventInstance(3, 5, ET).frames()) == [3, 4, 5]

    def test_ordering_by_start(self):
        a, b = EventInstance(5, 9, ET), EventInstance(1, 3, ET)
        assert sorted([a, b])[0] is b


class TestEventSchedule:
    def make(self):
        return EventSchedule(
            100,
            [
                EventInstance(10, 19, ET),
                EventInstance(50, 69, ET),
                EventInstance(30, 44, ET2),
            ],
        )

    def test_rejects_instance_beyond_length(self):
        with pytest.raises(ValueError):
            EventSchedule(10, [EventInstance(5, 15, ET)])

    def test_rejects_overlapping_same_type(self):
        with pytest.raises(ValueError):
            EventSchedule(100, [EventInstance(0, 10, ET), EventInstance(5, 20, ET)])

    def test_allows_overlap_across_types(self):
        sched = EventSchedule(
            100, [EventInstance(0, 10, ET), EventInstance(5, 20, ET2)]
        )
        assert sched.occurrence_count(ET) == 1
        assert sched.occurrence_count(ET2) == 1

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ValueError):
            EventSchedule(0, [])

    def test_instances_sorted(self):
        sched = EventSchedule(
            100, [EventInstance(50, 60, ET), EventInstance(0, 10, ET)]
        )
        starts = [i.start for i in sched.instances_of(ET)]
        assert starts == [0, 50]

    def test_occupancy_mask(self):
        mask = self.make().occupancy_mask(ET)
        assert mask[10] and mask[19] and mask[50] and mask[69]
        assert not mask[9] and not mask[20] and not mask[49] and not mask[70]
        assert mask.sum() == 10 + 20

    def test_occupancy_mask_unknown_type_empty(self):
        unknown = EventType("ghost", 5, 1)
        assert self.make().occupancy_mask(unknown).sum() == 0

    def test_event_type_names(self):
        assert self.make().event_type_names == ["crowd", "truck"]

    def test_all_instances_sorted(self):
        insts = self.make().all_instances()
        assert [i.start for i in insts] == [10, 30, 50]

    def test_duration_stats(self):
        mean, std = self.make().duration_stats(ET)
        np.testing.assert_allclose(mean, 15.0)
        np.testing.assert_allclose(std, 5.0)

    def test_duration_stats_empty_nan(self):
        mean, std = self.make().duration_stats(EventType("ghost", 5, 1))
        assert np.isnan(mean) and np.isnan(std)

    def test_time_to_next_onset(self):
        dist = self.make().time_to_next_onset(ET)
        assert dist[0] == 10
        assert dist[10] == 0  # onset frame reports zero
        assert dist[11] == 39  # next onset at 50
        assert dist[49] == 1
        assert dist[50] == 0
        assert np.isinf(dist[51])


class TestHorizonQueries:
    def make(self):
        return EventSchedule(
            1000,
            [EventInstance(100, 149, ET), EventInstance(400, 479, ET)],
        )

    def test_event_fully_inside_horizon(self):
        sched = self.make()
        events = sched.events_in_horizon(ET, frame=50, horizon=200)
        assert len(events) == 1
        ev = events[0]
        assert ev.start_offset == 50 and ev.end_offset == 99
        assert not ev.censored

    def test_censored_event(self):
        sched = self.make()
        events = sched.events_in_horizon(ET, frame=50, horizon=80)
        assert len(events) == 1
        ev = events[0]
        assert ev.censored
        assert ev.end_offset == 80
        assert ev.start_offset == 50

    def test_ongoing_event_starts_at_offset_one(self):
        sched = self.make()
        events = sched.events_in_horizon(ET, frame=120, horizon=100)
        assert events[0].start_offset == 1
        assert events[0].end_offset == 149 - 120

    def test_no_events(self):
        sched = self.make()
        assert sched.events_in_horizon(ET, frame=600, horizon=100) == []

    def test_multiple_events_in_horizon(self):
        sched = self.make()
        events = sched.events_in_horizon(ET, frame=50, horizon=500)
        assert len(events) == 2

    def test_first_event_in_horizon(self):
        sched = self.make()
        first = sched.first_event_in_horizon(ET, frame=50, horizon=500)
        assert first.start_offset == 50
        assert sched.first_event_in_horizon(ET, frame=600, horizon=100) is None

    def test_validates_frame_and_horizon(self):
        sched = self.make()
        with pytest.raises(ValueError):
            sched.events_in_horizon(ET, frame=-1, horizon=10)
        with pytest.raises(ValueError):
            sched.events_in_horizon(ET, frame=5000, horizon=10)
        with pytest.raises(ValueError):
            sched.events_in_horizon(ET, frame=0, horizon=0)

    def test_event_ending_exactly_at_horizon_not_censored(self):
        sched = EventSchedule(300, [EventInstance(100, 150, ET)])
        events = sched.events_in_horizon(ET, frame=50, horizon=100)
        assert not events[0].censored
        assert events[0].end_offset == 100

    @given(
        frame=st.integers(0, 999),
        horizon=st.integers(1, 600),
    )
    @settings(max_examples=60, deadline=None)
    def test_offsets_always_in_horizon_bounds(self, frame, horizon):
        sched = self.make()
        for ev in sched.events_in_horizon(ET, frame, horizon):
            assert 1 <= ev.start_offset <= ev.end_offset <= horizon


class TestHorizonEventValidation:
    def test_rejects_bad_offsets(self):
        with pytest.raises(ValueError):
            HorizonEvent(ET, start_offset=0, end_offset=5, censored=False)
        with pytest.raises(ValueError):
            HorizonEvent(ET, start_offset=5, end_offset=4, censored=False)
