"""Tests for the VQS filter and the point-process (APP-VAE surrogate)."""

import numpy as np
import pytest

from repro.baselines import PointProcessPredictor, VQSPredictor
from repro.data import DatasetBuilder
from repro.features import extract_features
from repro.metrics import existence_recall, spillage
from repro.video import make_breakfast, make_stream
from repro.video.datasets import EVENT_TYPES
from repro.video.events import EventInstance, EventSchedule, EventType
from repro.video.stream import VideoStream

ET = EventType("gate", duration_mean=40, duration_std=4, lead_time=80)


def stream_and_records(seed=0, horizon=100, stride=10):
    instances = [EventInstance(300, 339, ET), EventInstance(900, 939, ET),
                 EventInstance(1500, 1539, ET)]
    stream = VideoStream(2000, EventSchedule(2000, instances), seed=seed)
    features = extract_features(stream, [ET])
    builder = DatasetBuilder(window_size=8, horizon=horizon, stride=stride)
    records = builder.build(stream, features, [ET])
    return stream, records


class TestVQS:
    def test_validation(self):
        stream, records = stream_and_records()
        with pytest.raises(ValueError):
            VQSPredictor(stream, [])
        with pytest.raises(ValueError):
            VQSPredictor(stream, [ET], min_objects=0)

    def test_horizon_counts_monotone_in_threshold(self):
        stream, records = stream_and_records()
        vqs = VQSPredictor(stream, [ET])
        loose = vqs.predict(records, tau=1)
        strict = vqs.predict(records, tau=50)
        assert loose.exists.sum() >= strict.exists.sum()

    def test_relays_whole_horizons(self):
        stream, records = stream_and_records()
        vqs = VQSPredictor(stream, [ET])
        pred = vqs.predict(records, tau=5)
        on = pred.exists
        assert on.any()
        assert np.all(pred.starts[on] == 1)
        assert np.all(pred.ends[on] == records.horizon)

    def test_tau_zero_relays_everything(self):
        stream, records = stream_and_records()
        vqs = VQSPredictor(stream, [ET])
        pred = vqs.predict(records, tau=0)
        assert pred.exists.all()
        assert spillage(pred, records) == pytest.approx(1.0)

    def test_detects_event_horizons(self):
        """Horizons overlapping events should count many object frames."""
        stream, records = stream_and_records(stride=5)
        vqs = VQSPredictor(stream, [ET])
        pred = vqs.predict(records, tau=20)
        rec_c = existence_recall(pred, records)
        assert rec_c > 0.6

    def test_event_count_mismatch(self):
        stream, records = stream_and_records()
        other = EventType("crowd", 30, 3)
        vqs = VQSPredictor(stream, [ET, other])
        with pytest.raises(ValueError):
            vqs.predict(records, tau=1)

    def test_rejects_unknown_knobs(self):
        stream, records = stream_and_records()
        vqs = VQSPredictor(stream, [ET])
        with pytest.raises(TypeError):
            vqs.predict(records, confidence=0.9)

    def test_negative_tau_rejected(self):
        stream, records = stream_and_records()
        vqs = VQSPredictor(stream, [ET])
        with pytest.raises(ValueError):
            vqs.predict(records, tau=-1)


class TestPointProcess:
    def make(self, history_window=2000):
        spec = make_breakfast(scale=0.15).with_events(["E10"])
        train_stream = make_stream(spec, seed=0)
        test_stream = make_stream(spec, seed=1)
        event_types = [EVENT_TYPES["E10"]]
        features = extract_features(test_stream, event_types)
        builder = DatasetBuilder(
            window_size=spec.window_size, horizon=spec.horizon, stride=50
        )
        records = builder.build(test_stream, features, event_types)
        predictor = PointProcessPredictor(history_window=history_window)
        predictor.fit(train_stream, event_types)
        return predictor, records, test_stream

    def test_requires_fit(self):
        predictor = PointProcessPredictor()
        _, records, stream = self.make()
        with pytest.raises(RuntimeError):
            predictor.predict(records, stream=stream)

    def test_requires_stream(self):
        predictor, records, stream = self.make()
        with pytest.raises(ValueError):
            predictor.predict(records)

    def test_validation(self):
        with pytest.raises(ValueError):
            PointProcessPredictor(history_window=0)
        predictor = PointProcessPredictor()
        spec = make_breakfast(scale=0.15).with_events(["E10"])
        stream = make_stream(spec, seed=0)
        with pytest.raises(ValueError):
            predictor.fit(stream, [])

    def test_too_few_instances_raises(self):
        sparse = VideoStream(
            5000, EventSchedule(5000, [EventInstance(100, 140, ET)])
        )
        with pytest.raises(ValueError):
            PointProcessPredictor().fit(sparse, [ET])

    def test_predictions_within_horizon(self):
        predictor, records, stream = self.make()
        pred = predictor.predict(records, stream=stream)
        on = pred.exists
        if on.any():
            assert np.all(pred.starts[on] >= 1)
            assert np.all(pred.ends[on] <= records.horizon)

    def test_large_history_beats_small(self):
        """APP-VAE_1500-style window should recall more than APP-VAE-ish 50."""
        big_pred, records, stream = self.make(history_window=5000)
        small_predictor = PointProcessPredictor(history_window=10)
        spec = make_breakfast(scale=0.15).with_events(["E10"])
        small_predictor.fit(make_stream(spec, seed=0), [EVENT_TYPES["E10"]])
        big = big_pred.predict(records, stream=stream, p_threshold=0.3)
        small = small_predictor.predict(records, stream=stream, p_threshold=0.3)
        # A blind (tiny-window) process collapses to one prior decision for
        # every record — indiscriminate positives.  The informed window must
        # be more selective at no worse accuracy: higher precision, i.e.
        # fewer wasted relays per true event (the paper's APP-VAE_200 vs
        # APP-VAE_1500 gap).
        from repro.metrics import existence_precision

        big_prec = existence_precision(big, records)
        small_prec = existence_precision(small, records)
        assert not np.isnan(big_prec)
        assert big_prec >= small_prec - 0.02

    def test_threshold_monotone(self):
        predictor, records, stream = self.make()
        loose = predictor.predict(records, stream=stream, p_threshold=0.1)
        strict = predictor.predict(records, stream=stream, p_threshold=0.9)
        assert loose.exists.sum() >= strict.exists.sum()

    def test_rejects_unknown_knobs(self):
        predictor, records, stream = self.make()
        with pytest.raises(TypeError):
            predictor.predict(records, stream=stream, tau=1)
