"""Tests for the EHO/EHC/EHR/EHCR decision-rule variants."""

import numpy as np
import pytest

from repro.baselines import EHC, EHCR, EHO, EHR
from repro.conformal import ConformalClassifier, ConformalRegressor
from repro.core import EventHitConfig, train_eventhit
from repro.data import RecordSet
from repro.metrics import evaluate, existence_recall, recall, spillage
from repro.video.events import EventType


def synthetic_records(b=96, h=16, seed=0, m=6, d=4):
    rng = np.random.default_rng(seed)
    labels = (rng.random((b, 1)) < 0.5).astype(float)
    covariates = rng.normal(0, 0.2, size=(b, m, d))
    starts = np.zeros((b, 1), dtype=int)
    ends = np.zeros((b, 1), dtype=int)
    for i in range(b):
        if labels[i, 0]:
            start = int(rng.integers(1, h - 4))
            starts[i, 0] = start
            ends[i, 0] = start + 3
            signal = 1.0 - start / h
            covariates[i, :, 0] += np.linspace(signal - 0.2, signal, m)
    return RecordSet(
        event_types=[EventType("e", 4, 1)],
        horizon=h,
        frames=np.arange(b),
        covariates=covariates,
        labels=labels,
        starts=starts,
        ends=ends,
        censored=np.zeros((b, 1)),
    )


CONFIG = EventHitConfig(
    window_size=6, horizon=16, lstm_hidden=12, shared_hidden=(12,),
    head_hidden=(16,), dropout=0.0, learning_rate=5e-3, epochs=30,
    batch_size=32, seed=0,
)


@pytest.fixture(scope="module")
def stack():
    train = synthetic_records(b=160, seed=0)
    calib = synthetic_records(b=120, seed=1)
    test = synthetic_records(b=120, seed=2)
    model, _ = train_eventhit(train, config=CONFIG)
    classifier = ConformalClassifier(model).calibrate(calib)
    regressor = ConformalRegressor(model).calibrate(calib)
    return model, classifier, regressor, test


class TestEHO:
    def test_predict_shapes(self, stack):
        model, _, _, test = stack
        pred = EHO(model).predict(test)
        assert pred.exists.shape == (len(test), 1)

    def test_knob_override(self, stack):
        model, _, _, test = stack
        eho = EHO(model)
        strict = eho.predict(test, tau1=0.99)
        loose = eho.predict(test, tau1=0.01)
        assert loose.exists.sum() >= strict.exists.sum()

    def test_rejects_unknown_knobs(self, stack):
        model, _, _, test = stack
        with pytest.raises(TypeError):
            EHO(model).predict(test, confidence=0.9)

    def test_reasonable_quality(self, stack):
        model, _, _, test = stack
        summary = evaluate(EHO(model).predict(test), test)
        assert summary.rec > 0.5
        assert summary.spl < 0.5


class TestEHC:
    def test_requires_calibrated_classifier(self, stack):
        model, _, _, _ = stack
        with pytest.raises(ValueError):
            EHC(model, ConformalClassifier(model))

    def test_confidence_raises_recall(self, stack):
        model, classifier, _, test = stack
        ehc = EHC(model, classifier)
        low = ehc.predict(test, confidence=0.5)
        high = ehc.predict(test, confidence=0.99)
        assert existence_recall(high, test) >= existence_recall(low, test)
        assert spillage(high, test) >= spillage(low, test) - 1e-9

    def test_higher_recall_than_eho_at_high_c(self, stack):
        model, classifier, _, test = stack
        eho_rec_c = existence_recall(EHO(model).predict(test), test)
        ehc_rec_c = existence_recall(
            EHC(model, classifier).predict(test, confidence=0.99), test
        )
        assert ehc_rec_c >= eho_rec_c

    def test_rejects_unknown_knobs(self, stack):
        model, classifier, _, test = stack
        with pytest.raises(TypeError):
            EHC(model, classifier).predict(test, alpha=0.9)


class TestEHR:
    def test_requires_calibrated_regressor(self, stack):
        model, _, _, _ = stack
        with pytest.raises(ValueError):
            EHR(model, ConformalRegressor(model))

    def test_alpha_widens_intervals(self, stack):
        model, _, regressor, test = stack
        ehr = EHR(model, regressor)
        narrow = ehr.predict(test, alpha=0.2)
        wide = ehr.predict(test, alpha=0.95)
        assert wide.predicted_frames().sum() >= narrow.predicted_frames().sum()
        assert recall(wide, test) >= recall(narrow, test)

    def test_existence_same_as_eho(self, stack):
        model, _, regressor, test = stack
        np.testing.assert_array_equal(
            EHR(model, regressor).predict(test, alpha=0.5).exists,
            EHO(model).predict(test).exists,
        )


class TestEHCR:
    def test_requires_both_calibrations(self, stack):
        model, classifier, regressor, _ = stack
        with pytest.raises(ValueError):
            EHCR(model, ConformalClassifier(model), regressor)
        with pytest.raises(ValueError):
            EHCR(model, classifier, ConformalRegressor(model))

    def test_can_reach_high_recall(self, stack):
        """The paper's key claim: EHCR reaches ~max REC with both knobs up."""
        model, classifier, regressor, test = stack
        ehcr = EHCR(model, classifier, regressor)
        pred = ehcr.predict(test, confidence=1.0, alpha=1.0)
        assert recall(pred, test) > 0.95

    def test_dominates_eho_recall_at_max_knobs(self, stack):
        model, classifier, regressor, test = stack
        eho_rec = recall(EHO(model).predict(test), test)
        ehcr_rec = recall(
            EHCR(model, classifier, regressor).predict(
                test, confidence=1.0, alpha=1.0
            ),
            test,
        )
        assert ehcr_rec >= eho_rec

    def test_knob_monotonicity(self, stack):
        model, classifier, regressor, test = stack
        ehcr = EHCR(model, classifier, regressor)
        values = []
        for c in (0.6, 0.8, 0.95, 1.0):
            pred = ehcr.predict(test, confidence=c, alpha=c)
            values.append((recall(pred, test), spillage(pred, test)))
        recs = [v[0] for v in values]
        assert recs == sorted(recs), f"REC not monotone: {recs}"

    def test_rejects_unknown_knobs(self, stack):
        model, classifier, regressor, test = stack
        with pytest.raises(TypeError):
            EHCR(model, classifier, regressor).predict(test, tau=0.5)
